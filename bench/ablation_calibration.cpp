/**
 * @file
 * Ablation: robustness of the validation accuracy to the calibration
 * constants (DESIGN.md, "Calibration knobs").
 *
 * A fair question about any calibrated analytical model is whether
 * its accuracy is knife-edge. This bench perturbs each knob around
 * its committed value and reports the Table 1 / Table 2 mean error:
 * the committed point should sit in a shallow basin, not a spike.
 */

#include <iostream>
#include <vector>

#include "core/optimus.h"

using namespace optimus;

namespace {

double
table1MeanError(const System &base_sys)
{
    struct Row
    {
        TransformerConfig model;
        int gpus;
        long long batch, dp, tp, pp;
        bool sp;
        Recompute r;
        double ref;
    };
    const Row rows[] = {
        {models::gpt22b(), 8, 4, 1, 8, 1, false, Recompute::Full,
         1.4},
        {models::gpt175b(), 64, 64, 1, 8, 8, false, Recompute::Full,
         18.1},
        {models::gpt530b(), 280, 280, 1, 8, 35, true,
         Recompute::Selective, 37.8},
        {models::gpt1008b(), 512, 512, 1, 8, 64, false,
         Recompute::Full, 94.4},
    };
    double sum = 0.0;
    int n = 0;
    for (const Row &row : rows) {
        System sys = base_sys;
        sys.numNodes = row.gpus / 8;
        ParallelConfig par;
        par.dataParallel = row.dp;
        par.tensorParallel = row.tp;
        par.pipelineParallel = row.pp;
        par.sequenceParallel = row.sp;
        TrainingOptions opts;
        opts.recompute = row.r;
        double pred =
            evaluateTraining(row.model, sys, par, row.batch, opts)
                .timePerBatch;
        sum += relativeErrorPct(pred, row.ref);
        ++n;
    }
    return sum / n;
}

double
table2MeanError(const System &sys)
{
    struct Row
    {
        TransformerConfig model;
        int tp;
        double ref_ms;
    };
    const Row rows[] = {
        {models::llama2_70b(), 4, 6403},
        {models::llama2_13b(), 1, 3884},
        {models::llama2_13b(), 8, 1693},
        {models::llama2_7b(), 2, 1544},
    };
    double sum = 0.0;
    int n = 0;
    for (const Row &row : rows) {
        InferenceOptions opts;
        opts.tensorParallel = row.tp;
        double pred =
            evaluateInference(row.model, sys, opts).totalLatency *
            1e3;
        sum += relativeErrorPct(pred, row.ref_ms);
        ++n;
    }
    return sum / n;
}

} // namespace

int
main()
{
    std::cout << "Ablation: calibration-constant robustness "
                 "(Table 1 / Table 2 mean |dE| around the committed "
                 "values)\n\n";

    const std::vector<double> scales = {0.8, 0.9, 1.0, 1.1, 1.2};

    Table t1({"Knob", "x0.8", "x0.9", "x1.0", "x1.1", "x1.2"});
    auto sweep = [&](const char *name, auto mutate, auto metric) {
        t1.beginRow().cell(std::string(name));
        for (double k : scales) {
            System sys = presets::dgxA100(1);
            mutate(sys, k);
            t1.cell(metric(sys), 1);
        }
        t1.endRow();
    };

    sweep(
        "matrixMaxEfficiency (T1)",
        [](System &s, double k) {
            s.device.matrixMaxEfficiency =
                std::min(1.0, s.device.matrixMaxEfficiency * k);
        },
        table1MeanError);
    sweep(
        "gemmKHalf (T1)",
        [](System &s, double k) { s.device.gemmKHalf *= k; },
        table1MeanError);
    sweep(
        "NVLink maxUtilization (T1)",
        [](System &s, double k) {
            s.intraLink.maxUtilization =
                std::min(1.0, s.intraLink.maxUtilization * k);
        },
        table1MeanError);
    sweep(
        "gemvDramUtilization (T2)",
        [](System &s, double k) {
            s.device.gemvDramUtilization =
                std::min(1.0, s.device.gemvDramUtilization * k);
        },
        table2MeanError);
    sweep(
        "collectiveOverhead (T2)",
        [](System &s, double k) {
            s.intraLink.collectiveOverhead *= k;
        },
        table2MeanError);
    sweep(
        "kernelLaunchOverhead (T2)",
        [](System &s, double k) {
            s.device.kernelLaunchOverhead *= k;
        },
        table2MeanError);

    t1.print(std::cout);

    std::cout << "\nExpected: the x1.0 column is at or near each "
                 "row's minimum, and +/-10% perturbations move the "
                 "mean error by low single digits - a shallow basin, "
                 "not a knife edge.\n";
    return 0;
}
