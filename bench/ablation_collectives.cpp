/**
 * @file
 * Ablation: ring vs double-binary-tree all-reduce (paper Sec. 3.4).
 *
 * The paper motivates modeling both algorithms: ring is
 * bandwidth-optimal but its latency term grows linearly in the group
 * size, which matters for the tiny per-token all-reduces of
 * inference; the tree keeps bandwidth optimality with log-depth
 * latency "and helps scale inference up to 8 GPUs". This bench
 * quantifies the crossover and its end-to-end effect.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Ablation: collective algorithm (ring vs double "
                 "binary tree)\n\n";

    NetworkLink link = presets::nvlink3();

    std::cout << "Per-op all-reduce time (us), 8 endpoints:\n\n";
    Table ops({"Volume", "Ring", "Tree", "Tree speedup"});
    for (double vol : {10 * KB, 100 * KB, 1 * MB, 10 * MB, 100 * MB,
                       1 * GB}) {
        double ring = collectiveTime(CollectiveKind::AllReduce, vol, 8,
                                     link, CollectiveAlgorithm::Ring)
                          .time;
        double tree =
            collectiveTime(CollectiveKind::AllReduce, vol, 8, link,
                           CollectiveAlgorithm::DoubleBinaryTree)
                .time;
        ops.beginRow()
            .cell(formatBytes(vol))
            .cell(ring * 1e6, 1)
            .cell(tree * 1e6, 1)
            .cell(ring / tree, 2);
        ops.endRow();
    }
    ops.print(std::cout);

    std::cout << "\nEnd-to-end Llama2-13B inference latency (ms), "
                 "B=1, 200+200 tokens:\n\n";
    Table e2e({"TP", "Ring (ms)", "Tree (ms)", "Tree gain (%)"});
    System sys = presets::dgxA100(1);
    for (int tp : {2, 4, 8}) {
        InferenceOptions opts;
        opts.tensorParallel = tp;
        opts.collectiveAlgorithm = CollectiveAlgorithm::Ring;
        double ring =
            evaluateInference(models::llama2_13b(), sys, opts)
                .totalLatency;
        opts.collectiveAlgorithm =
            CollectiveAlgorithm::DoubleBinaryTree;
        double tree =
            evaluateInference(models::llama2_13b(), sys, opts)
                .totalLatency;
        e2e.beginRow()
            .cell(static_cast<long long>(tp))
            .cell(ring * 1e3, 0)
            .cell(tree * 1e3, 0)
            .cell(100.0 * (ring - tree) / ring, 1);
        e2e.endRow();
    }
    e2e.print(std::cout);

    std::cout << "\nEnd-to-end GPT-175B training time (s), 64 A100s "
                 "(training volumes are large; the algorithms nearly "
                 "tie):\n\n";
    Table tr({"Algorithm", "t/batch (s)"});
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    for (auto [name, algo] :
         {std::pair<const char *, CollectiveAlgorithm>{
              "ring", CollectiveAlgorithm::Ring},
          {"tree", CollectiveAlgorithm::DoubleBinaryTree}}) {
        TrainingOptions opts;
        opts.collectiveAlgorithm = algo;
        TrainingReport rep = evaluateTraining(
            models::gpt175b(), presets::dgxA100(8), par, 64, opts);
        tr.beginRow().cell(name).cell(rep.timePerBatch, 2);
        tr.endRow();
    }
    tr.print(std::cout);
    return 0;
}
