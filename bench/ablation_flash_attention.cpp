/**
 * @file
 * Ablation: FlashAttention vs unfused attention across sequence
 * lengths (paper Sec. 1.1: "execution time and memory complexity of
 * attention grows quadratically with sequence length"; FlashAttention
 * "addresses this problem ... by focusing on the memory access to and
 * from DRAM at the cost of FLOPs").
 *
 * GPT-7B layer on A100, TP4+SP, microbatch 1, seq 2k..32k.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Ablation: FlashAttention vs unfused attention, "
                 "GPT-7B layer on A100 (TP4, SP)\n\n";

    TransformerConfig cfg = models::gpt7b();
    Device dev = presets::a100_80gb();

    Table out({"Seq", "unfused layer (ms)", "flash layer (ms)",
               "speedup", "attn DRAM unfused (MiB)",
               "attn DRAM flash (MiB)", "act. mem ratio"});

    for (long long seq : {2048LL, 4096LL, 8192LL, 16384LL, 32768LL}) {
        LayerGraphParams p;
        p.batch = 1;
        p.seq = seq;
        p.tensorParallel = 4;
        p.sequenceParallel = true;

        auto layer_stats = [&](bool flash) {
            p.flashAttention = flash;
            double time = 0.0, attn_dram = 0.0;
            for (const Op &op : layerForwardOps(cfg, p)) {
                KernelEstimate est = evaluateOp(dev, op);
                time += est.time;
                bool attn = op.kind == OpKind::FusedAttention ||
                            op.name.rfind("attn", 0) == 0 ||
                            op.name == "qk^T";
                if (attn)
                    attn_dram += est.bytesPerLevel[0];
            }
            return std::pair{time, attn_dram};
        };

        auto [t_un, d_un] = layer_stats(false);
        auto [t_fl, d_fl] = layer_stats(true);

        ActivationParams ap;
        ap.seq = seq;
        ap.tensorParallel = 4;
        ap.sequenceParallel = true;
        ap.flashAttention = false;
        double act_un = layerActivations(cfg, ap).total();
        ap.flashAttention = true;
        double act_fl = layerActivations(cfg, ap).total();

        out.beginRow()
            .cell(seq)
            .cell(t_un * 1e3, 3)
            .cell(t_fl * 1e3, 3)
            .cell(t_un / t_fl, 2)
            .cell(d_un / MiB, 1)
            .cell(d_fl / MiB, 1)
            .cell(act_fl / act_un, 3);
        out.endRow();
    }
    out.print(std::cout);

    std::cout << "\nExpected: the unfused attention's quadratic DRAM "
                 "traffic makes the gap grow with sequence length; "
                 "FlashAttention also removes the 5*a*s^2*b stored-"
                 "activation term.\n";
    return 0;
}
