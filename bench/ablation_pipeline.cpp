/**
 * @file
 * Ablation: pipeline schedules (paper Sec. 3.2) — GPipe vs
 * PipeDream-Flush (1F1B) vs Megatron's interleaved 1F1B.
 *
 * Quantifies the bubble-fraction reduction from interleaving, its
 * extra p2p communication, and the activation-memory differences
 * (GPipe keeps every microbatch in flight).
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Ablation: pipeline schedule, GPT-175B on 64 A100s "
                 "(TP8, PP8, selective recompute)\n\n";

    struct Case
    {
        const char *name;
        PipelineSchedule schedule;
        long long v;
    };
    const Case cases[] = {
        {"gpipe", PipelineSchedule::GPipe, 1},
        {"1f1b", PipelineSchedule::OneFOneB, 1},
        {"interleaved v=2", PipelineSchedule::Interleaved1F1B, 2},
        {"interleaved v=4", PipelineSchedule::Interleaved1F1B, 4},
        {"interleaved v=12", PipelineSchedule::Interleaved1F1B, 12},
    };

    for (long long batch : {16LL, 64LL, 256LL}) {
        Table out({"Schedule", "Bubble (%)", "t/batch (s)",
                   "PP comm (s)", "Activations (GiB)"});
        for (const Case &c : cases) {
            ParallelConfig par;
            par.tensorParallel = 8;
            par.pipelineParallel = 8;
            par.sequenceParallel = true;
            par.schedule = c.schedule;
            par.interleavedStages = c.v;

            TrainingOptions opts;
            opts.recompute = Recompute::Selective;

            TrainingReport rep = evaluateTraining(
                models::gpt175b(), presets::dgxA100(8), par, batch,
                opts);
            out.beginRow()
                .cell(c.name)
                .cell(100.0 * rep.bubbleFraction, 1)
                .cell(rep.timePerBatch, 2)
                .cell(rep.time.ppComm, 3)
                .cell(rep.memory.activations / GiB, 1);
            out.endRow();
        }
        std::cout << "Global batch " << batch << " ("
                  << batch / 1 << " microbatches/pipeline):\n";
        out.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Expected: interleaving divides the bubble by v at "
                 "the cost of v-times the p2p volume; GPipe's "
                 "activation footprint grows with the microbatch "
                 "count.\n";
    return 0;
}
