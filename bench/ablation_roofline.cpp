/**
 * @file
 * Ablation: hierarchical roofline with memory-aware tiling vs a naive
 * single-level (DRAM-only) roofline, and the value of the
 * size-dependent GEMM efficiency model.
 *
 * The paper credits its accuracy to DeepFlow's hierarchical roofline
 * with tiling (Sec. 3.1); a flat roofline that assumes compulsory
 * DRAM traffic and peak compute misclassifies kernels and
 * underestimates times. This bench quantifies both deltas on the
 * Table 1 / Table 2 workload kernels.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

namespace {

/** Naive roofline: peak compute vs compulsory DRAM traffic. */
double
naiveGemmTime(const Device &dev, const GemmShape &s)
{
    double flops = 2.0 * double(s.m) * s.n * s.k;
    double peak = dev.supportsMatrix(s.precision)
                      ? dev.matrixFlops(s.precision)
                      : dev.vectorFlops(s.precision);
    double elem = precisionBytes(s.precision);
    double bytes = elem * (double(s.m) * s.k + double(s.k) * s.n +
                           2.0 * double(s.m) * s.n);
    return std::max(flops / peak, bytes / dev.dram().bandwidth);
}

} // namespace

int
main()
{
    std::cout << "Ablation: hierarchical roofline + efficiency model "
                 "vs naive single-level roofline (A100)\n\n";

    Device dev = presets::a100_80gb();

    struct Shape
    {
        const char *name;
        GemmShape s;
    };
    const Shape shapes[] = {
        {"GPT-175B qkv (training)",
         {2048, 4608, 12288, Precision::FP16}},
        {"GPT-175B mlp-fc2 (training)",
         {2048, 12288, 6144, Precision::FP16}},
        {"attention qk^T (training)",
         {2048, 2048, 128, Precision::FP16}},
        {"Llama-13B qkv (prefill)",
         {200, 15360, 5120, Precision::FP16}},
        {"Llama-13B fc2 (decode)", {1, 5120, 13824, Precision::FP16}},
        {"square 8192", {8192, 8192, 8192, Precision::FP16}},
    };

    Table out({"Kernel", "hierarchical (us)", "naive (us)",
               "naive underestimates by", "bound (hier.)"});
    for (const Shape &sh : shapes) {
        KernelEstimate est = estimateGemm(dev, sh.s, sh.name);
        double naive = naiveGemmTime(dev, sh.s);
        out.beginRow()
            .cell(sh.name)
            .cell((est.time - est.overhead) * 1e6, 1)
            .cell(naive * 1e6, 1)
            .cell(std::to_string(
                      int(100.0 * (1.0 - naive / (est.time -
                                                  est.overhead)))) +
                  " %")
            .cell(est.boundName(dev));
        out.endRow();
    }
    out.print(std::cout);

    // End-to-end effect: replay Table 1's GPT-175B row with the
    // efficiency model disabled (ideal matrix engine).
    std::cout << "\nEnd-to-end effect on Table 1 (GPT-175B, 64 A100s, "
                 "full recompute, reference 18.1 s):\n\n";
    Table e2e({"Model variant", "t_pred (s)", "dE vs 18.1 s (%)"});

    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;

    TrainingReport rep = evaluateTraining(models::gpt175b(),
                                          presets::dgxA100(8), par, 64,
                                          {});
    e2e.beginRow()
        .cell("calibrated efficiency model")
        .cell(rep.timePerBatch, 1)
        .cell(relativeErrorPct(rep.timePerBatch, 18.1), 1);
    e2e.endRow();

    System ideal_sys = presets::dgxA100(8);
    ideal_sys.device.matrixMaxEfficiency = 1.0;
    ideal_sys.device.gemmKHalf = 0.0;
    TrainingReport ideal = evaluateTraining(models::gpt175b(),
                                            ideal_sys, par, 64, {});
    e2e.beginRow()
        .cell("ideal matrix engine (no efficiency model)")
        .cell(ideal.timePerBatch, 1)
        .cell(relativeErrorPct(ideal.timePerBatch, 18.1), 1);
    e2e.endRow();
    e2e.print(std::cout);
    return 0;
}
