/**
 * @file
 * Extension bench: bottleneck evolution, quantified.
 *
 * The paper's conclusion: "we reveal the evolution of performance
 * bottlenecks for both LLM training and inference with technology
 * scaling". This bench makes that one number per resource: the
 * elasticity of execution time with respect to each hardware resource
 * (-1 = fully bound, 0 = insensitive), across GPU generations.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

namespace {

Table
header()
{
    return Table({"System", "matrix", "DRAM", "on-chip", "intra-net",
                  "inter-net", "overheads"});
}

void
addRow(Table &out, const std::string &label,
       const std::vector<Sensitivity> &s)
{
    double v[6] = {0, 0, 0, 0, 0, 0};
    for (const Sensitivity &row : s)
        v[static_cast<int>(row.resource)] = row.elasticity;
    out.beginRow()
        .cell(label)
        .cell(v[0], 2)
        .cell(v[1], 2)
        .cell(v[2], 2)
        .cell(v[3], 2)
        .cell(v[4], 2)
        .cell(v[5], 2);
    out.endRow();
}

} // namespace

int
main()
{
    std::cout << "Extension: bottleneck elasticities "
                 "(d log time / d log resource; -1 = fully bound)\n\n";

    // ---- Training: GPT-175B, 64 GPUs, TP8 x PP8 ----------------------
    auto train = [](Precision prec) {
        return [prec](const System &sys) {
            ParallelConfig par;
            par.tensorParallel = 8;
            par.pipelineParallel = 8;
            par.sequenceParallel = true;
            TrainingOptions opts;
            opts.precision = prec;
            opts.recompute = Recompute::Selective;
            opts.memory.activationBytes =
                std::max(1.0, precisionBytes(prec));
            return evaluateTraining(models::gpt175b(), sys, par, 64,
                                    opts)
                .timePerBatch;
        };
    };

    Table tr = header();
    addRow(tr, "A100 (fp16)",
           analyzeSensitivity(presets::dgxA100(8),
                              train(Precision::FP16)));
    addRow(tr, "H100 (fp8)",
           analyzeSensitivity(presets::dgxH100(8),
                              train(Precision::FP8)));
    addRow(tr, "B200 (fp4)",
           analyzeSensitivity(presets::dgxB200(8),
                              train(Precision::FP4)));
    std::cout << "Training, GPT-175B (TP8 x PP8, 64 GPUs):\n";
    tr.print(std::cout);
    std::cout << "\nExpected: compute dominates on A100 and fades "
                 "toward B200 while memory and network elasticities "
                 "grow (Fig. 7's shift, in numbers).\n\n";

    // ---- Inference: Llama2-13B decode ----------------------------------
    auto infer = [](int tp) {
        return [tp](const System &sys) {
            InferenceOptions opts;
            opts.tensorParallel = tp;
            return evaluateInference(models::llama2_13b(), sys, opts)
                .totalLatency;
        };
    };

    Table inf = header();
    addRow(inf, "A100 TP1",
           analyzeSensitivity(presets::dgxA100(1), infer(1)));
    addRow(inf, "H100 TP1",
           analyzeSensitivity(presets::dgxH100(1), infer(1)));
    addRow(inf, "A100 TP8",
           analyzeSensitivity(presets::dgxA100(1), infer(8)));
    std::cout << "Inference, Llama2-13B (B=1, 200+200 tokens):\n";
    inf.print(std::cout);
    std::cout << "\nExpected: single-GPU decode is almost pure DRAM "
                 "(Sec. 6.1); at TP8 the per-token collectives make "
                 "software overheads the co-bottleneck (Sec. 6.2).\n";
    return 0;
}
