/**
 * @file
 * Extension bench: training energy and total cost of operation across
 * GPU generations — the paper's stated future work ("integrating a
 * cost and an energy model ... performing complete performance per
 * TCO analysis", Sec. 7).
 *
 * GPT-3 175B, 1024 GPUs, 300B-token run (the GPT-3 training budget),
 * per generation with its native training precision.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Extension: training energy & TCO, GPT-3 175B, "
                 "1024 GPUs, 300B-token run\n\n";

    struct Row
    {
        const char *label;
        System sys;
        Precision precision;
        double priceUsd;
        double tdp;
        double logicEfficiencyScale;  ///< vs A100's 7 nm
    };
    const Row rows[] = {
        {"A100-HDR (fp16)", presets::dgxA100(128), Precision::FP16,
         15000, 400, 1.0},
        {"H100-NDR (fp8)", presets::dgxH100(128), Precision::FP8,
         30000, 700, 1.69},
        {"B200-NVS (fp4)", presets::dgxB200Nvs(128), Precision::FP4,
         45000, 1000, 2.20},
    };

    const double total_tokens = 300e9;
    const long long batch = 1024;
    const double tokens_per_batch = double(batch) * 2048.0;
    const long long batches =
        static_cast<long long>(total_tokens / tokens_per_batch);

    Table out({"System", "t/batch (s)", "run days", "MWh",
               "avg MW", "capex $M", "energy $M", "total $M"});

    for (const Row &row : rows) {
        ParallelConfig par;
        par.dataParallel = 16;
        par.tensorParallel = 8;
        par.pipelineParallel = 8;
        par.sequenceParallel = true;
        par.schedule = PipelineSchedule::Interleaved1F1B;
        par.interleavedStages = 12;

        TrainingOptions opts;
        opts.precision = row.precision;
        opts.recompute = Recompute::Selective;
        opts.memory.activationBytes =
            std::max(1.0, precisionBytes(row.precision));

        TrainingReport rep = evaluateTraining(models::gpt175b(),
                                              row.sys, par, batch,
                                              opts);

        EnergyModel energy;
        energy.devicePower = row.tdp;
        energy = energy.scaled(row.logicEfficiencyScale,
                               energy.dramEnergyPerByte);
        EnergyReport e = trainingEnergyPerBatch(
            models::gpt175b(), row.sys, par, batch, rep, energy);

        TcoModel tco;
        tco.devicePriceUsd = row.priceUsd;
        TcoReport cost = trainingCost(row.sys, rep.timePerBatch,
                                      batches, e);

        double run_days =
            rep.timePerBatch * double(batches) / 86400.0;
        double mwh = e.total() * double(batches) / 3.6e9;

        out.beginRow()
            .cell(row.label)
            .cell(rep.timePerBatch, 2)
            .cell(run_days, 1)
            .cell(mwh, 0)
            .cell(e.averagePower(rep.timePerBatch) / 1e6, 2)
            .cell(cost.capexUsd / 1e6, 2)
            .cell(cost.energyUsd / 1e6, 2)
            .cell(cost.totalUsd / 1e6, 2);
        out.endRow();
    }
    out.print(std::cout);

    std::cout << "\nContext: the paper's introduction quotes ~$10M "
                 "for the original GPT-3 run. That figure reflects "
                 "V100-class hardware (~10x slower than A100 here) at "
                 "cloud list prices (~4x over amortized capex); "
                 "applying both factors to the A100 row recovers the "
                 "same order of magnitude. The table shows amortized "
                 "owner cost, which newer generations keep shrinking "
                 "despite higher device prices.\n";
    return 0;
}
