/**
 * @file
 * Extension bench: long-context inference scaling (paper Sec. 1.1:
 * "execution time and memory complexity of attention grows
 * quadratically with sequence length. An important challenge ... is
 * scaling the performance of transformer models with long
 * sequences").
 *
 * Llama2-13B on one H100: prompt length 1k..32k, fixed 256 generated
 * tokens, with and without FlashAttention for the prefill.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Extension: long-context inference, Llama2-13B on "
                 "1x H100, 256 generated tokens\n\n";

    TransformerConfig model = models::llama2_13b();
    System sys = presets::dgxH100(1);

    Table out({"Prompt", "prefill (ms)", "prefill+FA (ms)",
               "FA speedup", "decode ms/token", "KV cache (GiB)",
               "fits"});

    for (long long prompt :
         {1024LL, 2048LL, 4096LL, 8192LL, 16384LL, 32768LL}) {
        InferenceOptions opts;
        opts.tensorParallel = 1;
        opts.batch = 1;
        opts.promptLength = prompt;
        opts.generateLength = 256;

        InferenceReport plain = evaluateInference(model, sys, opts);
        opts.flashAttention = true;
        InferenceReport flash = evaluateInference(model, sys, opts);

        out.beginRow()
            .cell(prompt)
            .cell(plain.prefill.time * 1e3, 1)
            .cell(flash.prefill.time * 1e3, 1)
            .cell(plain.prefill.time / flash.prefill.time, 2)
            .cell(flash.decode.time / 256.0 * 1e3, 2)
            .cell(flash.kvCacheBytes / GiB, 2)
            .cell(flash.fitsDeviceMemory ? "yes" : "NO");
        out.endRow();
    }
    out.print(std::cout);

    std::cout << "\nExpected: unfused prefill grows quadratically "
                 "and FlashAttention's advantage widens with the "
                 "prompt; decode cost creeps up only through the "
                 "KV-cache reads, which eventually crowd out the "
                 "weights in device memory.\n";
    return 0;
}
