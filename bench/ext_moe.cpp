/**
 * @file
 * Extension bench: mixture-of-experts workload analysis — Mixtral
 * 8x7B against dense models of equal total and equal active size, and
 * the expert-parallelism degree trade-off (all-to-all communication
 * vs per-device expert memory).
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Extension: MoE workload analysis (Mixtral 8x7B, "
                 "top-2 of 8 experts)\n\n";

    TransformerConfig moe = models::mixtral8x7b();
    TransformerConfig dense_active = models::llama2_13b();
    TransformerConfig dense_total = models::llama2_70b();

    // ---- Inference: tokens/s on 2x A100 -------------------------------
    System sys = presets::dgxA100(1);
    Table inf({"Model", "Params (B)", "Latency (ms)",
               "Weights (GiB)", "Decode mem (ms)"});
    for (const TransformerConfig &m :
         {moe, dense_active, dense_total}) {
        InferenceOptions opts;
        opts.tensorParallel = 2;
        InferenceReport rep = evaluateInference(m, sys, opts);
        inf.beginRow()
            .cell(m.name)
            .cell(m.parameterCount() / 1e9, 1)
            .cell(rep.totalLatency * 1e3, 0)
            .cell(rep.weightBytes / GiB, 1)
            .cell(rep.decode.memoryTime * 1e3, 0);
        inf.endRow();
    }
    std::cout << "Inference, TP2 A100, B=1, 200+200 tokens:\n";
    inf.print(std::cout);
    std::cout << "\nExpected: Mixtral decodes near the 13B dense "
                 "model (only active experts stream) while holding "
                 "47B parameters.\n\n";

    // ---- Training: EP degree sweep on 64 A100s -------------------------
    std::cout << "Training, 64x A100, batch 256, DP16-TP4, "
                 "selective recompute, EP sweep:\n";
    Table tr({"EP", "t/batch (s)", "EP comm (s)", "DP comm (s)",
              "Weights+opt/GPU (GiB)", "Fits 80GB"});
    System cluster = presets::dgxA100(8);
    for (long long ep : {1LL, 2LL, 4LL, 8LL}) {
        ParallelConfig par;
        par.dataParallel = 16;
        par.tensorParallel = 4;
        par.expertParallel = ep;

        TrainingOptions opts;
        opts.recompute = Recompute::Selective;

        TrainingReport rep =
            evaluateTraining(moe, cluster, par, 256, opts);
        double static_mem = rep.memory.weights +
                            rep.memory.gradients +
                            rep.memory.optimizer;
        tr.beginRow()
            .cell(ep)
            .cell(rep.timePerBatch, 2)
            .cell(rep.time.epComm, 3)
            .cell(rep.time.dpComm, 3)
            .cell(static_mem / GiB, 1)
            .cell(rep.memory.total() <= 80 * GiB ? "yes" : "NO");
        tr.endRow();
    }
    tr.print(std::cout);
    std::cout << "\nExpected: raising EP trades all-to-all time for "
                 "a ~numExperts-fold cut in per-device expert "
                 "weights/optimizer state, turning an overflowing "
                 "replica into a fitting one.\n";
    return 0;
}
