/**
 * @file
 * Extension bench: serving throughput and cost per million generated
 * tokens across devices and batch sizes — the "performance per TCO"
 * analysis the paper's introduction motivates and its conclusion
 * lists as future work.
 *
 * Llama2-13B chat serving, 512-token prompt, 256 generated tokens,
 * continuous batching.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Extension: serving throughput and $/Mtok, "
                 "Llama2-13B (512+256 tokens)\n\n";

    TransformerConfig model = models::llama2_13b();

    for (const System &sys :
         {presets::dgxA100(1), presets::dgxH100(1),
          presets::dgxB200(1)}) {
        ServingOptions opts;
        opts.tensorParallel = 1;

        ServingCostModel cost;
        // Rough street prices per accelerator.
        if (sys.device.name == "A100-80GB")
            cost.tco.devicePriceUsd = 15000;
        else if (sys.device.name == "H100-SXM")
            cost.tco.devicePriceUsd = 30000;
        else
            cost.tco.devicePriceUsd = 45000;
        cost.energy.devicePower =
            sys.device.name == "A100-80GB" ? 400.0 : 700.0;

        Table out({"Batch", "tok/s", "ms/token", "TTFT (ms)",
                   "KV/GPU (GiB)", "fits", "$/Mtok"});
        for (long long b : {1LL, 4LL, 16LL, 64LL, 128LL}) {
            ServingPoint pt =
                evaluateServingPoint(model, sys, opts, b);
            out.beginRow()
                .cell(b)
                .cell(pt.tokensPerSecond, 0)
                .cell(pt.interTokenLatency * 1e3, 2)
                .cell(pt.timeToFirstToken * 1e3, 1)
                .cell(pt.kvCacheBytesPerDevice / GiB, 1)
                .cell(pt.fits ? "yes" : "NO")
                .cell(costPerMillionTokens(sys, opts, pt, cost), 2);
            out.endRow();
        }
        std::cout << sys.device.name << ":\n";
        out.print(std::cout);

        ServingPoint best = maxThroughputPoint(model, sys, opts);
        std::cout << "best fitting batch " << best.batch << " -> "
                  << best.tokensPerSecond << " tok/s, "
                  << costPerMillionTokens(sys, opts, best, cost)
                  << " $/Mtok\n\n";
    }

    std::cout << "Expected: batching divides $/Mtok by an order of "
                 "magnitude until the KV cache exhausts device "
                 "memory; newer devices win on throughput but must "
                 "amortize higher capex.\n";
    return 0;
}
