/**
 * @file
 * Extension bench: speculative decoding — how much of the DRAM-bound
 * decode headroom (paper Sec. 6.1) a draft model can recover, across
 * draft choices, gamma and acceptance rates.
 *
 * Target Llama2-70B on 2x A100 (TP2), draft Llama2-7B.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Extension: speculative decoding, Llama2-70B target "
                 "(TP2 A100), Llama2-7B draft\n\n";

    System sys = presets::dgxA100(1);
    TransformerConfig target = models::llama2_70b();
    TransformerConfig draft = models::llama2_7b();

    Table out({"gamma", "accept", "tokens/cycle", "cycle (ms)",
               "tok/s", "baseline tok/s", "speedup"});
    for (long long gamma : {2LL, 4LL, 8LL}) {
        for (double accept : {0.6, 0.8, 0.9}) {
            SpeculativeOptions opts;
            opts.tensorParallel = 2;
            opts.gamma = gamma;
            opts.acceptanceRate = accept;
            SpeculativeReport rep =
                evaluateSpeculative(target, draft, sys, opts);
            out.beginRow()
                .cell(gamma)
                .cell(accept, 2)
                .cell(rep.expectedTokensPerCycle, 2)
                .cell(rep.cycleTime * 1e3, 2)
                .cell(rep.tokensPerSecond, 1)
                .cell(rep.baselineTokensPerSecond, 1)
                .cell(rep.speedup, 2);
            out.endRow();
        }
    }
    out.print(std::cout);

    std::cout << "\nExpected: the parallel verify pass costs barely "
                 "more than one decode step (weights stream once for "
                 "gamma+1 tokens), so speedup tracks the acceptance "
                 "rate; past the optimum, extra drafts are wasted.\n";
    return 0;
}
