/**
 * @file
 * Reproduces paper Fig. 3: correlation between measured GEMV runtime
 * and the model prediction on an A100, across LLM-shaped kernels.
 *
 * Hardware substitution (see DESIGN.md): the clustered size-dependent
 * DRAM-utilization model — the variant the paper fits to profiled
 * kernels (5.4% error) — serves as the measurement proxy; the
 * simplified constant-utilization-factor model is the prediction. The
 * paper's qualitative claim is reproduced: negligible error for large
 * matrices, software-overhead-dominated error for small kernels.
 */

#include <iostream>
#include <vector>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Fig. 3: GEMV validation on A100 (clustered-"
                 "utilization proxy vs constant-factor prediction)\n\n";

    Device dev = presets::a100_80gb();

    // LLM-shaped GEMV dimensions: hidden sizes and FFN widths of the
    // model families, from small (error dominated by launch overhead)
    // to large.
    std::vector<std::pair<long long, long long>> shapes = {
        {256, 256},     {512, 512},     {1024, 1024},
        {2048, 2048},   {4096, 4096},   {4096, 11008},
        {5120, 5120},   {5120, 13824},  {8192, 8192},
        {8192, 28672},  {12288, 12288}, {12288, 49152},
        {16384, 16384}, {20480, 20480}, {25600, 25600},
    };

    Table out({"m", "k", "t_meas (us)", "t_pred (us)", "dE (%)",
               "regime"});

    double err_large = 0.0;
    int n_large = 0;
    double err_small = 0.0;
    int n_small = 0;
    for (auto [m, k] : shapes) {
        KernelEstimate meas = estimateGemv(dev, m, k, Precision::FP16,
                                           "gemv",
                                           GemvUtilMode::Clustered);
        KernelEstimate pred = estimateGemv(dev, m, k, Precision::FP16,
                                           "gemv",
                                           GemvUtilMode::Constant);
        double err = relativeErrorPct(pred.time, meas.time);
        bool large = meas.bytesPerLevel[0] > 8.0e6;
        if (large) {
            err_large += err;
            ++n_large;
        } else {
            err_small += err;
            ++n_small;
        }
        out.beginRow()
            .cell(m)
            .cell(k)
            .cell(meas.time * 1e6, 2)
            .cell(pred.time * 1e6, 2)
            .cell(formatErrorPct(err))
            .cell(large ? "large" : "small");
        out.endRow();
    }
    out.print(std::cout);

    std::cout << "\nmean |dE| large matrices = " << err_large / n_large
              << " % (paper: negligible for large sizes)\n"
              << "mean |dE| small matrices = " << err_small / n_small
              << " % (paper: software overhead non-negligible)\n";
    return 0;
}
