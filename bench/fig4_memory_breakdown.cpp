/**
 * @file
 * Reproduces paper Fig. 4: per-GPU training memory breakdown (weights,
 * gradients, optimizer states, activations) for GPT models under
 * three activation-recomputation strategies, against the 80 GB A100
 * capacity line. Training configurations follow Table 1; mixed
 * precision with 2-byte activations.
 */

#include <iostream>
#include <vector>

#include "core/optimus.h"

using namespace optimus;

namespace {

struct Case
{
    TransformerConfig model;
    long long batch, dp, tp, pp;
    bool sp;
};

} // namespace

int
main()
{
    std::cout << "Fig. 4: training memory breakdown per GPU (GiB); "
                 "A100 capacity = 80 GiB\n\n";

    // Table 1 configurations, with sequence parallelism on (the
    // paper's SP rows; SP only shrinks the footprint).
    std::vector<Case> cases = {
        {models::gpt175b(), 64, 1, 8, 8, true},
        {models::gpt530b(), 280, 1, 8, 35, true},
        {models::gpt1008b(), 512, 1, 8, 64, true},
    };

    Table out({"Model", "Recompute", "Weights", "Grads", "Optimizer",
               "Activations", "Total", "Fits 80GB"});

    for (const Case &c : cases) {
        for (Recompute r : {Recompute::None, Recompute::Selective,
                            Recompute::Full}) {
            ParallelConfig par;
            par.dataParallel = c.dp;
            par.tensorParallel = c.tp;
            par.pipelineParallel = c.pp;
            par.sequenceParallel = c.sp;

            TrainingMemory mem = trainingMemoryPerDevice(
                c.model, par, c.batch, 2048, r);

            out.beginRow()
                .cell(c.model.name)
                .cell(recomputeName(r))
                .cell(mem.weights / GiB, 1)
                .cell(mem.gradients / GiB, 1)
                .cell(mem.optimizer / GiB, 1)
                .cell(mem.activations / GiB, 1)
                .cell(mem.total() / GiB, 1)
                .cell(mem.total() <= 80 * GiB ? "yes" : "NO");
            out.endRow();
        }
    }
    out.print(std::cout);

    std::cout << "\nExpected shape (paper): no recomputation "
                 "overflows the device; selective sits close to full "
                 "with little compute overhead.\n";
    return 0;
}
