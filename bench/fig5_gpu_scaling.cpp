/**
 * @file
 * Reproduces paper Fig. 5: GPT-3 175B training-time scaling across
 * GPU generations (A100 -> H100 -> H200 -> B200), with inter-node
 * networks HDR IB / NDR IB / NVLink Switch System (NVS), normalized
 * against B200-NVS-L. "L" rows use the larger 4096 batch enabled by
 * bigger DRAM. Configuration from Table 3: DP-TP-SP-PP = 128-8-8-8
 * (8192 GPUs), interleaved pipeline schedule.
 *
 * Precisions follow the paper's narrative: A100 trains in FP16, H100/
 * H200 use the FP8 transformer engine, B200 uses FP4.
 */

#include <iostream>
#include <vector>

#include "core/optimus.h"

using namespace optimus;

namespace {

struct Config
{
    std::string label;
    System sys;
    Precision precision;
    long long batch;
};

} // namespace

int
main()
{
    std::cout << "Fig. 5: GPT3-175B training scaling across GPU "
                 "generations (Table 3 config: 128-8-8-8, 8192 GPUs)"
              << "\n\n";

    const int nodes = 1024;
    std::vector<Config> configs = {
        {"A100-HDR", presets::dgxA100(nodes), Precision::FP16, 1024},
        {"H100-NDR", presets::dgxH100(nodes), Precision::FP8, 1024},
        {"H100-NVS", presets::dgxH100Nvs(nodes), Precision::FP8, 1024},
        {"H200-NVS", presets::dgxH200Nvs(nodes), Precision::FP8, 1024},
        {"H200-NVS-L", presets::dgxH200Nvs(nodes), Precision::FP8,
         4096},
        {"B200-NDR", presets::dgxB200(nodes), Precision::FP4, 1024},
        {"B200-NVS", presets::dgxB200Nvs(nodes), Precision::FP4, 1024},
        {"B200-NVS-L", presets::dgxB200Nvs(nodes), Precision::FP4,
         4096},
    };

    struct Result
    {
        std::string label;
        TrainingReport rep;
        double throughput = 0.0;  ///< sequences per second
    };

    // The per-generation evaluations are independent; fan them out
    // (OPTIMUS_THREADS controls the width, default serial). Results
    // land by slot, so the table is identical at any thread count.
    std::vector<Result> results = exec::parallelMap(
        static_cast<long long>(configs.size()), resolveThreads(),
        [&](long long idx) {
            const Config &c = configs[static_cast<size_t>(idx)];
            ParallelConfig par;
            par.dataParallel = 128;
            par.tensorParallel = 8;
            par.pipelineParallel = 8;
            par.sequenceParallel = true;
            // Plain PipeDream-Flush, as the paper's batch-size
            // discussion implies: the 1024-batch rows run only 8
            // microbatches per pipeline and pay a large bubble,
            // which the "L" rows amortize (that is how a larger
            // batch "accelerates" here).
            par.schedule = PipelineSchedule::OneFOneB;

            TrainingOptions opts;
            opts.precision = c.precision;
            opts.recompute = Recompute::Selective;
            opts.memory.activationBytes =
                std::max(1.0, precisionBytes(c.precision));

            TrainingReport rep = evaluateTraining(
                models::gpt175b(), c.sys, par, c.batch, opts);
            return Result{c.label, rep,
                          double(c.batch) / rep.timePerBatch};
        });

    // Normalize throughput-per-batch against B200-NVS-L, as in the
    // figure ("training times are normalized against B200-NVS-L").
    double best = results.back().throughput;
    double a100 = results.front().throughput;

    // Ledger entry for the regression sentinel. The per-generation
    // predictions are deterministic regardless of OPTIMUS_THREADS, so
    // this record diffs cleanly against baselines/fig5.json at any
    // fan-out width.
    JsonValue bench_cfg = JsonValue::object();
    bench_cfg.set("bench", JsonValue::string("fig5"));
    bench_cfg.set("nodes", JsonValue::number(double(nodes)));
    bench_cfg.set("configs",
                  JsonValue::number(double(configs.size())));
    report::RunRecord rec =
        report::beginBenchRecord("fig5", std::move(bench_cfg));

    Table out({"System", "Batch", "t/batch (s)", "Compute (%)",
               "Comm (%)", "Other (%)", "Norm. time", "Speedup/A100"});
    for (const Result &r : results) {
        const TrainingBreakdown &t = r.rep.time;
        double total = r.rep.timePerBatch;
        out.beginRow()
            .cell(r.label)
            .cell(r.rep.microbatches * 128)
            .cell(total, 2)
            .cell(100.0 * t.compute() / total, 1)
            .cell(100.0 * t.communication() / total, 1)
            .cell(100.0 * t.other() / total, 1)
            .cell(best / r.throughput, 3)
            .cell(r.throughput / a100, 1);
        out.endRow();

        rec.setMetric(r.label + "/time-per-batch", total);
        rec.setMetric(r.label + "/time-compute", t.compute());
        rec.setMetric(r.label + "/time-comm", t.communication());
        rec.setMetric(r.label + "/time-other", t.other());
        rec.setMetric(r.label + "/norm-time", best / r.throughput);
        rec.setMetric(r.label + "/mfu", r.rep.mfu);
    }
    out.print(std::cout);

    std::cout << "\nA100 -> B200-NVS-L speedup: " << best / a100
              << "x (paper: ~35x following NVIDIA's scaling trend)\n";

    rec.setMetric("speedup/a100-to-b200-nvs-l", best / a100);
    report::writeRunRecord("RUN_fig5.json", rec);
    std::cout << "wrote RUN_fig5.json\n";
    return 0;
}
