/**
 * @file
 * Reproduces paper Fig. 6: training-time scaling of GPT-7B on 1024
 * GPUs across logic technology nodes N12..N1, for four HBM
 * generations and three inter-node network technologies. At every
 * corner the DSE engine (Sec. 3.6) re-optimizes the area/power split.
 * Configuration from Table 3: DP-TP-SP-PP = 64-4-4-4.
 *
 * Expected shape: training time drops steeply through N5 then
 * saturates (compute-bound layers turn memory-bound); HBM2 -> HBM2E
 * is a large gain while HBM3 -> HBM4 adds little (network-bound);
 * raising the inter-node network 100 -> 400 GB/s helps markedly.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

namespace {

double
trainTime(const Device &dev, const NetworkLink &inter)
{
    System sys = makeSystem(dev, 8, 128, presets::nvlink4(), inter);

    ParallelConfig par;
    par.dataParallel = 64;
    par.tensorParallel = 4;
    par.pipelineParallel = 4;
    par.sequenceParallel = true;
    par.schedule = PipelineSchedule::Interleaved1F1B;
    par.interleavedStages = 8;

    TrainingOptions opts;
    opts.recompute = Recompute::Selective;
    return evaluateTraining(models::gpt7b(), sys, par, 512, opts)
        .timePerBatch;
}

} // namespace

int
main()
{
    std::cout << "Fig. 6: technology-node scaling, GPT-7B on 1024 "
                 "GPUs (Table 3 config: 64-4-4-4)\n"
              << "Cell value: DSE-optimized training time per batch "
                 "(s)\n\n";

    DseOptions dse;
    dse.gridSteps = 3;
    dse.refineRounds = 10;
    // Each (node, DRAM) cell is an independent DSE run: fan the cells
    // out through the exec layer and keep each inner search serial so
    // the worker count stays bounded. Cells land by slot, so the
    // printed tables are identical at any OPTIMUS_THREADS value.
    dse.threads = 1;
    const int threads = resolveThreads();

    // Ledger entry for the regression sentinel: one metric per
    // (network, node, DRAM) corner, diffable against
    // baselines/fig6.json.
    JsonValue bench_cfg = JsonValue::object();
    bench_cfg.set("bench", JsonValue::string("fig6"));
    bench_cfg.set("grid_steps", JsonValue::number(double(dse.gridSteps)));
    bench_cfg.set("refine_rounds",
                  JsonValue::number(double(dse.refineRounds)));
    report::RunRecord rec =
        report::beginBenchRecord("fig6", std::move(bench_cfg));

    for (const NetworkLink &net : nettech::scalingSweep()) {
        std::vector<std::string> headers = {"Node"};
        for (const DramTech &d : dram::trainingSweep())
            headers.push_back(d.name);
        Table out(std::move(headers));

        struct Cell
        {
            LogicNode node;
            DramTech dram;
        };
        std::vector<Cell> cells;
        for (const LogicNode &node : logicNodes())
            for (const DramTech &d : dram::trainingSweep())
                cells.push_back(Cell{node, d});

        std::vector<double> objectives = exec::parallelMap(
            static_cast<long long>(cells.size()), threads,
            [&](long long i) {
                const Cell &c = cells[static_cast<size_t>(i)];
                TechConfig tech;
                tech.node = c.node;
                tech.dram = c.dram;
                DseResult r = optimizeAllocation(
                    tech,
                    [&](const Device &dev) {
                        return trainTime(dev, net);
                    },
                    dse);
                return r.objective;
            });

        size_t idx = 0;
        for (const LogicNode &node : logicNodes()) {
            out.beginRow().cell(node.name);
            for (size_t d = 0;
                 d < dram::trainingSweep().size(); ++d) {
                rec.setMetric(net.name + "/" + node.name + "/" +
                                  cells[idx].dram.name,
                              objectives[idx]);
                out.cell(objectives[idx++], 3);
            }
            out.endRow();
        }

        std::cout << "Inter-node network: " << net.name << " ("
                  << formatBandwidth(net.bandwidth) << " per node)\n";
        out.print(std::cout);
        std::cout << "\n";
    }

    report::writeRunRecord("RUN_fig6.json", rec);
    std::cout << "wrote RUN_fig6.json\n";
    return 0;
}
