/**
 * @file
 * Reproduces paper Fig. 7: GEMM-time breakdown of a single
 * transformer layer by bound type (compute vs DRAM vs on-chip
 * memory), as the logic node scales, for HBM2 / HBM3 / HBM4. The
 * devices are the DSE-optimized designs of the Fig. 6 experiment.
 *
 * Expected shape: at old nodes the layer is dominated by
 * compute-bound GEMM time; with node scaling the memory-bound share
 * grows and dominates ("the impact of memory boundedness becomes
 * dominant gradually with the scaling").
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Fig. 7: GEMM time breakdown per transformer layer "
                 "by bound type (GPT-7B layer, DSE devices of the "
                 "Fig. 6 sweep)\n\n";

    TransformerConfig model = models::gpt7b();
    LayerGraphParams gp;
    gp.batch = 1;
    gp.seq = 2048;
    gp.tensorParallel = 4;
    gp.sequenceParallel = true;
    gp.training = true;

    DseOptions dse;
    dse.gridSteps = 3;
    dse.refineRounds = 10;
    NetworkLink net = nettech::gdrX8();

    for (const DramTech &d :
         {dram::hbm2(), dram::hbm3_26(), dram::hbm4()}) {
        Table out({"Node", "compute (%)", "DRAM (%)", "on-chip (%)",
                   "GEMM time (ms)"});
        for (const LogicNode &node : logicNodes()) {
            TechConfig tech;
            tech.node = node;
            tech.dram = d;
            DseResult r = optimizeAllocation(
                tech,
                [&](const Device &dev) {
                    System sys = makeSystem(dev, 8, 128,
                                            presets::nvlink4(), net);
                    ParallelConfig par;
                    par.dataParallel = 64;
                    par.tensorParallel = 4;
                    par.pipelineParallel = 4;
                    par.sequenceParallel = true;
                    par.schedule = PipelineSchedule::Interleaved1F1B;
                    par.interleavedStages = 8;
                    TrainingOptions opts;
                    opts.recompute = Recompute::Selective;
                    return evaluateTraining(model, sys, par, 512, opts)
                        .timePerBatch;
                },
                dse);

            double compute = 0.0, dram_t = 0.0, onchip = 0.0;
            for (const Op &op : layerForwardOps(model, gp)) {
                if (op.kind != OpKind::Gemm)
                    continue;
                KernelEstimate est = evaluateOp(r.device, op);
                double t = est.time - est.overhead;
                if (est.computeBound())
                    compute += t;
                else if (est.dramBound())
                    dram_t += t;
                else
                    onchip += t;
            }
            double total = compute + dram_t + onchip;
            out.beginRow()
                .cell(node.name)
                .cell(100.0 * compute / total, 1)
                .cell(100.0 * dram_t / total, 1)
                .cell(100.0 * onchip / total, 1)
                .cell(total * 1e3, 3);
            out.endRow();
        }
        std::cout << "DRAM technology: " << d.name << " ("
                  << formatBandwidth(d.bandwidth) << ")\n";
        out.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
