/**
 * @file
 * Reproduces paper Fig. 8: GEMM time breakdown per layer by bound
 * type in the summarization (prefill) phase of Llama2-13B inference,
 * for batch sizes 1 and 16, on A100 and H100; plus the inset (device
 * memory capacity vs KV-cache and weight footprint).
 *
 * Paper numbers: A100 B=1 ~67% of GEMM time compute-bound, growing to
 * ~96% at B=16; H100 B=1 0% compute-bound, growing to ~85% at B=16.
 * The generation phase is completely memory-bound.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Fig. 8: prefill GEMM time by bound type, "
                 "Llama2-13B (fp16, 200-token prompt)\n\n";

    TransformerConfig model = models::llama2_13b();

    Table out({"Device", "Batch", "compute-bound (%)",
               "memory-bound (%)", "prefill (ms)", "decode mem-bound "
               "(%)"});

    for (const System &sys :
         {presets::dgxA100(1), presets::dgxH100(1)}) {
        for (long long batch : {1LL, 16LL}) {
            InferenceOptions opts;
            opts.tensorParallel = 1;
            opts.batch = batch;
            opts.promptLength = 200;
            opts.generateLength = 200;

            InferenceReport rep =
                evaluateInference(model, sys, opts);

            double gemm_total = rep.prefill.computeBoundGemmTime +
                                rep.prefill.memoryBoundGemmTime;
            double dec_total = rep.decode.computeBoundGemmTime +
                               rep.decode.memoryBoundGemmTime;
            out.beginRow()
                .cell(sys.device.name)
                .cell(batch)
                .cell(100.0 * rep.prefill.computeBoundGemmTime /
                          gemm_total,
                      1)
                .cell(100.0 * rep.prefill.memoryBoundGemmTime /
                          gemm_total,
                      1)
                .cell(rep.prefill.time * 1e3, 2)
                .cell(100.0 * rep.decode.memoryBoundGemmTime /
                          dec_total,
                      1);
            out.endRow();
        }
    }
    out.print(std::cout);

    std::cout << "\nInset: memory footprint (Llama2-13B, context "
                 "400)\n\n";
    Table inset({"Batch", "KV cache (GiB)", "Weights (GiB)",
                 "A100 capacity (GiB)"});
    for (long long batch : {1LL, 16LL}) {
        inset.beginRow()
            .cell(batch)
            .cell(kvCacheBytes(model, batch, 400, Precision::FP16) /
                      GiB,
                  2)
            .cell(modelWeightBytes(model, Precision::FP16) / GiB, 2)
            .cell(80.0, 0);
        inset.endRow();
    }
    inset.print(std::cout);
    return 0;
}
