/**
 * @file
 * Reproduces paper Fig. 9: impact of DRAM technology scaling on
 * inference latency. Llama2-13B, batch 1, 200 prompt + 200 generated
 * tokens; the on-chip design is held at A100 (7 nm) while DRAM sweeps
 * GDDR6 -> HBM2 -> HBM2E -> HBM3 -> HBM3E -> HBMX, on 2-GPU and
 * 8-GPU systems over NVLink-Gen3; plus an HBMX + NVLink-Gen4 point
 * and the 2x/8x H100-HBM3E reference lines.
 *
 * Expected shape: latency scales nearly linearly with DRAM bandwidth
 * up to HBM3, slows toward HBM3E, and flattens beyond (the problem
 * turns L2-bound once DRAM out-runs the last-level cache); NV3 -> NV4
 * yields a modest (~12%) communication gain; at 8 GPUs communication
 * is roughly 1.6x the memory time.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

namespace {

InferenceReport
run(const Device &dev, const NetworkLink &nv, int tp)
{
    System sys = makeSystem(dev, 8, 1, nv, presets::ndrInfiniBand());
    InferenceOptions opts;
    opts.tensorParallel = tp;
    opts.batch = 1;
    opts.promptLength = 200;
    opts.generateLength = 200;
    return evaluateInference(models::llama2_13b(), sys, opts);
}

} // namespace

int
main()
{
    std::cout << "Fig. 9: DRAM technology scaling for inference, "
                 "Llama2-13B, B=1, 200+200 tokens, A100-class "
                 "on-chip design\n\n";

    Device a100 = presets::a100_80gb();

    // Ledger entry for the regression sentinel: one metric triple per
    // (TP, DRAM, network) point, diffable against baselines/fig9.json.
    JsonValue bench_cfg = JsonValue::object();
    bench_cfg.set("bench", JsonValue::string("fig9"));
    report::RunRecord rec =
        report::beginBenchRecord("fig9", std::move(bench_cfg));
    auto record_point = [&rec](int tp, const std::string &dram,
                               const std::string &net,
                               const InferenceReport &rep) {
        std::string base = "tp" + std::to_string(tp) + "/" + dram +
                           "/" + net;
        rec.setMetric(base + "/latency-ms", rep.totalLatency * 1e3);
        rec.setMetric(base + "/decode-mem-ms",
                      rep.decode.memoryTime * 1e3);
        rec.setMetric(base + "/decode-comm-ms",
                      rep.decode.commTime * 1e3);
    };

    for (int tp : {2, 8}) {
        Table out({"DRAM", "Network", "latency (ms)", "decode mem "
                   "(ms)", "decode comm (ms)", "comm/mem"});
        // The DRAM sweep points are independent: evaluate them
        // through the exec layer (OPTIMUS_THREADS wide, default
        // serial) and print from the slot-ordered results.
        const std::vector<DramTech> sweep = dram::inferenceSweep();
        std::vector<InferenceReport> reports = exec::parallelMap(
            static_cast<long long>(sweep.size()), resolveThreads(),
            [&](long long i) {
                const DramTech &d = sweep[static_cast<size_t>(i)];
                Device dev = presets::withDram(
                    a100, d.name, d.bandwidth, d.capacity);
                return run(dev, presets::nvlink3(), tp);
            });
        for (size_t i = 0; i < sweep.size(); ++i) {
            const InferenceReport &rep = reports[i];
            record_point(tp, sweep[i].name, "NV3", rep);
            out.beginRow()
                .cell(sweep[i].name)
                .cell("NV3")
                .cell(rep.totalLatency * 1e3, 1)
                .cell(rep.decode.memoryTime * 1e3, 1)
                .cell(rep.decode.commTime * 1e3, 1)
                .cell(rep.decode.commTime /
                          std::max(rep.decode.memoryTime, 1e-9),
                      2);
            out.endRow();
        }

        // HBMX with the faster NVLink-Gen4 interconnect.
        DramTech hx = dram::hbmx();
        Device dev = presets::withDram(a100, hx.name, hx.bandwidth,
                                       hx.capacity);
        InferenceReport rep = run(dev, presets::nvlink4(), tp);
        record_point(tp, hx.name, "NV4", rep);
        out.beginRow()
            .cell(hx.name)
            .cell("NV4")
            .cell(rep.totalLatency * 1e3, 1)
            .cell(rep.decode.memoryTime * 1e3, 1)
            .cell(rep.decode.commTime * 1e3, 1)
            .cell(rep.decode.commTime /
                      std::max(rep.decode.memoryTime, 1e-9),
                  2);
        out.endRow();

        // Reference line: H100-HBM3E over NVLink-Gen4.
        DramTech h3e = dram::hbm3e();
        Device h100 = presets::withDram(presets::h100_sxm(), h3e.name,
                                        h3e.bandwidth, h3e.capacity);
        InferenceReport href = run(h100, presets::nvlink4(), tp);
        record_point(tp, "h100-hbm3e-ref", "NV4", href);
        out.beginRow()
            .cell("H100-HBM3E (ref)")
            .cell("NV4")
            .cell(href.totalLatency * 1e3, 1)
            .cell(href.decode.memoryTime * 1e3, 1)
            .cell(href.decode.commTime * 1e3, 1)
            .cell(href.decode.commTime /
                      std::max(href.decode.memoryTime, 1e-9),
                  2);
        out.endRow();

        std::cout << tp << "-GPU system:\n";
        out.print(std::cout);
        std::cout << "\n";
    }

    report::writeRunRecord("RUN_fig9.json", rec);
    std::cout << "wrote RUN_fig9.json\n";
    return 0;
}
