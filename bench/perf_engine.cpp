/**
 * @file
 * google-benchmark microbenchmarks of the analytical engine itself:
 * how fast the model evaluates kernels, training batches, inference
 * runs and DSE searches. DSE sweeps (Fig. 6) run thousands of
 * evaluations, so engine throughput is a real usability property.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "core/optimus.h"

using namespace optimus;

namespace {

void
BM_GemmEstimate(benchmark::State &state)
{
    Device dev = presets::a100_80gb();
    GemmShape s{state.range(0), state.range(0), state.range(0),
                Precision::FP16};
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimateGemm(dev, s));
    }
}
BENCHMARK(BM_GemmEstimate)->Arg(512)->Arg(4096)->Arg(16384);

void
BM_TileSearch(benchmark::State &state)
{
    GemmShape s{8192, 8192, 8192, Precision::FP16};
    for (auto _ : state) {
        benchmark::DoNotOptimize(searchTile(s, 40 * MiB));
    }
}
BENCHMARK(BM_TileSearch);

void
BM_TrainingEvaluation(benchmark::State &state)
{
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateTraining(models::gpt175b(), sys, par, 64, {}));
    }
}
BENCHMARK(BM_TrainingEvaluation);

void
BM_InferenceEvaluation(benchmark::State &state)
{
    System sys = presets::dgxA100(1);
    InferenceOptions opts;
    opts.tensorParallel = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateInference(models::llama2_13b(), sys, opts));
    }
}
BENCHMARK(BM_InferenceEvaluation)->Arg(1)->Arg(8);

void
BM_MemoryFootprint(benchmark::State &state)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trainingMemoryPerDevice(
            models::gpt175b(), par, 64, 2048, Recompute::Selective));
    }
}
BENCHMARK(BM_MemoryFootprint);

void
BM_TrainingEvaluationTraced(benchmark::State &state)
{
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    TraceSession session;
    TrainingOptions opts;
    opts.trace = &session;
    for (auto _ : state) {
        session.reset();
        benchmark::DoNotOptimize(
            evaluateTraining(models::gpt175b(), sys, par, 64, opts));
    }
}
BENCHMARK(BM_TrainingEvaluationTraced);

void
BM_DseSearch(benchmark::State &state)
{
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm3_26();
    DseOptions opts;
    opts.gridSteps = 3;
    opts.refineRounds = 8;
    for (auto _ : state) {
        DseResult r = optimizeAllocation(
            tech,
            [](const Device &dev) {
                return estimateGemm(dev, {4096, 4096, 4096,
                                          Precision::FP16})
                    .time;
            },
            opts);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_DseSearch);

/**
 * Direct A/B timing of evaluateTraining with tracing disabled vs
 * enabled, written as BENCH_trace_overhead.json. The disabled path is
 * the acceptance gate: a nullptr trace pointer must stay within noise
 * of the pre-instrumentation engine.
 */
void
writeTraceOverheadReport()
{
    using clock = std::chrono::steady_clock;
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    TransformerConfig model = models::gpt175b();

    const int warmup = 3;
    const int iters = 30;

    auto time_one = [&](TraceSession *session) {
        TrainingOptions opts;
        opts.trace = session;
        for (int i = 0; i < warmup; ++i) {
            if (session != nullptr)
                session->reset();
            benchmark::DoNotOptimize(
                evaluateTraining(model, sys, par, 64, opts));
        }
        clock::time_point t0 = clock::now();
        for (int i = 0; i < iters; ++i) {
            if (session != nullptr)
                session->reset();
            benchmark::DoNotOptimize(
                evaluateTraining(model, sys, par, 64, opts));
        }
        return std::chrono::duration<double, std::nano>(clock::now() -
                                                        t0)
                   .count() /
               iters;
    };

    double disabled_ns = time_one(nullptr);
    TraceSession session;
    double enabled_ns = time_one(&session);

    JsonValue out = JsonValue::object();
    out.set("benchmark", JsonValue::string("trace_overhead"));
    out.set("workload", JsonValue::string(
                            "evaluateTraining gpt-175b dgx-a100 x8"));
    out.set("disabled_ns_per_eval", JsonValue::number(disabled_ns));
    out.set("enabled_ns_per_eval", JsonValue::number(enabled_ns));
    out.set("spans_per_eval",
            JsonValue::number(double(session.spans().size())));
    out.set("overhead_pct",
            JsonValue::number(100.0 * (enabled_ns - disabled_ns) /
                              disabled_ns));

    std::ofstream f("BENCH_trace_overhead.json");
    f << out.dump(2) << "\n";
    std::cout << "trace overhead: disabled " << disabled_ns / 1e6
              << " ms/eval, enabled " << enabled_ns / 1e6
              << " ms/eval -> BENCH_trace_overhead.json\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeTraceOverheadReport();
    return 0;
}
