/**
 * @file
 * google-benchmark microbenchmarks of the analytical engine itself:
 * how fast the model evaluates kernels, training batches, inference
 * runs and DSE searches. DSE sweeps (Fig. 6) run thousands of
 * evaluations, so engine throughput is a real usability property.
 */

#include <benchmark/benchmark.h>

#include "core/optimus.h"

using namespace optimus;

namespace {

void
BM_GemmEstimate(benchmark::State &state)
{
    Device dev = presets::a100_80gb();
    GemmShape s{state.range(0), state.range(0), state.range(0),
                Precision::FP16};
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimateGemm(dev, s));
    }
}
BENCHMARK(BM_GemmEstimate)->Arg(512)->Arg(4096)->Arg(16384);

void
BM_TileSearch(benchmark::State &state)
{
    GemmShape s{8192, 8192, 8192, Precision::FP16};
    for (auto _ : state) {
        benchmark::DoNotOptimize(searchTile(s, 40 * MiB));
    }
}
BENCHMARK(BM_TileSearch);

void
BM_TrainingEvaluation(benchmark::State &state)
{
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateTraining(models::gpt175b(), sys, par, 64, {}));
    }
}
BENCHMARK(BM_TrainingEvaluation);

void
BM_InferenceEvaluation(benchmark::State &state)
{
    System sys = presets::dgxA100(1);
    InferenceOptions opts;
    opts.tensorParallel = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateInference(models::llama2_13b(), sys, opts));
    }
}
BENCHMARK(BM_InferenceEvaluation)->Arg(1)->Arg(8);

void
BM_MemoryFootprint(benchmark::State &state)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trainingMemoryPerDevice(
            models::gpt175b(), par, 64, 2048, Recompute::Selective));
    }
}
BENCHMARK(BM_MemoryFootprint);

void
BM_DseSearch(benchmark::State &state)
{
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm3_26();
    DseOptions opts;
    opts.gridSteps = 3;
    opts.refineRounds = 8;
    for (auto _ : state) {
        DseResult r = optimizeAllocation(
            tech,
            [](const Device &dev) {
                return estimateGemm(dev, {4096, 4096, 4096,
                                          Precision::FP16})
                    .time;
            },
            opts);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_DseSearch);

} // namespace

BENCHMARK_MAIN();
