/**
 * @file
 * google-benchmark microbenchmarks of the analytical engine itself:
 * how fast the model evaluates kernels, training batches, inference
 * runs and DSE searches. DSE sweeps (Fig. 6) run thousands of
 * evaluations, so engine throughput is a real usability property.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>

#include "core/optimus.h"

using namespace optimus;

namespace {

void
BM_GemmEstimate(benchmark::State &state)
{
    Device dev = presets::a100_80gb();
    GemmShape s{state.range(0), state.range(0), state.range(0),
                Precision::FP16};
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimateGemm(dev, s));
    }
}
BENCHMARK(BM_GemmEstimate)->Arg(512)->Arg(4096)->Arg(16384);

void
BM_TileSearch(benchmark::State &state)
{
    GemmShape s{8192, 8192, 8192, Precision::FP16};
    for (auto _ : state) {
        benchmark::DoNotOptimize(searchTile(s, 40 * MiB));
    }
}
BENCHMARK(BM_TileSearch);

void
BM_TrainingEvaluation(benchmark::State &state)
{
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateTraining(models::gpt175b(), sys, par, 64, {}));
    }
}
BENCHMARK(BM_TrainingEvaluation);

void
BM_InferenceEvaluation(benchmark::State &state)
{
    System sys = presets::dgxA100(1);
    InferenceOptions opts;
    opts.tensorParallel = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateInference(models::llama2_13b(), sys, opts));
    }
}
BENCHMARK(BM_InferenceEvaluation)->Arg(1)->Arg(8);

void
BM_MemoryFootprint(benchmark::State &state)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trainingMemoryPerDevice(
            models::gpt175b(), par, 64, 2048, Recompute::Selective));
    }
}
BENCHMARK(BM_MemoryFootprint);

void
BM_TrainingEvaluationTraced(benchmark::State &state)
{
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    TraceSession session;
    TrainingOptions opts;
    opts.trace = &session;
    for (auto _ : state) {
        session.reset();
        benchmark::DoNotOptimize(
            evaluateTraining(models::gpt175b(), sys, par, 64, opts));
    }
}
BENCHMARK(BM_TrainingEvaluationTraced);

void
BM_DseSearch(benchmark::State &state)
{
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm3_26();
    DseOptions opts;
    opts.gridSteps = 3;
    opts.refineRounds = 8;
    for (auto _ : state) {
        DseResult r = optimizeAllocation(
            tech,
            [](const Device &dev) {
                return estimateGemm(dev, {4096, 4096, 4096,
                                          Precision::FP16})
                    .time;
            },
            opts);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_DseSearch);

/**
 * Direct A/B timing of evaluateTraining with tracing disabled vs
 * enabled, written as BENCH_trace_overhead.json. The disabled path is
 * the acceptance gate: a nullptr trace pointer must stay within noise
 * of the pre-instrumentation engine. Returns the report for the
 * combined RunRecord.
 */
JsonValue
writeTraceOverheadReport()
{
    using clock = std::chrono::steady_clock;
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    TransformerConfig model = models::gpt175b();

    const int warmup = 3;
    const int iters = 30;

    auto time_one = [&](TraceSession *session) {
        TrainingOptions opts;
        opts.trace = session;
        for (int i = 0; i < warmup; ++i) {
            if (session != nullptr)
                session->reset();
            benchmark::DoNotOptimize(
                evaluateTraining(model, sys, par, 64, opts));
        }
        clock::time_point t0 = clock::now();
        for (int i = 0; i < iters; ++i) {
            if (session != nullptr)
                session->reset();
            benchmark::DoNotOptimize(
                evaluateTraining(model, sys, par, 64, opts));
        }
        return std::chrono::duration<double, std::nano>(clock::now() -
                                                        t0)
                   .count() /
               iters;
    };

    double disabled_ns = time_one(nullptr);
    TraceSession session;
    double enabled_ns = time_one(&session);

    JsonValue out = JsonValue::object();
    out.set("benchmark", JsonValue::string("trace_overhead"));
    out.set("workload", JsonValue::string(
                            "evaluateTraining gpt-175b dgx-a100 x8"));
    out.set("disabled_ns_per_eval", JsonValue::number(disabled_ns));
    out.set("enabled_ns_per_eval", JsonValue::number(enabled_ns));
    out.set("spans_per_eval",
            JsonValue::number(double(session.spans().size())));
    out.set("overhead_pct",
            JsonValue::number(100.0 * (enabled_ns - disabled_ns) /
                              disabled_ns));

    std::ofstream f("BENCH_trace_overhead.json");
    f << out.dump(2) << "\n";
    std::cout << "trace overhead: disabled " << disabled_ns / 1e6
              << " ms/eval, enabled " << enabled_ns / 1e6
              << " ms/eval -> BENCH_trace_overhead.json\n";
    return out;
}

/**
 * Serial-vs-parallel A/B of the two sweep-shaped engines (planner
 * enumeration and DSE search) plus a tile-cache on/off A/B, written
 * as BENCH_sweep_speedup.json. The acceptance gates: results must be
 * bit-identical across thread counts (divergences == 0), and on a
 * multi-core host the 8-thread sweep must not be slower than serial.
 * Returns the report for the combined RunRecord.
 */
JsonValue
writeSweepSpeedupReport()
{
    using clock = std::chrono::steady_clock;
    const int kThreads = 8;

    TransformerConfig model = models::gpt175b();
    System sys = presets::dgxA100(16);
    TrainingPlannerOptions popts;
    popts.keep = 64;
    popts.microbatchSizes = {1, 2};

    auto time_best_of = [&](int reps, const auto &fn) {
        double best = 1e300;
        for (int i = 0; i < reps; ++i) {
            clock::time_point t0 = clock::now();
            fn();
            double ms = std::chrono::duration<double, std::milli>(
                            clock::now() - t0)
                            .count();
            best = std::min(best, ms);
        }
        return best;
    };

    // Cold sweep with a cleared cache: measures the sweep's intrinsic
    // key reuse (hit rate) rather than leftovers from the
    // micro-benchmarks above.
    tileCacheClear();
    popts.threads = 1;
    std::vector<TrainingPlan> serial_plans =
        planTraining(model, sys, 128, popts);
    TileCacheStats cache = tileCacheStats();

    // Warm-cache timings: serial, parallel, and cache-disabled.
    double planner_serial_ms = time_best_of(3, [&] {
        popts.threads = 1;
        benchmark::DoNotOptimize(planTraining(model, sys, 128, popts));
    });
    std::vector<TrainingPlan> parallel_plans;
    double planner_parallel_ms = time_best_of(3, [&] {
        popts.threads = kThreads;
        parallel_plans = planTraining(model, sys, 128, popts);
    });
    tileCacheSetEnabled(false);
    double planner_uncached_ms = time_best_of(3, [&] {
        popts.threads = 1;
        benchmark::DoNotOptimize(planTraining(model, sys, 128, popts));
    });
    tileCacheSetEnabled(true);

    long long planner_divergences = 0;
    if (serial_plans.size() != parallel_plans.size()) {
        planner_divergences =
            static_cast<long long>(serial_plans.size()) -
            static_cast<long long>(parallel_plans.size());
        if (planner_divergences < 0)
            planner_divergences = -planner_divergences;
    } else {
        for (size_t i = 0; i < serial_plans.size(); ++i) {
            const TrainingPlan &a = serial_plans[i];
            const TrainingPlan &b = parallel_plans[i];
            bool same =
                a.parallel.dataParallel == b.parallel.dataParallel &&
                a.parallel.tensorParallel ==
                    b.parallel.tensorParallel &&
                a.parallel.pipelineParallel ==
                    b.parallel.pipelineParallel &&
                a.parallel.microbatchSize ==
                    b.parallel.microbatchSize &&
                a.options.recompute == b.options.recompute &&
                a.options.memory.zeroStage ==
                    b.options.memory.zeroStage &&
                a.report.timePerBatch == b.report.timePerBatch &&
                a.report.mfu == b.report.mfu &&
                a.report.memory.total() == b.report.memory.total();
            if (!same)
                ++planner_divergences;
        }
    }

    // DSE A/B: a training-shaped objective heavy enough that the
    // fan-out has real work per probe.
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm3_26();
    TransformerConfig dse_model = models::gpt7b();
    ParallelConfig dse_par;
    dse_par.dataParallel = 4;
    dse_par.tensorParallel = 4;
    dse_par.pipelineParallel = 2;
    dse_par.sequenceParallel = true;
    TrainingOptions dse_topts;
    dse_topts.recompute = Recompute::Selective;
    DeviceObjective dse_objective = [&](const Device &dev) {
        System s = makeSystem(dev, 8, 4, presets::nvlink4(),
                              nettech::gdrX8());
        return evaluateTraining(dse_model, s, dse_par, 128,
                                dse_topts)
            .timePerBatch;
    };
    DseOptions dopts;
    dopts.gridSteps = 4;
    dopts.refineRounds = 12;

    dopts.threads = 1;
    DseResult dse_serial =
        optimizeAllocation(tech, dse_objective, dopts);
    double dse_serial_ms = time_best_of(2, [&] {
        dopts.threads = 1;
        benchmark::DoNotOptimize(
            optimizeAllocation(tech, dse_objective, dopts));
    });
    DseResult dse_parallel;
    double dse_parallel_ms = time_best_of(2, [&] {
        dopts.threads = kThreads;
        dse_parallel = optimizeAllocation(tech, dse_objective, dopts);
    });
    long long dse_divergences = 0;
    if (dse_serial.allocation.computeAreaFraction !=
            dse_parallel.allocation.computeAreaFraction ||
        dse_serial.allocation.computePowerFraction !=
            dse_parallel.allocation.computePowerFraction ||
        dse_serial.objective != dse_parallel.objective ||
        dse_serial.evaluations != dse_parallel.evaluations)
        dse_divergences = 1;

    JsonValue out = JsonValue::object();
    out.set("benchmark", JsonValue::string("sweep_speedup"));
    out.set("hardware_concurrency",
            JsonValue::number(double(hardwareThreads())));
    out.set("threads_parallel", JsonValue::number(double(kThreads)));
    out.set("planner_workload", JsonValue::string(
                                    "planTraining gpt-175b dgx-a100 "
                                    "x16, batch 128, micro {1,2}"));
    out.set("planner_serial_ms", JsonValue::number(planner_serial_ms));
    out.set("planner_parallel_ms",
            JsonValue::number(planner_parallel_ms));
    out.set("planner_speedup",
            JsonValue::number(planner_serial_ms / planner_parallel_ms));
    out.set("planner_uncached_ms",
            JsonValue::number(planner_uncached_ms));
    out.set("tile_cache_speedup",
            JsonValue::number(planner_uncached_ms / planner_serial_ms));
    out.set("planner_plans",
            JsonValue::number(double(serial_plans.size())));
    out.set("planner_divergences",
            JsonValue::number(double(planner_divergences)));
    out.set("dse_workload", JsonValue::string(
                                "optimizeAllocation N5+HBM3, gpt-7b "
                                "training objective, grid 4, rounds "
                                "12"));
    out.set("dse_serial_ms", JsonValue::number(dse_serial_ms));
    out.set("dse_parallel_ms", JsonValue::number(dse_parallel_ms));
    out.set("dse_speedup",
            JsonValue::number(dse_serial_ms / dse_parallel_ms));
    out.set("dse_divergences",
            JsonValue::number(double(dse_divergences)));
    out.set("tile_cache_hits", JsonValue::number(double(cache.hits)));
    out.set("tile_cache_misses",
            JsonValue::number(double(cache.misses)));
    out.set("tile_cache_hit_rate_pct",
            JsonValue::number(100.0 * cache.hitRate()));

    std::ofstream f("BENCH_sweep_speedup.json");
    f << out.dump(2) << "\n";
    std::cout << "sweep speedup: planner " << planner_serial_ms
              << " ms serial / " << planner_parallel_ms << " ms at "
              << kThreads << " threads ("
              << planner_divergences + dse_divergences
              << " divergences), tile cache "
              << 100.0 * cache.hitRate()
              << "% hits -> BENCH_sweep_speedup.json\n";
    return out;
}

/**
 * Fold the two JSON reports into one RunRecord ledger entry
 * (RUN_perf_engine.json). Wall-clock timings vary run to run, so
 * this record is informational -- it is NOT gated against a baseline
 * by the regression sentinel, unlike the prediction benches.
 */
void
writePerfEngineRecord(const JsonValue &overhead, const JsonValue &sweep)
{
    JsonValue bench_cfg = JsonValue::object();
    bench_cfg.set("bench", JsonValue::string("perf-engine"));
    report::RunRecord rec =
        report::beginBenchRecord("perf-engine", std::move(bench_cfg));

    auto fold = [&rec](const std::string &prefix, const JsonValue &v) {
        for (const auto &member : v.asObject()) {
            if (member.second.isNumber())
                rec.setMetric(prefix + "/" + member.first,
                              member.second.asNumber());
            else if (member.second.isString())
                rec.setAttr(prefix + "/" + member.first,
                            member.second.asString());
        }
    };
    fold("trace-overhead", overhead);
    fold("sweep-speedup", sweep);

    report::writeRunRecord("RUN_perf_engine.json", rec);
    std::cout << "wrote RUN_perf_engine.json\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    JsonValue overhead = writeTraceOverheadReport();
    JsonValue sweep = writeSweepSpeedupReport();
    writePerfEngineRecord(overhead, sweep);
    return 0;
}
