/**
 * @file
 * Reproduces paper Table 1: training time per batch for GPT models on
 * A100 clusters under different parallelism mixes and recomputation
 * strategies, compared against the times published in Megatron-LM
 * (Narayanan et al.) and Korthikanti et al., which the paper validates
 * against. Prints t_ref, t_pred and the relative error per row.
 */

#include <iostream>
#include <vector>

#include "core/optimus.h"

using namespace optimus;

namespace {

struct Row
{
    TransformerConfig model;
    int gpus;
    long long batch;
    long long dp, tp, pp;
    bool sp;
    Recompute recompute;
    double t_ref;  ///< seconds, from the paper's Table 1
};

std::vector<Row>
tableRows()
{
    return {
        // Only TP and PP, full recomputation.
        {models::gpt22b(), 8, 4, 1, 8, 1, false, Recompute::Full, 1.4},
        {models::gpt175b(), 64, 64, 1, 8, 8, false, Recompute::Full,
         18.1},
        {models::gpt530b(), 280, 280, 1, 8, 35, false, Recompute::Full,
         49.1},
        {models::gpt1008b(), 512, 512, 1, 8, 64, false, Recompute::Full,
         94.4},
        // TP, PP and SP, selective recomputation.
        {models::gpt22b(), 8, 4, 1, 8, 1, true, Recompute::Selective,
         1.1},
        {models::gpt175b(), 64, 64, 1, 8, 8, true, Recompute::Selective,
         13.8},
        {models::gpt530b(), 280, 280, 1, 8, 35, true,
         Recompute::Selective, 37.8},
        {models::gpt1008b(), 512, 512, 1, 8, 64, true,
         Recompute::Selective, 71.5},
        // DP, TP and PP, full recomputation.
        {models::gpt310b(), 1920, 2160, 15, 8, 16, false,
         Recompute::Full, 37.6},
        {models::gpt530b(), 2520, 2520, 9, 8, 35, false,
         Recompute::Full, 54.2},
        {models::gpt1008b(), 3072, 3072, 6, 8, 64, false,
         Recompute::Full, 102.4},
    };
}

} // namespace

int
main()
{
    std::cout << "Table 1: training time per batch, A100 clusters "
                 "(reference: Megatron-LM / Korthikanti et al.)\n\n";

    Table out({"Model", "#GPUs", "Batch", "DP-TP-PP-SP", "Recompute",
               "t_ref (s)", "t_pred (s)", "dE (%)"});

    // Ledger entry for the regression sentinel: every predicted cell
    // becomes a validation row diffable against baselines/table1.json.
    JsonValue bench_cfg = JsonValue::object();
    bench_cfg.set("bench", JsonValue::string("table1"));
    bench_cfg.set("rows",
                  JsonValue::number(double(tableRows().size())));
    report::RunRecord rec =
        report::beginBenchRecord("table1", std::move(bench_cfg));

    double err_sum = 0.0;
    double err_max = 0.0;
    for (const Row &row : tableRows()) {
        System sys = presets::dgxA100(row.gpus / 8);

        ParallelConfig par;
        par.dataParallel = row.dp;
        par.tensorParallel = row.tp;
        par.pipelineParallel = row.pp;
        par.sequenceParallel = row.sp;
        par.microbatchSize = 1;
        par.schedule = PipelineSchedule::OneFOneB;

        TrainingOptions opts;
        opts.recompute = row.recompute;
        opts.seqLength = 2048;

        TrainingReport rep =
            evaluateTraining(row.model, sys, par, row.batch, opts);

        double err = relativeErrorPct(rep.timePerBatch, row.t_ref);
        err_sum += err;
        err_max = std::max(err_max, err);

        report::ValidationRow vrow;
        vrow.name = row.model.name + "/" +
                    std::to_string(row.gpus) + "gpu/" +
                    recomputeName(row.recompute) +
                    (row.sp ? "-sp" : "");
        vrow.reference = row.t_ref;
        vrow.predicted = rep.timePerBatch;
        rec.validation.push_back(vrow);
        rec.setMetric("memory/" + vrow.name, rep.memory.total());

        out.beginRow()
            .cell(row.model.name)
            .cell(static_cast<long long>(row.gpus))
            .cell(row.batch)
            .cell(par.label())
            .cell(recomputeName(row.recompute))
            .cell(row.t_ref, 1)
            .cell(rep.timePerBatch, 1)
            .cell(formatErrorPct(err));
        out.endRow();
    }

    out.print(std::cout);
    std::cout << "\nmean |dE| = " << err_sum / tableRows().size()
              << " %, max |dE| = " << err_max << " %\n";

    rec.setMetric("error/mean-abs-pct",
                  err_sum / double(tableRows().size()));
    rec.setMetric("error/max-abs-pct", err_max);
    report::writeRunRecord("RUN_table1.json", rec);
    std::cout << "wrote RUN_table1.json\n";
    return 0;
}
