/**
 * @file
 * Reproduces paper Table 2: inference latency of Llama-2 models on
 * A100 and H100 systems with TP degree 1-8, batch 1, 200 prompt +
 * 200 generated tokens, validated against the NVIDIA-published
 * latencies quoted in the paper.
 */

#include <iostream>
#include <vector>

#include "core/optimus.h"

using namespace optimus;

namespace {

struct Row
{
    TransformerConfig model;
    int tp;
    double nvidia_a100_ms;
    double nvidia_h100_ms;
};

std::vector<Row>
tableRows()
{
    return {
        {models::llama2_70b(), 8, 4735, 3202},
        {models::llama2_70b(), 4, 6403, 4116},
        {models::llama2_70b(), 2, 10500, 6267},
        {models::llama2_13b(), 8, 1693, 1201},
        {models::llama2_13b(), 4, 1894, 1431},
        {models::llama2_13b(), 2, 2499, 1717},
        {models::llama2_13b(), 1, 3884, 2396},
        {models::llama2_7b(), 8, 1187, 828},
        {models::llama2_7b(), 4, 1280, 924},
        {models::llama2_7b(), 2, 1544, 1143},
        {models::llama2_7b(), 1, 2190, 1440},
    };
}

double
predictMs(const TransformerConfig &model, const System &sys, int tp)
{
    InferenceOptions opts;
    opts.tensorParallel = tp;
    opts.batch = 1;
    opts.promptLength = 200;
    opts.generateLength = 200;
    InferenceReport rep = evaluateInference(model, sys, opts);
    return rep.totalLatency * 1e3;
}

} // namespace

int
main()
{
    std::cout << "Table 2: Llama-2 inference latency (ms), B=1, "
                 "200+200 tokens (reference: NVIDIA published data)\n\n";

    Table out({"Model", "#GPUs", "TP", "t_nv A100", "t_pred A100",
               "dE (%)", "t_nv H100", "t_pred H100", "dE (%)"});

    System a100 = presets::dgxA100(1);
    System h100 = presets::dgxH100(1);

    // Ledger entry for the regression sentinel: each (model, TP,
    // system) latency prediction becomes a validation row diffable
    // against baselines/table2.json.
    JsonValue bench_cfg = JsonValue::object();
    bench_cfg.set("bench", JsonValue::string("table2"));
    bench_cfg.set("rows",
                  JsonValue::number(double(tableRows().size())));
    report::RunRecord rec =
        report::beginBenchRecord("table2", std::move(bench_cfg));

    double err_sum = 0.0;
    double err_max = 0.0;
    int count = 0;
    for (const Row &row : tableRows()) {
        double pa = predictMs(row.model, a100, row.tp);
        double ph = predictMs(row.model, h100, row.tp);
        double ea = relativeErrorPct(pa, row.nvidia_a100_ms);
        double eh = relativeErrorPct(ph, row.nvidia_h100_ms);
        err_sum += ea + eh;
        err_max = std::max({err_max, ea, eh});
        count += 2;

        std::string base =
            row.model.name + "/tp" + std::to_string(row.tp);
        report::ValidationRow va{base + "/a100-ms", row.nvidia_a100_ms,
                                 pa};
        report::ValidationRow vh{base + "/h100-ms", row.nvidia_h100_ms,
                                 ph};
        rec.validation.push_back(va);
        rec.validation.push_back(vh);

        out.beginRow()
            .cell(row.model.name)
            .cell(static_cast<long long>(row.tp))
            .cell(static_cast<long long>(row.tp))
            .cell(row.nvidia_a100_ms, 0)
            .cell(pa, 0)
            .cell(formatErrorPct(ea))
            .cell(row.nvidia_h100_ms, 0)
            .cell(ph, 0)
            .cell(formatErrorPct(eh));
        out.endRow();
    }

    out.print(std::cout);
    std::cout << "\nmean |dE| = " << err_sum / count
              << " %, max |dE| = " << err_max << " %\n";

    rec.setMetric("error/mean-abs-pct", err_sum / double(count));
    rec.setMetric("error/max-abs-pct", err_max);
    report::writeRunRecord("RUN_table2.json", rec);
    std::cout << "wrote RUN_table2.json\n";
    return 0;
}
