/**
 * @file
 * Reproduces paper Table 3: the training configurations of the case
 * studies (an input table — printed for completeness and checked for
 * internal consistency: total #GPUs = DP x TP x PP, heads/layers
 * divisibility, and the memory fit the case studies assume).
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Table 3: case-study training configurations "
                 "(total #GPUs = DP x TP x PP)\n\n";

    struct Row
    {
        TransformerConfig model;
        long long batch, batch_large;
        long long dp, tp, pp;
    };
    const Row rows[] = {
        {models::gpt175b(), 1024, 4096, 128, 8, 8},
        {models::gpt7b(), 512, 0, 64, 4, 4},
    };

    Table out({"Model", "Batch size", "Seq length", "Vocab size",
               "DP-TP-SP-PP", "#GPUs", "Valid"});
    for (const Row &r : rows) {
        ParallelConfig par;
        par.dataParallel = r.dp;
        par.tensorParallel = r.tp;
        par.pipelineParallel = r.pp;
        par.sequenceParallel = true;

        bool valid = true;
        try {
            System sys = presets::dgxA100(
                static_cast<int>(par.totalDevices() / 8));
            par.validate(r.model, sys, r.batch);
        } catch (const ConfigError &) {
            valid = false;
        }

        std::string batches = std::to_string(r.batch);
        if (r.batch_large > 0)
            batches += "/" + std::to_string(r.batch_large);
        out.beginRow()
            .cell(r.model.name)
            .cell(batches)
            .cell(static_cast<long long>(2048))
            .cell(r.model.vocabSize)
            .cell(std::to_string(r.dp) + "-" + std::to_string(r.tp) +
                  "-" + std::to_string(r.tp) + "-" +
                  std::to_string(r.pp))
            .cell(par.totalDevices())
            .cell(valid ? "yes" : "NO");
        out.endRow();
    }
    out.print(std::cout);

    std::cout << "\nThese configurations drive "
                 "bench/fig5_gpu_scaling (GPT-175B) and "
                 "bench/fig6_tech_scaling (GPT-7B).\n";
    return 0;
}
