/**
 * @file
 * Reproduces paper Table 4: per-GEMM execution time and performance
 * bound type for one transformer layer in the summarization (prefill)
 * phase of Llama2-13B inference, on single A100 and H100 devices,
 * half precision, batch 1, 200-token prompt.
 *
 * The paper's headline observation: on A100 the projection/MLP GEMMs
 * are compute-bound while the per-head attention GEMMs are DRAM-bound;
 * on H100 every GEMM turns DRAM-bound ("as the compute scales,
 * performance for inference becomes completely determined by the
 * memory technology").
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    std::cout << "Table 4: GEMM bound types, Llama2-13B prefill "
                 "(B=1, 200 tokens, fp16)\n\n";

    TransformerConfig model = models::llama2_13b();
    InferenceOptions opts;
    opts.tensorParallel = 1;
    opts.batch = 1;
    opts.promptLength = 200;
    opts.generateLength = 200;

    Device a100 = presets::a100_80gb();
    Device h100 = presets::h100_sxm();

    std::vector<GemmBoundRow> ra = prefillGemmTable(a100, model, opts);
    std::vector<GemmBoundRow> rh = prefillGemmTable(h100, model, opts);

    Table out({"GEMM-function", "A100 t (us)", "A100 bound",
               "H100 t (us)", "H100 bound"});
    int h100_dram_bound = 0;
    for (size_t i = 0; i < ra.size(); ++i) {
        out.beginRow()
            .cell(ra[i].name)
            .cell(ra[i].time * 1e6, 1)
            .cell(ra[i].boundType)
            .cell(rh[i].time * 1e6, 1)
            .cell(rh[i].boundType);
        out.endRow();
        if (rh[i].boundType != "compute")
            ++h100_dram_bound;
    }
    out.print(std::cout);

    std::cout << "\nH100: " << h100_dram_bound << "/" << rh.size()
              << " GEMMs memory-bound (paper: all DRAM-bound on "
                 "H100)\n";

    std::cout << "\nDecode phase (context=300), same layer:\n\n";
    Table dec({"GEMM-function", "A100 t (us)", "A100 bound",
               "H100 t (us)", "H100 bound"});
    std::vector<GemmBoundRow> da = decodeGemmTable(a100, model, opts,
                                                   300);
    std::vector<GemmBoundRow> dh = decodeGemmTable(h100, model, opts,
                                                   300);
    for (size_t i = 0; i < da.size(); ++i) {
        dec.beginRow()
            .cell(da[i].name)
            .cell(da[i].time * 1e6, 1)
            .cell(da[i].boundType)
            .cell(dh[i].time * 1e6, 1)
            .cell(dh[i].boundType);
        dec.endRow();
    }
    dec.print(std::cout);
    std::cout << "\n(The generation phase is completely memory "
                 "bound - paper Sec. 6.1.)\n";
    return 0;
}
