/**
 * @file
 * Custom-accelerator walkthrough: the paper's architecture
 * abstraction layer means a hypothetical device is just a handful of
 * numbers. We sketch a 2027-class inference accelerator — modest
 * compute, huge SRAM, HBM4e — and ask the model whether it beats a
 * B200 at serving Llama2-70B, and how it trains.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

namespace {

Device
inferenceAsic()
{
    Device d;
    d.name = "ASIC-2027";
    // Half a B200's matrix throughput...
    d.matrixThroughput = {
        {Precision::FP16, 1100 * TFLOPS},
        {Precision::FP8, 2200 * TFLOPS},
        {Precision::FP4, 4400 * TFLOPS},
    };
    d.vectorThroughput = {
        {Precision::FP32, 60 * TFLOPS},
        {Precision::FP16, 120 * TFLOPS},
    };
    // ...but a giant SRAM and next-gen HBM: built to stream weights.
    d.mem = {
        {"DRAM", 288 * GiB, 10.0 * TBps, 0.88},
        {"SRAM", 1 * GiB, 40.0 * TBps, 0.85},
        {"SMEM", 64 * MiB, 80.0 * TBps, 0.80},
    };
    d.matrixMaxEfficiency = 0.85;
    d.gemmKHalf = 450.0;
    d.gemvDramUtilization = 0.85;  // wide, deeply banked interface
    d.kernelLaunchOverhead = 1.0e-6;
    d.validate();
    return d;
}

} // namespace

int
main()
{
    Device asic = inferenceAsic();
    System asic_sys = makeSystem(asic, 8, 1, presets::nvlink5(),
                                 presets::ndrInfiniBand());
    System b200 = presets::dgxB200(1);

    std::cout << "Custom accelerator study: " << asic.name
              << " vs B200, Llama2-70B\n\n";

    // ---- Serving comparison -------------------------------------------
    ServingOptions sopts;
    sopts.tensorParallel = 2;
    Table serve({"Device", "Batch", "tok/s", "ms/token", "fits"});
    for (const System &sys : {asic_sys, b200}) {
        for (long long b : {1LL, 16LL, 64LL}) {
            ServingPoint pt = evaluateServingPoint(
                models::llama2_70b(), sys, sopts, b);
            serve.beginRow()
                .cell(sys.device.name)
                .cell(b)
                .cell(pt.tokensPerSecond, 0)
                .cell(pt.interTokenLatency * 1e3, 2)
                .cell(pt.fits ? "yes" : "NO");
            serve.endRow();
        }
    }
    serve.print(std::cout);
    std::cout << "\nThe ASIC's 10 TB/s DRAM wins the memory-bound "
                 "low-batch regime; B200's compute catches up once "
                 "batching makes prefill/FFN compute-bound.\n\n";

    // ---- Training check -------------------------------------------------
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 8;
    par.pipelineParallel = 4;
    par.sequenceParallel = true;

    Table train({"Device", "t/batch (s)", "MFU (%)"});
    for (const System &sys :
         {makeSystem(asic, 8, 8, presets::nvlink5(),
                     presets::ndrInfiniBand()),
          presets::dgxB200(8)}) {
        TrainingOptions topts;
        topts.recompute = Recompute::Selective;
        TrainingReport rep = evaluateTraining(models::gpt175b(), sys,
                                              par, 128, topts);
        train.beginRow()
            .cell(sys.device.name)
            .cell(rep.timePerBatch, 2)
            .cell(rep.mfu * 100.0, 1);
        train.endRow();
    }
    train.print(std::cout);
    std::cout << "\nTraining is compute-bound: the B200 keeps its "
                 "2x matrix-throughput edge there.\n";
    return 0;
}
