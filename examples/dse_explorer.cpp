/**
 * @file
 * Design-space exploration walkthrough: size a future accelerator for
 * LLM training at the N3 node under an area/power budget, then study
 * how the optimal compute/memory split shifts between a training and
 * an inference objective (paper Sec. 3.6 / 5.3).
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

namespace {

double
trainingObjective(const Device &dev)
{
    System sys = makeSystem(dev, 8, 128, presets::nvlink4(),
                            nettech::gdrX8());
    ParallelConfig par;
    par.dataParallel = 64;
    par.tensorParallel = 4;
    par.pipelineParallel = 4;
    par.sequenceParallel = true;
    par.schedule = PipelineSchedule::Interleaved1F1B;
    par.interleavedStages = 8;
    TrainingOptions opts;
    opts.recompute = Recompute::Selective;
    return evaluateTraining(models::gpt7b(), sys, par, 512, opts)
        .timePerBatch;
}

double
inferenceObjective(const Device &dev)
{
    System sys = makeSystem(dev, 8, 1, presets::nvlink4(),
                            nettech::gdrX8());
    InferenceOptions opts;
    opts.tensorParallel = 1;
    return evaluateInference(models::llama2_13b(), sys, opts)
        .totalLatency;
}

void
printResult(const char *label, const DseResult &r)
{
    const Device &d = r.device;
    std::cout << label << ":\n"
              << "  compute area fraction : "
              << r.allocation.computeAreaFraction << "\n"
              << "  compute power fraction: "
              << r.allocation.computePowerFraction << "\n"
              << "  fp16 matrix throughput: "
              << formatFlops(d.matrixFlops(Precision::FP16)) << "\n"
              << "  L2 capacity           : "
              << formatBytes(d.level("L2").capacity) << "\n"
              << "  objective             : " << formatTime(r.objective)
              << "  (" << r.evaluations << " evaluations)\n\n";
}

} // namespace

int
main()
{
    std::cout << "DSE explorer: sizing an N3 accelerator "
                 "(826 mm^2, 700 W, HBM3)\n\n";

    TechConfig tech;
    tech.node = logicNode("N3");
    tech.dram = dram::hbm3();
    tech.powerBudget = 700.0;

    printResult("Optimized for GPT-7B training (1024 GPUs)",
           optimizeAllocation(tech, trainingObjective));
    printResult("Optimized for Llama2-13B inference (1 GPU)",
           optimizeAllocation(tech, inferenceObjective));

    std::cout << "Inference is DRAM-bound, so its optimum spends "
                 "little on the compute array; training pushes the "
                 "compute fraction up until the power budget binds "
                 "(paper Secs. 5.3 / 6.2).\n";
    return 0;
}
