/**
 * @file
 * Inference deployment explorer: for a served model, sweep GPU type,
 * tensor-parallel degree and batch size, reporting latency,
 * throughput, per-token cost drivers and whether the KV cache fits —
 * the questions Sec. 6 of the paper asks of inference deployments.
 *
 * Scenario: Llama2-70B chat serving, 512-token prompts, 256 generated
 * tokens.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    const TransformerConfig model = models::llama2_70b();

    std::cout << "Inference explorer: " << model.name
              << ", 512-token prompt, 256 generated tokens\n\n";

    for (const System &sys :
         {presets::dgxA100(1), presets::dgxH100(1)}) {
        Table out({"TP", "Batch", "Latency (s)", "Tok/s", "ms/token",
                   "Decode comm (%)", "KV+W per GPU (GiB)", "Fits"});
        for (int tp : {2, 4, 8}) {
            for (long long batch : {1LL, 8LL, 32LL}) {
                InferenceOptions opts;
                opts.tensorParallel = tp;
                opts.batch = batch;
                opts.promptLength = 512;
                opts.generateLength = 256;

                InferenceReport rep =
                    evaluateInference(model, sys, opts);
                double tokens =
                    double(batch) * opts.generateLength;
                double per_gpu =
                    (rep.weightBytes + rep.kvCacheBytes) / tp;
                out.beginRow()
                    .cell(static_cast<long long>(tp))
                    .cell(batch)
                    .cell(rep.totalLatency, 2)
                    .cell(tokens / rep.totalLatency, 0)
                    .cell(rep.decode.time / tokens * 1e3 *
                              double(batch),
                          2)
                    .cell(100.0 * rep.decode.commTime /
                              rep.decode.time,
                          1)
                    .cell(per_gpu / GiB, 1)
                    .cell(rep.fitsDeviceMemory ? "yes" : "NO");
                out.endRow();
            }
        }
        std::cout << sys.device.name << ":\n";
        out.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Reading the table: batching multiplies throughput "
                 "at modest latency cost (decode stays memory-bound); "
                 "TP cuts per-GPU memory time but the per-token "
                 "all-reduces erode the gain beyond ~4 GPUs.\n";
    return 0;
}
