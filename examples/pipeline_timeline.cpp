/**
 * @file
 * Pipeline timeline visualizer: simulate the exact 1F1B and
 * interleaved schedules for GPT-175B on 64 A100s using the model's
 * own per-layer kernel times, compare against the closed-form bubble
 * fractions, and write a chrome://tracing file you can open in any
 * Chromium browser (or https://ui.perfetto.dev).
 */

#include <fstream>
#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    // Per-stage forward/backward times from the performance model.
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;
    System sys = presets::dgxA100(8);
    TrainingOptions opts;
    opts.recompute = Recompute::Selective;
    TrainingReport rep =
        evaluateTraining(models::gpt175b(), sys, par, 32, opts);

    const long long layers_per_stage = 96 / 8;
    ScheduleSimParams prm;
    prm.stages = 8;
    prm.microbatches = 32;
    prm.forwardTime = rep.layerForward.time * layers_per_stage;
    prm.backwardTime = rep.layerBackward.time * layers_per_stage;
    prm.p2pTime = 30e-6;

    std::cout << "Pipeline timeline, GPT-175B on 64 A100s (TP8 x "
                 "PP8), 32 microbatches\n"
              << "per-stage forward "
              << formatTime(prm.forwardTime) << ", backward "
              << formatTime(prm.backwardTime) << "\n\n";

    Table out({"Schedule", "makespan (s)", "bubble sim (%)",
               "bubble closed-form (%)"});
    struct Case
    {
        const char *name;
        PipelineSchedule sched;
        int v;
    };
    for (const Case &c :
         {Case{"gpipe", PipelineSchedule::GPipe, 1},
          Case{"1f1b", PipelineSchedule::OneFOneB, 1},
          Case{"interleaved v=4", PipelineSchedule::Interleaved1F1B,
               4}}) {
        prm.schedule = c.sched;
        prm.virtualStages = c.v;
        ScheduleSimResult r = simulatePipeline(prm);
        double closed =
            pipelineCost(c.sched, 8, 32, c.v).bubbleFraction;
        out.beginRow()
            .cell(c.name)
            .cell(r.makespan, 3)
            .cell(100.0 * r.bubbleFraction, 2)
            .cell(100.0 * closed, 2);
        out.endRow();

        if (c.sched == PipelineSchedule::Interleaved1F1B) {
            std::ofstream trace("pipeline_trace.json");
            trace << toChromeTrace(r);
            std::cout << "wrote pipeline_trace.json ("
                      << r.events.size() << " events) - open in "
                      << "chrome://tracing or perfetto\n\n";
        }
    }
    out.print(std::cout);

    std::cout << "\nThe simulator and the closed forms agree; the "
                 "trace shows the warmup ramp, the 1F1B steady "
                 "state, and the shrunken interleaved bubbles.\n";
    return 0;
}
