/**
 * @file
 * Quickstart: predict training time for GPT-3 175B on 64 A100s and
 * inference latency for Llama2-13B on one A100, in ~40 lines.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    // ---- Training: GPT-3 175B on 8 DGX-A100 nodes --------------------
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;

    Scenario training(models::gpt175b(), presets::dgxA100(8), par,
                      /*global_batch=*/64);

    TrainingOptions topts;
    topts.recompute = Recompute::Selective;
    TrainingReport t = training.train(topts);

    std::cout << "GPT-175B on 64xA100, batch 64:\n"
              << "  time/batch: " << formatTime(t.timePerBatch) << "\n"
              << "  compute:    " << formatTime(t.time.compute()) << "\n"
              << "  comm:       " << formatTime(t.time.communication())
              << "\n"
              << "  other:      " << formatTime(t.time.other()) << "\n"
              << "  MFU:        " << t.mfu * 100.0 << " %\n"
              << "  memory/GPU: " << formatBytes(t.memory.total())
              << "\n\n";

    // ---- Inference: Llama2-13B on one A100 ---------------------------
    InferenceOptions iopts;
    iopts.tensorParallel = 1;
    iopts.promptLength = 200;
    iopts.generateLength = 200;

    Scenario inference(models::llama2_13b(), presets::dgxA100(1),
                       iopts);
    InferenceReport i = inference.infer();

    std::cout << "Llama2-13B on 1xA100, 200+200 tokens:\n"
              << "  prefill:  " << formatTime(i.prefill.time) << "\n"
              << "  decode:   " << formatTime(i.decode.time) << "\n"
              << "  total:    " << formatTime(i.totalLatency) << "\n"
              << "  KV cache: " << formatBytes(i.kvCacheBytes) << "\n";
    return 0;
}
