/**
 * @file
 * Roofline explorer: plot data (printed as a table and as CSV) for
 * every kernel of a Llama2-13B layer in prefill and decode, on A100
 * and H100 — the visual form of the paper's Table 4 / Fig. 8
 * analysis. Pipe the CSV blocks into your plotting tool of choice.
 */

#include <iostream>

#include "core/optimus.h"
#include "roofline/report.h"

using namespace optimus;

int
main()
{
    TransformerConfig model = models::llama2_13b();

    for (const Device &dev :
         {presets::a100_80gb(), presets::h100_sxm()}) {
        RooflineCeilings c = rooflineCeilings(dev, Precision::FP16);
        std::cout << dev.name << ": peak "
                  << formatFlops(c.peakFlops) << ", DRAM "
                  << formatBandwidth(c.dramBandwidth)
                  << ", ridge at " << c.ridgeIntensity
                  << " FLOP/byte\n\n";

        LayerGraphParams prefill;
        prefill.batch = 1;
        prefill.seq = 200;
        prefill.training = false;

        std::cout << "Prefill kernels (200-token prompt):\n";
        Table pre = rooflineTable(dev, Precision::FP16,
                                  layerForwardOps(model, prefill));
        pre.print(std::cout);

        std::cout << "\nDecode kernels (context 300):\n";
        Table dec = rooflineTable(
            dev, Precision::FP16,
            decodeLayerOps(model, 1, 300, 1, Precision::FP16));
        dec.print(std::cout);

        std::cout << "\nCSV (prefill):\n";
        pre.printCsv(std::cout);
        std::cout << "\n";
    }

    std::cout << "Reading the plot: every decode kernel sits far "
                 "left of the ridge (memory-bound); prefill "
                 "projections sit right of it on A100 but fall back "
                 "below the H100 ridge - the Table 4 story.\n";
    return 0;
}
