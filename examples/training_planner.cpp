/**
 * @file
 * Training planner: given a model and a cluster, let the planner
 * library enumerate every valid parallelization mapping, reject those
 * that overflow device memory, and rank the survivors by predicted
 * time per batch — the workflow the paper's Sec. 5.1 motivates
 * ("determine the best parallelism mapping or training settings for
 * an LLM model on a certain hardware system").
 *
 * Scenario: GPT-3 175B on 16 DGX-A100 nodes (128 GPUs), batch 128.
 */

#include <iostream>

#include "core/optimus.h"

using namespace optimus;

int
main()
{
    const TransformerConfig model = models::gpt175b();
    const System sys = presets::dgxA100(16);  // 128 GPUs
    const long long batch = 128;

    std::cout << "Training planner: " << model.name << " on "
              << sys.totalDevices() << "x " << sys.device.name
              << ", global batch " << batch << "\n\n";

    TrainingPlannerOptions opts;
    opts.keep = 12;
    opts.zeroStages = {0, 1};
    std::vector<TrainingPlan> plans =
        planTraining(model, sys, batch, opts);

    Table out({"DP-TP-PP-SP", "Schedule", "Recompute", "ZeRO",
               "t/batch (s)", "MFU (%)", "Mem/GPU (GiB)",
               "Bubble (%)"});
    for (const TrainingPlan &p : plans) {
        out.beginRow()
            .cell(p.parallel.label())
            .cell(p.parallel.interleavedStages > 1
                      ? "interleaved x" +
                            std::to_string(
                                p.parallel.interleavedStages)
                      : scheduleName(p.parallel.schedule))
            .cell(recomputeName(p.options.recompute))
            .cell(static_cast<long long>(p.options.memory.zeroStage))
            .cell(p.report.timePerBatch, 2)
            .cell(p.report.mfu * 100.0, 1)
            .cell(p.report.memory.total() / GiB, 1)
            .cell(p.report.bubbleFraction * 100.0, 1);
        out.endRow();
    }
    out.print(std::cout);

    if (!plans.empty()) {
        const TrainingPlan &best = plans.front();
        std::cout << "\nBest: " << best.parallel.label() << " with "
                  << recomputeName(best.options.recompute)
                  << " recomputation -> "
                  << formatTime(best.report.timePerBatch)
                  << " per batch (MFU " << best.report.mfu * 100.0
                  << " %).\n";
    }
    return 0;
}
