#include "comm/collective.h"

#include <cmath>

#include "util/error.h"

namespace optimus {

const char *
collectiveName(CollectiveKind k)
{
    switch (k) {
      case CollectiveKind::AllReduce: return "all-reduce";
      case CollectiveKind::AllGather: return "all-gather";
      case CollectiveKind::ReduceScatter: return "reduce-scatter";
      case CollectiveKind::AllToAll: return "all-to-all";
      case CollectiveKind::Broadcast: return "broadcast";
      case CollectiveKind::PointToPoint: return "p2p";
    }
    throw ModelError("unknown collective kind");
}

namespace {

CollectiveResult
evaluate(CollectiveKind kind, double volume, long long n,
         const NetworkLink &link, CollectiveAlgorithm algo)
{
    CollectiveResult r;
    r.algorithm = algo;

    if (kind == CollectiveKind::PointToPoint) {
        r.effectiveBandwidth = link.effectiveBandwidth(volume);
        r.bandwidthTime = volume / r.effectiveBandwidth;
        r.latencyTime = link.latency + link.collectiveOverhead;
        r.time = r.bandwidthTime + r.latencyTime;
        return r;
    }

    if (n == 1) {
        r.effectiveBandwidth = link.bandwidth;
        return r;  // degenerate group: free
    }

    // The tensor volume (pipelined across the ring/tree) determines
    // the achievable utilization.
    r.effectiveBandwidth = link.effectiveBandwidth(volume);
    const double bw = r.effectiveBandwidth;
    const double N = double(n);
    const double l = link.latency;

    double steps = (algo == CollectiveAlgorithm::DoubleBinaryTree)
                       ? std::log2(N)
                       : (N - 1.0);

    r.latencyTime = link.collectiveOverhead;

    switch (kind) {
      case CollectiveKind::AllReduce:
        // Eq. 3 / Eq. 4: scatter-reduce + all-gather.
        r.bandwidthTime = 2.0 * volume * (N - 1.0) / (N * bw);
        r.latencyTime += 2.0 * l * steps;
        break;
      case CollectiveKind::AllGather:
      case CollectiveKind::ReduceScatter:
      case CollectiveKind::AllToAll:
        // All-to-all: each device keeps 1/N of its buffer and sends
        // the rest, the same wire volume as an all-gather.
        r.bandwidthTime = volume * (N - 1.0) / (N * bw);
        r.latencyTime += l * steps;
        break;
      case CollectiveKind::Broadcast:
        r.bandwidthTime = volume / bw;
        r.latencyTime += l * steps;
        break;
      case CollectiveKind::PointToPoint:
        break;  // handled above
    }
    r.time = r.bandwidthTime + r.latencyTime;
    return r;
}

} // namespace

CollectiveResult
collectiveTime(CollectiveKind kind, double volume, long long group_size,
               const NetworkLink &link, CollectiveAlgorithm algo)
{
    checkConfig(volume >= 0.0, "collective volume must be non-negative");
    checkPositive(group_size, "collective group size");

    if (algo != CollectiveAlgorithm::Auto)
        return evaluate(kind, volume, group_size, link, algo);

    CollectiveResult ring = evaluate(kind, volume, group_size, link,
                                     CollectiveAlgorithm::Ring);
    CollectiveResult tree =
        evaluate(kind, volume, group_size, link,
                 CollectiveAlgorithm::DoubleBinaryTree);
    return ring.time <= tree.time ? ring : tree;
}

GroupScope
groupScopeFor(const System &sys, long long packed_degree)
{
    checkPositive(packed_degree, "communication group packed degree");
    return packed_degree > sys.devicesPerNode ? GroupScope::InterNode
                                              : GroupScope::IntraNode;
}

CollectiveResult
systemCollective(const System &sys, CollectiveKind kind, double volume,
                 long long group_size, GroupScope scope,
                 CollectiveAlgorithm algo)
{
    if (scope == GroupScope::IntraNode) {
        checkConfig(group_size <= sys.devicesPerNode,
                    "intra-node group larger than a node");
        return collectiveTime(kind, volume, group_size, sys.intraLink,
                              algo);
    }
    // Inter-node groups: each device in a node participates in a
    // distinct concurrent group, so each group sees a share of the
    // per-node link bandwidth.
    NetworkLink shared = sys.interLink;
    shared.bandwidth = sys.interLink.bandwidth / sys.devicesPerNode;
    return collectiveTime(kind, volume, group_size, shared, algo);
}

} // namespace optimus
