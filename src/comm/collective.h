/**
 * @file
 * Analytical models of the communication collectives used by
 * distributed training and inference (paper Sec. 3.4).
 *
 * Two all-reduce algorithms are modeled:
 *  - Ring (bandwidth-optimal, Eq. 3):
 *      T = 2K(N-1)/(N*BW) + 2*l*(N-1)
 *  - Double binary trees (bandwidth- and latency-optimal, Eq. 4):
 *      T = 2K(N-1)/(N*BW) + 2*l*log2(N)
 *
 * BW is the message-size-adjusted effective bandwidth (the paper's
 * utilization factor for low-volume inference traffic).
 */

#ifndef OPTIMUS_COMM_COLLECTIVE_H
#define OPTIMUS_COMM_COLLECTIVE_H

#include <string>

#include "hw/network.h"
#include "hw/system.h"

namespace optimus {

/** Collective operation kinds. */
enum class CollectiveKind {
    AllReduce,
    AllGather,
    ReduceScatter,
    AllToAll,
    Broadcast,
    PointToPoint,
};

/** Algorithm used to schedule the collective. */
enum class CollectiveAlgorithm {
    Ring,
    DoubleBinaryTree,
    Auto,  ///< pick the faster of the two
};

/** Name of a collective kind ("all-reduce", ...). */
const char *collectiveName(CollectiveKind k);

/** Decomposed cost of one collective call. */
struct CollectiveResult
{
    double time = 0.0;            ///< total
    double bandwidthTime = 0.0;   ///< volume-proportional term
    double latencyTime = 0.0;     ///< hop-latency term
    double effectiveBandwidth = 0.0;
    CollectiveAlgorithm algorithm = CollectiveAlgorithm::Ring;
};

/**
 * Cost of a collective over @p group_size endpoints on @p link.
 *
 * @param volume  bytes of the full tensor on each participating device
 */
CollectiveResult collectiveTime(CollectiveKind kind, double volume,
                                long long group_size,
                                const NetworkLink &link,
                                CollectiveAlgorithm algo =
                                    CollectiveAlgorithm::Auto);

/** Where a communication group lives within the system topology. */
enum class GroupScope {
    IntraNode,  ///< all members inside one node (TP/SP groups)
    InterNode,  ///< one member per node (DP/PP groups); the per-node
                ///< network is shared by devicesPerNode concurrent
                ///< groups
};

/**
 * Scope convention for a communication group under the standard
 * Megatron packing order (TP innermost, then CP/EP/PP, DP outermost):
 * a group spans nodes only when the product of the parallel degrees
 * packed inside it *exceeds* devicesPerNode. At exactly
 * devicesPerNode the group still fits one node and stays on the
 * intra-node link.
 *
 * @p packed_degree is that product: `tp` for the TP group, `cp*tp`
 * for CP, `tp*pp` for EP and PP, `totalDevices` for DP. Every scope
 * decision in the kernel-plan lowering pass goes through this one
 * predicate so training and inference can never disagree.
 */
GroupScope groupScopeFor(const System &sys, long long packed_degree);

/**
 * Cost of a collective mapped onto @p sys: intra-node groups use the
 * intra-node link; inter-node groups use a 1/devicesPerNode share of
 * the per-node inter-node link (all devices of a node communicate
 * concurrently in distinct groups, the standard Megatron placement).
 */
CollectiveResult systemCollective(const System &sys, CollectiveKind kind,
                                  double volume, long long group_size,
                                  GroupScope scope,
                                  CollectiveAlgorithm algo =
                                      CollectiveAlgorithm::Auto);

} // namespace optimus

#endif // OPTIMUS_COMM_COLLECTIVE_H
