#include "config/serialize.h"

#include <functional>
#include <map>

#include "hw/presets.h"
#include "util/error.h"
#include "workload/presets.h"

namespace optimus {
namespace config {

namespace {

const std::map<std::string, std::function<Device()>> &
deviceRegistry()
{
    static const std::map<std::string, std::function<Device()>> reg = {
        {"a100-80gb", presets::a100_80gb},
        {"h100-sxm", presets::h100_sxm},
        {"h200-sxm", presets::h200_sxm},
        {"b100", presets::b100},
        {"b200", presets::b200},
        {"tpu-v4", presets::tpuV4},
        {"tpu-v5p", presets::tpuV5p},
    };
    return reg;
}

const std::map<std::string, std::function<TransformerConfig()>> &
modelRegistry()
{
    static const std::map<std::string,
                          std::function<TransformerConfig()>>
        reg = {
            {"gpt-7b", models::gpt7b},
            {"gpt-22b", models::gpt22b},
            {"gpt-175b", models::gpt175b},
            {"gpt-310b", models::gpt310b},
            {"gpt-530b", models::gpt530b},
            {"gpt-1008b", models::gpt1008b},
            {"llama2-7b", models::llama2_7b},
            {"llama2-13b", models::llama2_13b},
            {"llama2-70b", models::llama2_70b},
            {"mixtral-8x7b", models::mixtral8x7b},
            {"llama3-8b", models::llama3_8b},
            {"llama3-70b", models::llama3_70b},
            {"llama3-405b", models::llama3_405b},
        };
    return reg;
}

const std::map<std::string, std::function<System(int)>> &
systemRegistry()
{
    static const std::map<std::string, std::function<System(int)>>
        reg = {
            {"dgx-a100", presets::dgxA100},
            {"dgx-h100", presets::dgxH100},
            {"dgx-h100-nvs", presets::dgxH100Nvs},
            {"dgx-h200-nvs", presets::dgxH200Nvs},
            {"dgx-b200", presets::dgxB200},
            {"dgx-b200-nvs", presets::dgxB200Nvs},
        {"tpu-v4-pod", presets::tpuV4Pod},
        {"tpu-v5p-pod", presets::tpuV5pPod},
        };
    return reg;
}

Recompute
recomputeFromName(const std::string &name)
{
    if (name == "none")
        return Recompute::None;
    if (name == "selective")
        return Recompute::Selective;
    if (name == "full")
        return Recompute::Full;
    throw ConfigError("unknown recompute strategy: " + name);
}

PipelineSchedule
scheduleFromName(const std::string &name)
{
    if (name == "gpipe")
        return PipelineSchedule::GPipe;
    if (name == "1f1b")
        return PipelineSchedule::OneFOneB;
    if (name == "interleaved")
        return PipelineSchedule::Interleaved1F1B;
    throw ConfigError("unknown pipeline schedule: " + name);
}

} // namespace

std::vector<std::string>
devicePresetNames()
{
    std::vector<std::string> out;
    for (const auto &[name, fn] : deviceRegistry())
        out.push_back(name);
    return out;
}

Device
devicePreset(const std::string &name)
{
    auto it = deviceRegistry().find(name);
    checkConfig(it != deviceRegistry().end(),
                "unknown device preset: " + name);
    return it->second();
}

std::vector<std::string>
modelPresetNames()
{
    std::vector<std::string> out;
    for (const auto &[name, fn] : modelRegistry())
        out.push_back(name);
    return out;
}

TransformerConfig
modelPreset(const std::string &name)
{
    auto it = modelRegistry().find(name);
    checkConfig(it != modelRegistry().end(),
                "unknown model preset: " + name);
    return it->second();
}

std::vector<std::string>
systemPresetNames()
{
    std::vector<std::string> out;
    for (const auto &[name, fn] : systemRegistry())
        out.push_back(name);
    return out;
}

System
systemPreset(const std::string &name, int num_nodes)
{
    auto it = systemRegistry().find(name);
    checkConfig(it != systemRegistry().end(),
                "unknown system preset: " + name);
    return it->second(num_nodes);
}

// ---- Serialization -----------------------------------------------------

JsonValue
toJson(const NetworkLink &link)
{
    JsonValue j = JsonValue::object();
    j.set("name", JsonValue::string(link.name));
    j.set("bandwidth", JsonValue::number(link.bandwidth));
    j.set("latency", JsonValue::number(link.latency));
    j.set("halfUtilVolume", JsonValue::number(link.halfUtilVolume));
    j.set("maxUtilization", JsonValue::number(link.maxUtilization));
    j.set("collectiveOverhead",
          JsonValue::number(link.collectiveOverhead));
    return j;
}

JsonValue
toJson(const Device &dev)
{
    JsonValue j = JsonValue::object();
    j.set("name", JsonValue::string(dev.name));

    JsonValue matrix = JsonValue::object();
    for (const auto &[p, f] : dev.matrixThroughput)
        matrix.set(precisionName(p), JsonValue::number(f));
    j.set("matrixThroughput", std::move(matrix));

    JsonValue vec = JsonValue::object();
    for (const auto &[p, f] : dev.vectorThroughput)
        vec.set(precisionName(p), JsonValue::number(f));
    j.set("vectorThroughput", std::move(vec));

    JsonValue mem = JsonValue::array();
    for (const MemoryLevel &m : dev.mem) {
        JsonValue level = JsonValue::object();
        level.set("name", JsonValue::string(m.name));
        level.set("capacity", JsonValue::number(m.capacity));
        level.set("bandwidth", JsonValue::number(m.bandwidth));
        level.set("utilization", JsonValue::number(m.utilization));
        mem.push(std::move(level));
    }
    j.set("mem", std::move(mem));

    j.set("matrixMaxEfficiency",
          JsonValue::number(dev.matrixMaxEfficiency));
    j.set("gemmKHalf", JsonValue::number(dev.gemmKHalf));
    j.set("gemvDramUtilization",
          JsonValue::number(dev.gemvDramUtilization));
    j.set("kernelLaunchOverhead",
          JsonValue::number(dev.kernelLaunchOverhead));
    return j;
}

JsonValue
toJson(const System &sys)
{
    JsonValue j = JsonValue::object();
    j.set("device", toJson(sys.device));
    j.set("devicesPerNode",
          JsonValue::number(double(sys.devicesPerNode)));
    j.set("numNodes", JsonValue::number(double(sys.numNodes)));
    j.set("intraLink", toJson(sys.intraLink));
    j.set("interLink", toJson(sys.interLink));
    return j;
}

JsonValue
toJson(const TransformerConfig &cfg)
{
    JsonValue j = JsonValue::object();
    j.set("name", JsonValue::string(cfg.name));
    j.set("numLayers", JsonValue::number(double(cfg.numLayers)));
    j.set("hiddenSize", JsonValue::number(double(cfg.hiddenSize)));
    j.set("numHeads", JsonValue::number(double(cfg.numHeads)));
    j.set("numKvHeads", JsonValue::number(double(cfg.numKvHeads)));
    j.set("ffnHidden", JsonValue::number(double(cfg.ffnHidden)));
    j.set("vocabSize", JsonValue::number(double(cfg.vocabSize)));
    j.set("maxSeqLength",
          JsonValue::number(double(cfg.maxSeqLength)));
    j.set("mlp", JsonValue::string(cfg.mlp == MlpKind::SwiGlu
                                       ? "swiglu"
                                       : "gelu"));
    j.set("numExperts", JsonValue::number(double(cfg.numExperts)));
    j.set("topK", JsonValue::number(double(cfg.topK)));
    j.set("slidingWindow",
          JsonValue::number(double(cfg.slidingWindow)));
    return j;
}

JsonValue
toJson(const ParallelConfig &par)
{
    JsonValue j = JsonValue::object();
    j.set("dataParallel", JsonValue::number(double(par.dataParallel)));
    j.set("tensorParallel",
          JsonValue::number(double(par.tensorParallel)));
    j.set("pipelineParallel",
          JsonValue::number(double(par.pipelineParallel)));
    j.set("sequenceParallel",
          JsonValue::boolean(par.sequenceParallel));
    j.set("schedule", JsonValue::string(scheduleName(par.schedule)));
    j.set("microbatchSize",
          JsonValue::number(double(par.microbatchSize)));
    j.set("interleavedStages",
          JsonValue::number(double(par.interleavedStages)));
    j.set("expertParallel",
          JsonValue::number(double(par.expertParallel)));
    j.set("contextParallel",
          JsonValue::number(double(par.contextParallel)));
    return j;
}

JsonValue
toJson(const TrainingMemory &mem)
{
    JsonValue j = JsonValue::object();
    j.set("weights", JsonValue::number(mem.weights));
    j.set("gradients", JsonValue::number(mem.gradients));
    j.set("optimizer", JsonValue::number(mem.optimizer));
    j.set("activations", JsonValue::number(mem.activations));
    j.set("total", JsonValue::number(mem.total()));
    return j;
}

JsonValue
toJson(const TrainingOptions &opts)
{
    // Field names mirror trainingOptionsFromJson, so a serialized
    // options object (e.g. inside a RunRecord's canonical config)
    // deserializes back to the same evaluation. The trace pointer is
    // runtime state, not configuration.
    JsonValue j = JsonValue::object();
    j.set("precision",
          JsonValue::string(precisionName(opts.precision)));
    j.set("recompute", JsonValue::string(recomputeName(opts.recompute)));
    j.set("seqLength", JsonValue::number(double(opts.seqLength)));
    j.set("dpOverlapFraction",
          JsonValue::number(opts.dpOverlapFraction));
    j.set("tpOverlapFraction",
          JsonValue::number(opts.tpOverlapFraction));
    j.set("flashAttention", JsonValue::boolean(opts.flashAttention));
    j.set("zeroStage", JsonValue::number(double(opts.memory.zeroStage)));
    j.set("activationBytes",
          JsonValue::number(opts.memory.activationBytes));
    return j;
}

JsonValue
toJson(const InferenceOptions &opts)
{
    JsonValue j = JsonValue::object();
    j.set("precision",
          JsonValue::string(precisionName(opts.precision)));
    j.set("tensorParallel",
          JsonValue::number(double(opts.tensorParallel)));
    j.set("pipelineParallel",
          JsonValue::number(double(opts.pipelineParallel)));
    j.set("batch", JsonValue::number(double(opts.batch)));
    j.set("promptLength",
          JsonValue::number(double(opts.promptLength)));
    j.set("generateLength",
          JsonValue::number(double(opts.generateLength)));
    j.set("flashAttention", JsonValue::boolean(opts.flashAttention));
    j.set("kvPrecision",
          JsonValue::string(precisionName(opts.kvPrecision)));
    return j;
}

JsonValue
toJson(const TrainingReport &rep)
{
    JsonValue j = JsonValue::object();
    j.set("timePerBatch", JsonValue::number(rep.timePerBatch));
    JsonValue t = JsonValue::object();
    t.set("forward", JsonValue::number(rep.time.forward));
    t.set("backward", JsonValue::number(rep.time.backward));
    t.set("recompute", JsonValue::number(rep.time.recompute));
    t.set("embedding", JsonValue::number(rep.time.embedding));
    t.set("tpComm", JsonValue::number(rep.time.tpComm));
    t.set("cpComm", JsonValue::number(rep.time.cpComm));
    t.set("epComm", JsonValue::number(rep.time.epComm));
    t.set("ppComm", JsonValue::number(rep.time.ppComm));
    t.set("dpComm", JsonValue::number(rep.time.dpComm));
    t.set("bubble", JsonValue::number(rep.time.bubble));
    t.set("optimizer", JsonValue::number(rep.time.optimizer));
    j.set("time", std::move(t));
    j.set("memory", toJson(rep.memory));
    j.set("microbatches",
          JsonValue::number(double(rep.microbatches)));
    j.set("bubbleFraction", JsonValue::number(rep.bubbleFraction));
    j.set("modelFlops", JsonValue::number(rep.modelFlops));
    j.set("mfu", JsonValue::number(rep.mfu));
    return j;
}

JsonValue
toJson(const InferenceReport &rep)
{
    auto phase = [](const PhaseReport &p) {
        JsonValue j = JsonValue::object();
        j.set("time", JsonValue::number(p.time));
        j.set("computeBoundGemmTime",
              JsonValue::number(p.computeBoundGemmTime));
        j.set("memoryBoundGemmTime",
              JsonValue::number(p.memoryBoundGemmTime));
        j.set("otherKernelTime",
              JsonValue::number(p.otherKernelTime));
        j.set("commTime", JsonValue::number(p.commTime));
        j.set("overheadTime", JsonValue::number(p.overheadTime));
        j.set("memoryTime", JsonValue::number(p.memoryTime));
        return j;
    };
    JsonValue j = JsonValue::object();
    j.set("totalLatency", JsonValue::number(rep.totalLatency));
    j.set("prefill", phase(rep.prefill));
    j.set("decode", phase(rep.decode));
    j.set("kvCacheBytes", JsonValue::number(rep.kvCacheBytes));
    j.set("weightBytes", JsonValue::number(rep.weightBytes));
    j.set("fitsDeviceMemory",
          JsonValue::boolean(rep.fitsDeviceMemory));
    return j;
}

JsonValue
toJson(const lint::Diagnostic &diag)
{
    JsonValue j = JsonValue::object();
    j.set("severity",
          JsonValue::string(lint::severityName(diag.severity)));
    j.set("rule", JsonValue::string(diag.ruleId));
    j.set("message", JsonValue::string(diag.message));
    if (!diag.hint.empty())
        j.set("hint", JsonValue::string(diag.hint));
    return j;
}

JsonValue
toJson(const lint::LintReport &report)
{
    JsonValue diags = JsonValue::array();
    for (const lint::Diagnostic &d : report.diagnostics())
        diags.push(toJson(d));
    JsonValue j = JsonValue::object();
    j.set("diagnostics", std::move(diags));
    j.set("errors",
          JsonValue::number(double(report.errorCount())));
    j.set("warnings",
          JsonValue::number(double(report.warningCount())));
    return j;
}

// ---- Deserialization -----------------------------------------------------

NetworkLink
linkFromJson(const JsonValue &j)
{
    NetworkLink base;
    if (j.has("preset")) {
        const std::string name = j.at("preset").asString();
        if (name == "nvlink3")
            base = presets::nvlink3();
        else if (name == "nvlink4")
            base = presets::nvlink4();
        else if (name == "nvlink5")
            base = presets::nvlink5();
        else if (name == "hdr-ib")
            base = presets::hdrInfiniBand();
        else if (name == "ndr-ib")
            base = presets::ndrInfiniBand();
        else if (name == "xdr-ib")
            base = presets::xdrInfiniBand();
        else
            throw ConfigError("unknown link preset: " + name);
    }
    base.name = j.getString("name", base.name);
    base.bandwidth = j.getNumber("bandwidth", base.bandwidth);
    base.latency = j.getNumber("latency", base.latency);
    base.halfUtilVolume =
        j.getNumber("halfUtilVolume", base.halfUtilVolume);
    base.maxUtilization =
        j.getNumber("maxUtilization", base.maxUtilization);
    base.collectiveOverhead =
        j.getNumber("collectiveOverhead", base.collectiveOverhead);
    base.validate();
    return base;
}

Device
deviceFromJson(const JsonValue &j)
{
    Device dev;
    if (j.has("preset"))
        dev = devicePreset(j.at("preset").asString());

    dev.name = j.getString("name", dev.name);
    if (j.has("matrixThroughput")) {
        dev.matrixThroughput.clear();
        for (const auto &[k, v] : j.at("matrixThroughput").asObject())
            dev.matrixThroughput[parsePrecision(k)] = v.asNumber();
    }
    if (j.has("vectorThroughput")) {
        dev.vectorThroughput.clear();
        for (const auto &[k, v] : j.at("vectorThroughput").asObject())
            dev.vectorThroughput[parsePrecision(k)] = v.asNumber();
    }
    if (j.has("mem")) {
        dev.mem.clear();
        for (const JsonValue &level : j.at("mem").asArray()) {
            MemoryLevel m;
            m.name = level.at("name").asString();
            m.capacity = level.at("capacity").asNumber();
            m.bandwidth = level.at("bandwidth").asNumber();
            m.utilization = level.getNumber("utilization", 0.85);
            dev.mem.push_back(m);
        }
    }
    dev.matrixMaxEfficiency =
        j.getNumber("matrixMaxEfficiency", dev.matrixMaxEfficiency);
    dev.gemmKHalf = j.getNumber("gemmKHalf", dev.gemmKHalf);
    dev.gemvDramUtilization =
        j.getNumber("gemvDramUtilization", dev.gemvDramUtilization);
    dev.kernelLaunchOverhead =
        j.getNumber("kernelLaunchOverhead", dev.kernelLaunchOverhead);
    dev.validate();
    return dev;
}

System
systemFromJson(const JsonValue &j)
{
    if (j.has("preset")) {
        System sys = systemPreset(
            j.at("preset").asString(),
            static_cast<int>(j.getInt("numNodes", 1)));
        if (j.has("device"))
            sys.device = deviceFromJson(j.at("device"));
        sys.validate();
        return sys;
    }
    System sys;
    sys.device = deviceFromJson(j.at("device"));
    sys.devicesPerNode =
        static_cast<int>(j.getInt("devicesPerNode", 8));
    sys.numNodes = static_cast<int>(j.getInt("numNodes", 1));
    sys.intraLink = linkFromJson(j.at("intraLink"));
    sys.interLink = linkFromJson(j.at("interLink"));
    sys.validate();
    return sys;
}

TransformerConfig
modelFromJson(const JsonValue &j)
{
    TransformerConfig cfg;
    if (j.has("preset"))
        cfg = modelPreset(j.at("preset").asString());
    cfg.name = j.getString("name", cfg.name);
    cfg.numLayers = j.getInt("numLayers", cfg.numLayers);
    cfg.hiddenSize = j.getInt("hiddenSize", cfg.hiddenSize);
    cfg.numHeads = j.getInt("numHeads", cfg.numHeads);
    cfg.numKvHeads = j.getInt("numKvHeads", cfg.numKvHeads ? cfg.numKvHeads
                                                           : cfg.numHeads);
    cfg.ffnHidden = j.getInt("ffnHidden", cfg.ffnHidden);
    cfg.vocabSize = j.getInt("vocabSize", cfg.vocabSize);
    cfg.maxSeqLength = j.getInt("maxSeqLength", cfg.maxSeqLength);
    cfg.numExperts = j.getInt("numExperts", cfg.numExperts);
    cfg.topK = j.getInt("topK", cfg.topK);
    cfg.slidingWindow = j.getInt("slidingWindow", cfg.slidingWindow);
    if (j.has("mlp")) {
        const std::string kind = j.at("mlp").asString();
        if (kind == "swiglu")
            cfg.mlp = MlpKind::SwiGlu;
        else if (kind == "gelu")
            cfg.mlp = MlpKind::GeluTwoLayer;
        else
            throw ConfigError("unknown mlp kind: " + kind);
    }
    cfg.validate();
    return cfg;
}

ParallelConfig
parallelFromJson(const JsonValue &j)
{
    ParallelConfig par;
    par.dataParallel = j.getInt("dataParallel", par.dataParallel);
    par.tensorParallel =
        j.getInt("tensorParallel", par.tensorParallel);
    par.pipelineParallel =
        j.getInt("pipelineParallel", par.pipelineParallel);
    par.sequenceParallel =
        j.getBool("sequenceParallel", par.sequenceParallel);
    if (j.has("schedule"))
        par.schedule = scheduleFromName(j.at("schedule").asString());
    par.microbatchSize =
        j.getInt("microbatchSize", par.microbatchSize);
    par.interleavedStages =
        j.getInt("interleavedStages", par.interleavedStages);
    par.expertParallel =
        j.getInt("expertParallel", par.expertParallel);
    par.contextParallel =
        j.getInt("contextParallel", par.contextParallel);
    return par;
}

TrainingOptions
trainingOptionsFromJson(const JsonValue &j)
{
    TrainingOptions opts;
    if (j.has("precision"))
        opts.precision = parsePrecision(j.at("precision").asString());
    if (j.has("recompute"))
        opts.recompute =
            recomputeFromName(j.at("recompute").asString());
    opts.seqLength = j.getInt("seqLength", opts.seqLength);
    opts.dpOverlapFraction =
        j.getNumber("dpOverlapFraction", opts.dpOverlapFraction);
    opts.tpOverlapFraction =
        j.getNumber("tpOverlapFraction", opts.tpOverlapFraction);
    opts.flashAttention =
        j.getBool("flashAttention", opts.flashAttention);
    opts.memory.zeroStage = static_cast<int>(
        j.getInt("zeroStage", opts.memory.zeroStage));
    opts.memory.flashAttention = opts.flashAttention;
    opts.memory.activationBytes = j.getNumber(
        "activationBytes", precisionBytes(opts.precision) < 2.0
                               ? 1.0
                               : opts.memory.activationBytes);
    return opts;
}

InferenceOptions
inferenceOptionsFromJson(const JsonValue &j)
{
    InferenceOptions opts;
    if (j.has("precision"))
        opts.precision = parsePrecision(j.at("precision").asString());
    opts.tensorParallel =
        j.getInt("tensorParallel", opts.tensorParallel);
    opts.pipelineParallel =
        j.getInt("pipelineParallel", opts.pipelineParallel);
    opts.batch = j.getInt("batch", opts.batch);
    opts.promptLength = j.getInt("promptLength", opts.promptLength);
    opts.generateLength =
        j.getInt("generateLength", opts.generateLength);
    opts.flashAttention =
        j.getBool("flashAttention", opts.flashAttention);
    opts.kvPrecision =
        j.has("kvPrecision")
            ? parsePrecision(j.at("kvPrecision").asString())
            : opts.precision;
    return opts;
}

} // namespace config
} // namespace optimus
