/**
 * @file
 * JSON (de)serialization for the library's configuration and report
 * types, plus a name registry for the built-in presets. This is what
 * the CLI (tools/optimus_cli) and any embedding application use to
 * drive the model from config files.
 *
 * Deserializers accept either a full specification or a preset
 * reference: {"preset": "a100-80gb"} — a preset can also be used as a
 * base and overridden field by field.
 */

#ifndef OPTIMUS_CONFIG_SERIALIZE_H
#define OPTIMUS_CONFIG_SERIALIZE_H

#include <string>
#include <vector>

#include "inference/engine.h"
#include "lint/lint.h"
#include "training/trainer.h"
#include "util/json.h"

namespace optimus {
namespace config {

// ---- Preset registries -----------------------------------------------

/** Known device preset names ("a100-80gb", "h100-sxm", ...). */
std::vector<std::string> devicePresetNames();
/** Lookup a device preset; throws ConfigError on unknown name. */
Device devicePreset(const std::string &name);

/** Known model preset names ("gpt-175b", "llama2-13b", ...). */
std::vector<std::string> modelPresetNames();
/** Lookup a model preset; throws ConfigError on unknown name. */
TransformerConfig modelPreset(const std::string &name);

/** Known system preset names ("dgx-a100", "dgx-h100", ...). */
std::vector<std::string> systemPresetNames();
/** Lookup a system preset with @p num_nodes nodes. */
System systemPreset(const std::string &name, int num_nodes);

// ---- Serialization -----------------------------------------------------

JsonValue toJson(const Device &dev);
JsonValue toJson(const NetworkLink &link);
JsonValue toJson(const System &sys);
JsonValue toJson(const TransformerConfig &cfg);
JsonValue toJson(const ParallelConfig &par);
JsonValue toJson(const TrainingMemory &mem);
JsonValue toJson(const TrainingOptions &opts);
JsonValue toJson(const InferenceOptions &opts);
JsonValue toJson(const TrainingReport &rep);
JsonValue toJson(const InferenceReport &rep);
JsonValue toJson(const lint::Diagnostic &diag);
JsonValue toJson(const lint::LintReport &report);

// ---- Deserialization -----------------------------------------------------

Device deviceFromJson(const JsonValue &j);
NetworkLink linkFromJson(const JsonValue &j);
System systemFromJson(const JsonValue &j);
TransformerConfig modelFromJson(const JsonValue &j);
ParallelConfig parallelFromJson(const JsonValue &j);
TrainingOptions trainingOptionsFromJson(const JsonValue &j);
InferenceOptions inferenceOptionsFromJson(const JsonValue &j);

} // namespace config
} // namespace optimus

#endif // OPTIMUS_CONFIG_SERIALIZE_H
