/**
 * @file
 * Umbrella header: include this to get the whole public API.
 */

#ifndef OPTIMUS_CORE_OPTIMUS_H
#define OPTIMUS_CORE_OPTIMUS_H

#include "comm/collective.h"
#include "config/serialize.h"
#include "core/scenario.h"
#include "core/sensitivity.h"
#include "dse/search.h"
#include "energy/energy.h"
#include "exec/exec.h"
#include "hw/device.h"
#include "hw/network.h"
#include "hw/precision.h"
#include "hw/presets.h"
#include "hw/system.h"
#include "inference/engine.h"
#include "inference/serving.h"
#include "inference/speculative.h"
#include "lint/lint.h"
#include "memory/footprint.h"
#include "memory/kv_cache.h"
#include "parallel/config.h"
#include "planner/planner.h"
#include "parallel/pipeline.h"
#include "parallel/schedule_sim.h"
#include "roofline/estimate.h"
#include "roofline/gemm.h"
#include "roofline/gemv.h"
#include "roofline/report.h"
#include "roofline/stream.h"
#include "tech/dram.h"
#include "tech/logic_node.h"
#include "tech/network_tech.h"
#include "tech/uarch.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "training/trainer.h"
#include "util/error.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/activation.h"
#include "workload/graph.h"
#include "workload/model_config.h"
#include "workload/presets.h"

#endif // OPTIMUS_CORE_OPTIMUS_H
