#include "core/scenario.h"

#include "lint/lint.h"
#include "util/error.h"

namespace optimus {

Scenario::Scenario(TransformerConfig model, System system,
                   ParallelConfig par, long long global_batch)
    : model_(std::move(model)), system_(std::move(system)),
      parallel_(par), globalBatch_(global_batch), isTraining_(true)
{
    // One aggregated pass over model + system + mapping: a bad config
    // surfaces every problem at once instead of the first throw.
    lint::LintReport report = lint::lintModel(model_);
    report.merge(lint::lintSystem(system_));
    if (!report.hasErrors())
        report.merge(lint::lintMapping(model_, system_, parallel_,
                                       globalBatch_));
    lint::enforce(report);
}

Scenario::Scenario(TransformerConfig model, System system,
                   InferenceOptions inference)
    : model_(std::move(model)), system_(std::move(system)),
      inference_(inference), isTraining_(false)
{
    lint::LintReport report = lint::lintModel(model_);
    report.merge(lint::lintSystem(system_));
    lint::enforce(report);
    parallel_.tensorParallel = inference_.tensorParallel;
}

TrainingReport
Scenario::train(const TrainingOptions &opts) const
{
    checkConfig(isTraining_, "scenario was built for inference");
    return evaluateTraining(model_, system_, parallel_, globalBatch_,
                            opts);
}

InferenceReport
Scenario::infer() const
{
    checkConfig(!isTraining_, "scenario was built for training");
    return evaluateInference(model_, system_, inference_);
}

TrainingMemory
Scenario::memory(Recompute recompute, long long seq) const
{
    checkConfig(isTraining_, "scenario was built for inference");
    return trainingMemoryPerDevice(model_, parallel_, globalBatch_, seq,
                                   recompute);
}

bool
Scenario::fitsDeviceMemory(Recompute recompute, long long seq) const
{
    return memory(recompute, seq).total() <=
           system_.device.dram().capacity;
}

} // namespace optimus
