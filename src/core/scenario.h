/**
 * @file
 * Convenience facade: a Scenario binds a model, a system and a
 * parallelization mapping, exposing one-call training and inference
 * evaluation with validation up front. This is the entry point the
 * examples and most downstream users want.
 */

#ifndef OPTIMUS_CORE_SCENARIO_H
#define OPTIMUS_CORE_SCENARIO_H

#include "inference/engine.h"
#include "memory/footprint.h"
#include "training/trainer.h"

namespace optimus {

/** A bound (model, system, mapping) triple. */
class Scenario
{
  public:
    /** Bind and validate a training scenario. */
    Scenario(TransformerConfig model, System system, ParallelConfig par,
             long long global_batch);

    /** Bind an inference scenario (TP-only mapping). */
    Scenario(TransformerConfig model, System system,
             InferenceOptions inference);

    /** Evaluate training time/memory; requires a training scenario. */
    TrainingReport train(const TrainingOptions &opts = {}) const;

    /** Evaluate inference latency; requires an inference scenario. */
    InferenceReport infer() const;

    /** Per-device memory footprint for a recomputation choice. */
    TrainingMemory memory(Recompute recompute,
                          long long seq = 2048) const;

    /** True if the training footprint fits device DRAM. */
    bool fitsDeviceMemory(Recompute recompute,
                          long long seq = 2048) const;

    const TransformerConfig &model() const { return model_; }
    const System &system() const { return system_; }
    const ParallelConfig &parallel() const { return parallel_; }
    long long globalBatch() const { return globalBatch_; }

  private:
    TransformerConfig model_;
    System system_;
    ParallelConfig parallel_;
    long long globalBatch_ = 0;
    InferenceOptions inference_;
    bool isTraining_ = false;
};

} // namespace optimus

#endif // OPTIMUS_CORE_SCENARIO_H
