#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "exec/exec.h"
#include "util/error.h"

namespace optimus {

const char *
resourceName(Resource r)
{
    switch (r) {
      case Resource::MatrixCompute: return "matrix compute";
      case Resource::DramBandwidth: return "DRAM bandwidth";
      case Resource::CacheBandwidth: return "on-chip bandwidth";
      case Resource::IntraNodeNetwork: return "intra-node network";
      case Resource::InterNodeNetwork: return "inter-node network";
      case Resource::KernelOverhead: return "software overheads";
    }
    throw ModelError("unknown resource");
}

const std::vector<Resource> &
allResources()
{
    static const std::vector<Resource> all = {
        Resource::MatrixCompute,    Resource::DramBandwidth,
        Resource::CacheBandwidth,   Resource::IntraNodeNetwork,
        Resource::InterNodeNetwork, Resource::KernelOverhead,
    };
    return all;
}

System
scaleResource(const System &sys, Resource r, double factor)
{
    checkPositive(factor, "resource scale factor");
    System out = sys;
    switch (r) {
      case Resource::MatrixCompute:
        for (auto &[p, f] : out.device.matrixThroughput)
            f *= factor;
        break;
      case Resource::DramBandwidth:
        out.device.mem[0].bandwidth *= factor;
        break;
      case Resource::CacheBandwidth:
        for (size_t i = 1; i < out.device.mem.size(); ++i)
            out.device.mem[i].bandwidth *= factor;
        break;
      case Resource::IntraNodeNetwork:
        out.intraLink.bandwidth *= factor;
        break;
      case Resource::InterNodeNetwork:
        out.interLink.bandwidth *= factor;
        break;
      case Resource::KernelOverhead:
        // "More" overhead resource = lower overhead cost.
        out.device.kernelLaunchOverhead /= factor;
        out.intraLink.collectiveOverhead /= factor;
        out.interLink.collectiveOverhead /= factor;
        out.intraLink.latency /= factor;
        out.interLink.latency /= factor;
        break;
    }
    out.validate();
    return out;
}

std::vector<Sensitivity>
analyzeSensitivity(const System &sys,
                   const std::function<double(const System &)> &
                       objective,
                   int threads)
{
    checkConfig(static_cast<bool>(objective),
                "sensitivity analysis needs an objective");
    const double base = objective(sys);
    checkPositive(base, "baseline objective");

    // Each resource's bump/double probe pair is independent of the
    // others, so the six resources fan out through the exec layer;
    // results land slot-ordered, making the analysis bit-identical at
    // any thread count.
    const double bump = 1.25;
    const std::vector<Resource> &resources = allResources();
    std::vector<Sensitivity> out = exec::parallelMap(
        static_cast<long long>(resources.size()), threads,
        [&](long long i) {
            Resource r = resources[static_cast<size_t>(i)];
            Sensitivity s;
            s.resource = r;
            double bumped = objective(scaleResource(sys, r, bump));
            // Elasticity via log ratio: symmetric in the bump size.
            s.elasticity = std::log(bumped / base) / std::log(bump);
            double doubled = objective(scaleResource(sys, r, 2.0));
            s.speedupFrom2x = base / doubled;
            return s;
        });
    std::sort(out.begin(), out.end(),
              [](const Sensitivity &a, const Sensitivity &b) {
                  return a.elasticity < b.elasticity;
              });
    return out;
}

Table
sensitivityTable(const std::vector<Sensitivity> &s)
{
    Table t({"Resource", "elasticity", "speedup from 2x"});
    for (const Sensitivity &row : s) {
        t.beginRow()
            .cell(resourceName(row.resource))
            .cell(row.elasticity, 3)
            .cell(row.speedupFrom2x, 3);
        t.endRow();
    }
    return t;
}

} // namespace optimus
