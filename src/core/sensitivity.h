/**
 * @file
 * Sensitivity analysis: bottleneck attribution by differentiation.
 *
 * The paper's purpose is to "expose performance bottlenecks" and show
 * how they shift with technology (Secs. 5.3, 6.2). This module makes
 * that quantitative for any scenario: scale each hardware resource
 * (compute, DRAM bandwidth, cache bandwidth, intra/inter-node network,
 * kernel overhead) by a small factor, re-evaluate, and report the
 * elasticity d(log time)/d(log resource). An elasticity near -1 means
 * the scenario is completely bound by that resource; near 0 means the
 * resource is free headroom.
 */

#ifndef OPTIMUS_CORE_SENSITIVITY_H
#define OPTIMUS_CORE_SENSITIVITY_H

#include <functional>
#include <string>
#include <vector>

#include "hw/system.h"
#include "util/table.h"

namespace optimus {

/** A scalable hardware resource. */
enum class Resource {
    MatrixCompute,    ///< matrix-engine throughput
    DramBandwidth,
    CacheBandwidth,   ///< every on-chip level
    IntraNodeNetwork, ///< NVLink-class bandwidth
    InterNodeNetwork, ///< IB/NVS-class bandwidth
    KernelOverhead,   ///< launch + collective software overheads
};

/** Name of a resource ("matrix compute", ...). */
const char *resourceName(Resource r);

/** All resources, in reporting order. */
const std::vector<Resource> &allResources();

/** A copy of @p sys with @p r scaled by @p factor. */
System scaleResource(const System &sys, Resource r, double factor);

/** One resource's measured sensitivity. */
struct Sensitivity
{
    Resource resource;
    /**
     * Elasticity of execution time with respect to the resource:
     * (dT/T) / (dR/R), measured with a +25% resource bump. -1 means
     * fully bound by the resource; 0 means insensitive.
     */
    double elasticity = 0.0;
    /** Predicted speedup from doubling the resource. */
    double speedupFrom2x = 1.0;
};

/**
 * Evaluate the elasticity of @p objective (a time, in seconds, as a
 * function of the system) for every resource. The per-resource
 * probes are independent and fan out over @p threads workers
 * (exec/exec.h semantics: > 0 as given, 0 defers to OPTIMUS_THREADS,
 * default 1); results are bit-identical at every thread count. The
 * objective must be thread-safe — the built-in evaluators are.
 */
std::vector<Sensitivity> analyzeSensitivity(
    const System &sys,
    const std::function<double(const System &)> &objective,
    int threads = 0);

/** Render sensitivities as a table, most-binding resource first. */
Table sensitivityTable(const std::vector<Sensitivity> &s);

} // namespace optimus

#endif // OPTIMUS_CORE_SENSITIVITY_H
