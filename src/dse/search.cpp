#include "dse/search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lint/lint.h"
#include "trace/trace.h"
#include "util/error.h"

namespace optimus {

namespace {

double
clampFraction(double v, const DseOptions &opts)
{
    return std::clamp(v, opts.minFraction, opts.maxFraction);
}

} // namespace

DseResult
optimizeAllocation(const TechConfig &tech,
                   const DeviceObjective &objective,
                   const DseOptions &opts, const UArchCalibration &cal)
{
    checkConfig(static_cast<bool>(objective),
                "DSE needs an objective function");
    checkPositive(static_cast<long long>(opts.gridSteps), "gridSteps");

    DseResult best;
    best.objective = std::numeric_limits<double>::infinity();
    int evals = 0;
    TraceSession *tr = opts.trace;
    const bool tron = tracing(tr);

    auto evaluate = [&](const UArchAllocation &alloc) {
        Device dev = buildDevice(tech, alloc, cal);
        ++evals;
        if (tron)
            tr->counterAdd("dse/evaluations");
        // Cheap legality pre-filter: a candidate that fails structural
        // lint scores infinitely bad instead of throwing mid-search.
        if (!lint::isLegalDevice(dev)) {
            if (tron)
                tr->counterAdd("dse/pruned");
            return std::numeric_limits<double>::infinity();
        }
        return objective(dev);
    };

    auto progress = [&](int round, double value, double step) {
        if (tron)
            tr->counterSet("dse/best-objective", value);
        if (opts.onRound) {
            DseRound r;
            r.round = round;
            r.bestObjective = value;
            r.evaluations = evals;
            r.step = step;
            opts.onRound(r);
        }
    };

    auto consider = [&](const UArchAllocation &alloc, double value) {
        if (value < best.objective) {
            best.objective = value;
            best.allocation = alloc;
        }
    };

    // Coarse multi-start grid.
    for (int i = 1; i <= opts.gridSteps; ++i) {
        for (int j = 1; j <= opts.gridSteps; ++j) {
            UArchAllocation a;
            a.computeAreaFraction = clampFraction(
                double(i) / (opts.gridSteps + 1), opts);
            a.computePowerFraction = clampFraction(
                double(j) / (opts.gridSteps + 1), opts);
            consider(a, evaluate(a));
        }
    }
    progress(-1, best.objective, opts.initialStep);

    // Coordinate descent with step halving from the best grid point.
    UArchAllocation current = best.allocation;
    double value = best.objective;
    double step = opts.initialStep;
    for (int round = 0; round < opts.refineRounds; ++round) {
        bool improved = false;
        for (int axis = 0; axis < 2; ++axis) {
            for (double dir : {+1.0, -1.0}) {
                UArchAllocation trial = current;
                double &frac = (axis == 0) ? trial.computeAreaFraction
                                           : trial.computePowerFraction;
                frac = clampFraction(frac + dir * step, opts);
                double trial_value = evaluate(trial);
                if (trial_value < value) {
                    current = trial;
                    value = trial_value;
                    improved = true;
                }
            }
        }
        consider(current, value);
        progress(round, best.objective, step);
        if (!improved)
            step *= 0.5;
        if (step < 1e-3)
            break;
    }

    best.device = buildDevice(tech, best.allocation, cal);
    best.evaluations = evals;
    return best;
}

} // namespace optimus
