#include "dse/search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "exec/exec.h"
#include "lint/lint.h"
#include "trace/trace.h"
#include "util/error.h"

namespace optimus {

namespace {

double
clampFraction(double v, const DseOptions &opts)
{
    return std::clamp(v, opts.minFraction, opts.maxFraction);
}

} // namespace

DseResult
optimizeAllocation(const TechConfig &tech,
                   const DeviceObjective &objective,
                   const DseOptions &opts, const UArchCalibration &cal)
{
    checkConfig(static_cast<bool>(objective),
                "DSE needs an objective function");
    checkPositive(static_cast<long long>(opts.gridSteps), "gridSteps");

    DseResult best;
    best.objective = std::numeric_limits<double>::infinity();
    int evals = 0;
    TraceSession *tr = opts.trace;
    const bool tron = tracing(tr);

    struct Eval
    {
        double value = std::numeric_limits<double>::infinity();
        bool pruned = false;
    };

    // Pure single-candidate evaluation: no shared state, safe to fan
    // out. A candidate that fails structural lint scores infinitely
    // bad instead of throwing mid-search.
    auto evaluateOne = [&](const UArchAllocation &alloc) {
        Eval e;
        Device dev = buildDevice(tech, alloc, cal);
        if (!lint::isLegalDevice(dev)) {
            e.pruned = true;
            return e;
        }
        e.value = objective(dev);
        return e;
    };

    // Evaluate a batch of candidates through the exec layer; results
    // come back slot-ordered so every downstream reduction is
    // independent of the thread count. Counters are batched: totals
    // stay exact, only the sample granularity coarsens.
    auto evaluateBatch = [&](const std::vector<UArchAllocation> &
                                 batch) {
        std::vector<Eval> out = exec::parallelMap(
            static_cast<long long>(batch.size()), opts.threads,
            [&](long long i) {
                return evaluateOne(batch[static_cast<size_t>(i)]);
            });
        evals += static_cast<int>(batch.size());
        if (tron) {
            tr->counterAdd("dse/evaluations",
                           double(batch.size()));
            long long pruned = 0;
            for (const Eval &e : out)
                pruned += e.pruned ? 1 : 0;
            if (pruned > 0)
                tr->counterAdd("dse/pruned", double(pruned));
        }
        return out;
    };

    auto progress = [&](int round, double value, double step) {
        if (tron)
            tr->counterSet("dse/best-objective", value);
        if (opts.onRound) {
            DseRound r;
            r.round = round;
            r.bestObjective = value;
            r.evaluations = evals;
            r.step = step;
            opts.onRound(r);
        }
    };

    auto consider = [&](const UArchAllocation &alloc, double value) {
        if (value < best.objective) {
            best.objective = value;
            best.allocation = alloc;
        }
    };

    // Coarse multi-start grid, evaluated as one batch and reduced in
    // (i, j) loop order — identical winner to the serial scan.
    std::vector<UArchAllocation> grid;
    grid.reserve(static_cast<size_t>(opts.gridSteps) *
                 static_cast<size_t>(opts.gridSteps));
    for (int i = 1; i <= opts.gridSteps; ++i) {
        for (int j = 1; j <= opts.gridSteps; ++j) {
            UArchAllocation a;
            a.computeAreaFraction = clampFraction(
                double(i) / (opts.gridSteps + 1), opts);
            a.computePowerFraction = clampFraction(
                double(j) / (opts.gridSteps + 1), opts);
            grid.push_back(a);
        }
    }
    std::vector<Eval> grid_vals = evaluateBatch(grid);
    for (size_t g = 0; g < grid.size(); ++g)
        consider(grid[g], grid_vals[g].value);
    progress(-1, best.objective, opts.initialStep);

    // Compass-style coordinate descent with step halving from the
    // best grid point: each round probes +/-step on both axes *from
    // the same base point* (the four probes are independent, so they
    // fan out), then moves to the best strictly-improving probe.
    // Probes are reduced in axis-major, +/- order, so the chosen move
    // — and therefore the whole descent — is deterministic at every
    // thread count.
    UArchAllocation current = best.allocation;
    double value = best.objective;
    double step = opts.initialStep;
    for (int round = 0; round < opts.refineRounds; ++round) {
        std::vector<UArchAllocation> probes;
        probes.reserve(4);
        for (int axis = 0; axis < 2; ++axis) {
            for (double dir : {+1.0, -1.0}) {
                UArchAllocation trial = current;
                double &frac = (axis == 0)
                                   ? trial.computeAreaFraction
                                   : trial.computePowerFraction;
                frac = clampFraction(frac + dir * step, opts);
                probes.push_back(trial);
            }
        }
        std::vector<Eval> probe_vals = evaluateBatch(probes);
        bool improved = false;
        for (size_t p = 0; p < probes.size(); ++p) {
            if (probe_vals[p].value < value) {
                current = probes[p];
                value = probe_vals[p].value;
                improved = true;
            }
        }
        consider(current, value);
        progress(round, best.objective, step);
        if (!improved)
            step *= 0.5;
        if (step < 1e-3)
            break;
    }

    best.device = buildDevice(tech, best.allocation, cal);
    best.evaluations = evals;
    return best;
}

} // namespace optimus
