/**
 * @file
 * Design-space exploration (paper Sec. 3.6): a constrained search over
 * the area/power split between compute and on-chip memory that
 * minimizes a workload's predicted execution time at a given
 * technology corner.
 *
 * The search is a multi-start compass (pattern) search with step
 * halving — the derivative-free analogue of the paper's
 * gradient-descent search over an objective that is piecewise smooth
 * (roofline maxima make it non-differentiable at bound transitions).
 * Each refinement round probes +/-step on both axes from the same
 * base point and takes the best improving probe; because the probes
 * are independent they are evaluated in parallel through the exec
 * layer, and the reduction order is fixed, so the search result is
 * bit-identical at every thread count.
 */

#ifndef OPTIMUS_DSE_SEARCH_H
#define OPTIMUS_DSE_SEARCH_H

#include <functional>

#include "tech/uarch.h"

namespace optimus {

class TraceSession;

/** Objective: predicted execution time (seconds) of a device. */
using DeviceObjective = std::function<double(const Device &)>;

/** Per-round search progress surfaced to callers. */
struct DseRound
{
    int round = 0;            ///< refinement round (-1 = grid phase)
    double bestObjective = 0.0;
    int evaluations = 0;      ///< cumulative objective evaluations
    double step = 0.0;        ///< current coordinate-descent step
};

/** Search tunables. */
struct DseOptions
{
    int gridSteps = 5;       ///< coarse grid per axis for multi-start
    int refineRounds = 24;   ///< coordinate-descent iterations
    double initialStep = 0.12;
    double minFraction = 0.05;
    double maxFraction = 0.95;

    /**
     * Worker threads for candidate evaluation (exec/exec.h): the
     * coarse grid and the four axis probes of each refinement round
     * fan out; rounds themselves stay serial. > 0 is used as given,
     * 0 defers to OPTIMUS_THREADS (default 1). The search is
     * deterministic: results are identical at every thread count.
     * The objective must be thread-safe (the built-in evaluators
     * are).
     */
    int threads = 0;

    /**
     * Optional trace sink: counts objective evaluations
     * ("dse/evaluations"), lint-pruned candidates ("dse/pruned") and
     * samples the best objective per round ("dse/best-objective").
     */
    TraceSession *trace = nullptr;

    /** Optional progress callback, invoked once per search round. */
    std::function<void(const DseRound &)> onRound;
};

/** Outcome of a DSE run. */
struct DseResult
{
    UArchAllocation allocation;
    Device device;
    double objective = 0.0;
    int evaluations = 0;
};

/**
 * Find the allocation minimizing @p objective at tech corner @p tech.
 */
DseResult optimizeAllocation(const TechConfig &tech,
                             const DeviceObjective &objective,
                             const DseOptions &opts = {},
                             const UArchCalibration &cal =
                                 UArchCalibration::a100Anchor());

} // namespace optimus

#endif // OPTIMUS_DSE_SEARCH_H
