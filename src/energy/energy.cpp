#include "energy/energy.h"

#include "util/error.h"
#include "workload/graph.h"

namespace optimus {

EnergyModel
EnergyModel::scaled(double logic_efficiency,
                    double dram_energy_per_byte) const
{
    checkPositive(logic_efficiency, "logic efficiency scale");
    EnergyModel m = *this;
    m.flopEnergy = flopEnergy / logic_efficiency;
    m.dramEnergyPerByte = dram_energy_per_byte;
    return m;
}

double
EnergyReport::total() const
{
    return compute + dram + network + idle;
}

double
EnergyReport::averagePower(double batch_time) const
{
    checkPositive(batch_time, "batch time");
    return total() / batch_time;
}

EnergyReport
trainingEnergyPerBatch(const TransformerConfig &cfg, const System &sys,
                       const ParallelConfig &par, long long global_batch,
                       const TrainingReport &rep,
                       const EnergyModel &model)
{
    EnergyReport e;

    // Arithmetic work: model FLOPs plus the recomputation replay.
    double recompute_factor =
        rep.time.recompute > 0.0 && rep.time.forward > 0.0
            ? rep.time.recompute / (3.0 * rep.time.forward)
            : 0.0;
    double flops = rep.modelFlops * (1.0 + recompute_factor);
    e.compute = flops * model.flopEnergy;

    // DRAM traffic: per-device per-layer accounting scaled out.
    double layer_bytes = 0.0;
    if (!rep.layerForward.bytesPerLevel.empty())
        layer_bytes = rep.layerForward.bytesPerLevel[0] +
                      rep.layerBackward.bytesPerLevel[0];
    double device_bytes = layer_bytes *
                          double(cfg.numLayers / par.pipelineParallel) *
                          double(rep.microbatches);
    e.dram = device_bytes * double(sys.totalDevices()) *
             model.dramEnergyPerByte;

    // Network: TP collectives dominate volume; approximate from the
    // gradient all-reduce plus TP traffic (6 collectives of b*s*h
    // activation bytes per layer per microbatch; sequence length
    // recovered from the per-batch model FLOPs is overkill, the
    // standard 2048-token context is assumed).
    double tp_bytes = double(par.microbatchSize) * 2048.0 *
                      cfg.hiddenSize * 2.0 * 6.0 *
                      double(cfg.numLayers) * double(rep.microbatches);
    double dp_bytes = parametersPerDevice(cfg, par) * 2.0 * 2.0;
    e.network = (tp_bytes + dp_bytes) * double(sys.totalDevices()) *
                model.networkEnergyPerByte;

    // Idle burn across the whole batch.
    e.idle = model.devicePower * model.idlePowerFraction *
             rep.timePerBatch * double(sys.totalDevices());
    (void)global_batch;
    return e;
}

TcoReport
trainingCost(const System &sys, double time_per_batch, long long batches,
             const EnergyReport &energy, const TcoModel &model)
{
    checkPositive(time_per_batch, "time per batch");
    checkPositive(batches, "batches");

    TcoReport r;
    double run_seconds = time_per_batch * double(batches);
    double fleet_price = model.devicePriceUsd *
                         double(sys.totalDevices()) *
                         (1.0 + model.interconnectFraction);
    double amortization_seconds =
        model.amortizationYears * 365.25 * 24.0 * 3600.0;
    r.capexUsd = fleet_price * run_seconds / amortization_seconds;

    double kwh = energy.total() * double(batches) / 3.6e6;
    r.energyUsd = kwh * model.powerCostPerKwh * model.pue;
    r.totalUsd = r.capexUsd + r.energyUsd;
    return r;
}

} // namespace optimus
