/**
 * @file
 * Energy and cost (TCO) extension.
 *
 * The paper lists "integrating a cost and an energy model ... and
 * performing complete performance per TCO analysis" as future work
 * (Sec. 7); this module implements a first-order version: per-batch
 * training energy from FLOPs, DRAM traffic and network traffic, plus
 * an amortized total-cost-of-operation estimate.
 */

#ifndef OPTIMUS_ENERGY_ENERGY_H
#define OPTIMUS_ENERGY_ENERGY_H

#include "hw/system.h"
#include "training/trainer.h"

namespace optimus {

/** Per-operation energy coefficients. */
struct EnergyModel
{
    double flopEnergy = 0.8e-12;        ///< J/FLOP (fp16, ~7 nm)
    double dramEnergyPerByte = 28e-12;  ///< J/byte (HBM2e class)
    double sramEnergyPerByte = 2e-12;   ///< J/byte (L2 class)
    double networkEnergyPerByte = 60e-12; ///< J/byte serialized
    double idlePowerFraction = 0.3;     ///< share of TDP burned idle
    double devicePower = 400.0;         ///< W TDP per device

    /** Scale coefficients for a logic/DRAM technology corner. */
    EnergyModel scaled(double logic_efficiency,
                       double dram_energy_per_byte) const;
};

/** Energy breakdown of one training batch across the system, joules. */
struct EnergyReport
{
    double compute = 0.0;
    double dram = 0.0;
    double network = 0.0;
    double idle = 0.0;

    double total() const;
    /** Average system power over the batch, watts. */
    double averagePower(double batch_time) const;
};

/**
 * Energy of one training batch, estimated from the training report's
 * work terms and the per-device kernel accounting.
 */
EnergyReport trainingEnergyPerBatch(const TransformerConfig &cfg,
                                    const System &sys,
                                    const ParallelConfig &par,
                                    long long global_batch,
                                    const TrainingReport &rep,
                                    const EnergyModel &model = {});

/** Cost-of-operation parameters. */
struct TcoModel
{
    double devicePriceUsd = 25000.0;
    double amortizationYears = 4.0;
    double powerCostPerKwh = 0.10;
    double pue = 1.3;                 ///< datacenter overhead
    double interconnectFraction = 0.2; ///< networking capex share
};

/** Result of a TCO estimate for a training run. */
struct TcoReport
{
    double capexUsd = 0.0;   ///< amortized hardware cost
    double energyUsd = 0.0;  ///< electricity
    double totalUsd = 0.0;
};

/**
 * Cost of training for @p batches optimizer steps.
 */
TcoReport trainingCost(const System &sys, double time_per_batch,
                       long long batches, const EnergyReport &energy,
                       const TcoModel &model = {});

} // namespace optimus

#endif // OPTIMUS_ENERGY_ENERGY_H
