#include "exec/exec.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace optimus {

int
resolveThreads(int requested)
{
    // A hard ceiling keeps a typo'd request from spawning an absurd
    // worker count; real machines top out far below this.
    constexpr int kMaxThreads = 1024;
    if (requested > 0)
        return std::min(requested, kMaxThreads);
    const char *env = std::getenv("OPTIMUS_THREADS");
    if (env != nullptr) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<int>(
                std::min<long>(v, kMaxThreads));
    }
    return 1;
}

int
hardwareThreads()
{
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

namespace exec {

void
parallelFor(long long n, int threads,
            const std::function<void(long long)> &fn)
{
    if (n <= 0)
        return;
    threads = resolveThreads(threads);
    const long long workers = std::min<long long>(threads, n);
    if (workers <= 1) {
        // The historical serial code path, byte for byte: no worker
        // threads, no atomics, exceptions propagate directly.
        for (long long i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Workers self-schedule contiguous blocks off a shared cursor.
    // Block size trades scheduling overhead against load balance;
    // results are written by slot so the carve-up never shows up in
    // the output.
    const long long block = std::max<long long>(1, n / (workers * 4));
    std::atomic<long long> next{0};
    std::mutex err_mu;
    long long err_index = -1;
    std::exception_ptr err;

    auto work = [&]() {
        for (;;) {
            long long begin =
                next.fetch_add(block, std::memory_order_relaxed);
            if (begin >= n)
                return;
            long long end = std::min(begin + block, n);
            for (long long i = begin; i < end; ++i) {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(err_mu);
                    if (err_index < 0 || i < err_index) {
                        err_index = i;
                        err = std::current_exception();
                    }
                    return;
                }
            }
        }
    };

    {
        std::vector<std::jthread> pool;
        pool.reserve(static_cast<size_t>(workers - 1));
        for (long long w = 1; w < workers; ++w)
            pool.emplace_back(work);
        work(); // the calling thread participates
    }       // jthreads join here

    if (err)
        std::rethrow_exception(err);
}

} // namespace exec

} // namespace optimus
