/**
 * @file
 * Deterministic parallel execution layer for sweep-shaped work.
 *
 * Every headline result of the paper (the Fig. 5-9 sweeps, the
 * planner's DP/TP/PP enumeration, the N12->N1 DSE grid) evaluates
 * thousands of independent (model, system, mapping) candidates. This
 * module provides the substrate those loops share: a work-stealing-
 * free `parallelFor`/`parallelMap` over `std::jthread` workers that
 * self-schedule chunked index blocks and write results *by slot*, so
 * the output vector is bit-identical to a serial run at any thread
 * count.
 *
 * Determinism contract: when `fn` is a pure function of its index,
 * `parallelMap(n, t, fn)` returns the same bytes for every t. Nothing
 * about scheduling leaks into results; only wall-clock changes.
 *
 * Thread-count resolution is uniform across the library: an explicit
 * request wins, otherwise the `OPTIMUS_THREADS` environment variable,
 * otherwise 1 — so the default build reproduces the historical serial
 * code path exactly.
 */

#ifndef OPTIMUS_EXEC_EXEC_H
#define OPTIMUS_EXEC_EXEC_H

#include <functional>
#include <vector>

namespace optimus {

/**
 * Resolve a thread-count request: @p requested > 0 is honored as
 * given; otherwise the OPTIMUS_THREADS environment variable (when set
 * to a positive integer) decides; otherwise 1.
 */
int resolveThreads(int requested = 0);

/** std::thread::hardware_concurrency with a floor of 1. */
int hardwareThreads();

namespace exec {

/**
 * Run fn(0..n-1), fanning out over @p threads workers (resolved via
 * resolveThreads). Workers claim contiguous index blocks from a
 * shared cursor; there is no work stealing. With threads <= 1 this is
 * a plain serial loop. An exception thrown by @p fn stops the
 * throwing worker, the remaining indices still run, and the exception
 * recorded at the lowest index is rethrown after the join.
 */
void parallelFor(long long n, int threads,
                 const std::function<void(long long)> &fn);

/**
 * Map fn over 0..n-1 into a slot-ordered vector: out[i] = fn(i).
 * Output order (and content, for pure fn) is bit-identical to the
 * serial loop at every thread count. T must be default-constructible.
 */
template <typename Fn>
auto
parallelMap(long long n, int threads, Fn &&fn)
    -> std::vector<decltype(fn(static_cast<long long>(0)))>
{
    using T = decltype(fn(static_cast<long long>(0)));
    std::vector<T> out(static_cast<size_t>(n < 0 ? 0 : n));
    parallelFor(n, threads, [&](long long i) {
        out[static_cast<size_t>(i)] = fn(i);
    });
    return out;
}

} // namespace exec

} // namespace optimus

#endif // OPTIMUS_EXEC_EXEC_H
