#include "hw/device.h"

#include "util/error.h"

namespace optimus {

double
Device::matrixFlops(Precision p) const
{
    auto it = matrixThroughput.find(p);
    checkConfig(it != matrixThroughput.end(),
                name + ": matrix engine does not support " +
                precisionName(p));
    return it->second;
}

double
Device::vectorFlops(Precision p) const
{
    auto it = vectorThroughput.find(p);
    if (it != vectorThroughput.end())
        return it->second;
    // Vector ops are routinely run at a wider precision than the
    // matrix math; fall back to fp32 if the exact entry is missing.
    it = vectorThroughput.find(Precision::FP32);
    checkConfig(it != vectorThroughput.end(),
                name + ": no vector throughput for " + precisionName(p) +
                " and no fp32 fallback");
    return it->second;
}

bool
Device::supportsMatrix(Precision p) const
{
    return matrixThroughput.count(p) > 0;
}

const MemoryLevel &
Device::dram() const
{
    checkConfig(!mem.empty(), name + ": device has no memory levels");
    return mem.front();
}

const MemoryLevel &
Device::level(const std::string &level_name) const
{
    for (const auto &m : mem)
        if (m.name == level_name)
            return m;
    throw ConfigError(name + ": no memory level named " + level_name);
}

void
Device::validate() const
{
    checkConfig(!name.empty(), "device needs a name");
    checkConfig(!matrixThroughput.empty(),
                name + ": needs at least one matrix throughput entry");
    checkConfig(!mem.empty(), name + ": needs at least one memory level");
    for (const auto &[p, f] : matrixThroughput)
        checkPositive(f, name + " matrix flops (" + precisionName(p) + ")");
    for (const auto &[p, f] : vectorThroughput)
        checkPositive(f, name + " vector flops (" + precisionName(p) + ")");
    for (size_t i = 0; i < mem.size(); ++i) {
        const MemoryLevel &m = mem[i];
        checkConfig(!m.name.empty(), name + ": memory level needs a name");
        checkPositive(m.capacity, name + " " + m.name + " capacity");
        checkPositive(m.bandwidth, name + " " + m.name + " bandwidth");
        checkConfig(m.utilization > 0.0 && m.utilization <= 1.0,
                    name + " " + m.name + " utilization must be in (0,1]");
        // Inner levels must be smaller than outer ones. Bandwidth is
        // deliberately NOT required to increase inward: advanced DRAM
        // stacks can out-run an older last-level cache, the regime
        // Fig. 9 of the paper studies ("the problem starts to become
        // L2-bound").
        if (i > 0) {
            checkConfig(m.capacity < mem[i - 1].capacity,
                        name + ": memory level " + m.name +
                        " must be smaller than " + mem[i - 1].name);
        }
    }
    checkConfig(matrixMaxEfficiency > 0.0 && matrixMaxEfficiency <= 1.0,
                name + ": matrixMaxEfficiency must be in (0,1]");
    checkConfig(gemmKHalf >= 0.0,
                name + ": gemmKHalf must be non-negative");
    checkConfig(gemvDramUtilization > 0.0 && gemvDramUtilization <= 1.0,
                name + ": gemvDramUtilization must be in (0,1]");
    checkConfig(kernelLaunchOverhead >= 0.0,
                name + ": kernelLaunchOverhead must be non-negative");
}

} // namespace optimus
