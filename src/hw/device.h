/**
 * @file
 * High-level device abstraction.
 *
 * This is the paper's "architecture abstraction layer" (Sec. 3.1): a
 * device is described only by the coarse performance drivers the
 * prediction engine needs — matrix/vector compute throughput per
 * precision and a memory hierarchy with per-level capacity and
 * bandwidth — so modern GPUs can be described without proprietary
 * microarchitecture detail. A device can be written down directly
 * (presets.h) or synthesized from technology parameters by the uArch
 * engine (tech/uarch.h).
 */

#ifndef OPTIMUS_HW_DEVICE_H
#define OPTIMUS_HW_DEVICE_H

#include <map>
#include <string>
#include <vector>

#include "hw/precision.h"

namespace optimus {

/**
 * One level of the on/off-chip memory hierarchy.
 *
 * Levels are ordered from the farthest (DRAM, index 0) to the
 * innermost scratch (shared memory / L1). The hierarchical roofline
 * computes traffic and time per level.
 */
struct MemoryLevel
{
    std::string name;          ///< "DRAM", "L2", "SMEM", ...
    double capacity = 0.0;     ///< bytes
    double bandwidth = 0.0;    ///< bytes/s, peak
    double utilization = 1.0;  ///< achievable fraction for streaming
};

/**
 * A single accelerator (GPU/TPU/custom) as seen by the model.
 */
struct Device
{
    std::string name;

    /** Matrix-engine (tensor core) peak throughput per precision. */
    std::map<Precision, double> matrixThroughput;
    /** Vector-engine (CUDA core / VPU) peak throughput per precision. */
    std::map<Precision, double> vectorThroughput;

    /** Memory hierarchy, index 0 = DRAM, last = innermost scratch. */
    std::vector<MemoryLevel> mem;

    /**
     * Ceiling on achievable matrix-engine efficiency for large
     * compute-bound GEMMs (calibration knob, Sec. "Calibration" of
     * DESIGN.md). Typical measured value on A100-class parts ~0.85,
     * approached only for large reduction dimensions (see gemmKHalf).
     */
    double matrixMaxEfficiency = 0.85;

    /**
     * Reduction-dimension half-saturation constant: the achieved
     * matrix efficiency is matrixMaxEfficiency * k / (k + gemmKHalf),
     * modeling prologue/epilogue and mainloop amortization. Measured
     * cuBLAS behaviour: small-k GEMMs (attention scores, k = head
     * dim) run far below peak; k in the tens of thousands approaches
     * the ceiling.
     */
    double gemmKHalf = 450.0;

    /**
     * Constant DRAM bandwidth-utilization factor applied to
     * memory-bound GEMV/skinny-GEMM kernels (Sec. 4.1 of the paper,
     * the simplified single-factor variant).
     */
    double gemvDramUtilization = 0.75;

    /** Fixed software overhead per kernel launch, seconds. */
    double kernelLaunchOverhead = 3.0e-6;

    /** Peak matrix throughput; throws ConfigError if unsupported. */
    double matrixFlops(Precision p) const;
    /** Peak vector throughput; throws ConfigError if unsupported. */
    double vectorFlops(Precision p) const;
    /** True if the matrix engine supports precision @p p. */
    bool supportsMatrix(Precision p) const;

    /** The DRAM level (index 0). */
    const MemoryLevel &dram() const;
    /** Level lookup by name; throws ConfigError if absent. */
    const MemoryLevel &level(const std::string &name) const;

    /** Validate invariants; throws ConfigError on violation. */
    void validate() const;
};

} // namespace optimus

#endif // OPTIMUS_HW_DEVICE_H
