#include "hw/network.h"

#include "util/error.h"

namespace optimus {

double
NetworkLink::utilization(double volume) const
{
    checkConfig(volume >= 0.0, "transfer volume must be non-negative");
    if (volume == 0.0)
        return maxUtilization;
    return maxUtilization * volume / (volume + halfUtilVolume);
}

double
NetworkLink::effectiveBandwidth(double volume) const
{
    return bandwidth * utilization(volume);
}

void
NetworkLink::validate() const
{
    checkConfig(!name.empty(), "network link needs a name");
    checkPositive(bandwidth, name + " bandwidth");
    checkConfig(latency >= 0.0, name + ": latency must be non-negative");
    checkConfig(halfUtilVolume >= 0.0,
                name + ": halfUtilVolume must be non-negative");
    checkConfig(maxUtilization > 0.0 && maxUtilization <= 1.0,
                name + ": maxUtilization must be in (0,1]");
    checkConfig(collectiveOverhead >= 0.0,
                name + ": collectiveOverhead must be non-negative");
}

} // namespace optimus
