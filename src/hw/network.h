/**
 * @file
 * Point-to-point network link abstraction.
 *
 * A link is characterized by a peak bandwidth, a per-hop latency, and
 * a message-size-dependent bandwidth utilization (Sec. 3.4 of the
 * paper: "for inference, the data volume is generally low and the
 * network bandwidth is underutilized. We apply a utilization factor to
 * derive the actual bandwidth").
 */

#ifndef OPTIMUS_HW_NETWORK_H
#define OPTIMUS_HW_NETWORK_H

#include <string>

namespace optimus {

/**
 * A network link between two endpoints (GPUs within a node, or nodes
 * within a cluster). Bandwidth is per endpoint, per direction.
 */
struct NetworkLink
{
    std::string name;

    /** Peak per-direction bandwidth per endpoint, bytes/s. */
    double bandwidth = 0.0;

    /** One-way latency per hop, seconds (includes software stack). */
    double latency = 0.0;

    /**
     * Message volume at which bandwidth utilization reaches half of
     * its maximum; models protocol/pipelining inefficiency for small
     * transfers. The utilization curve is
     *   u(V) = maxUtilization * V / (V + halfUtilVolume).
     */
    double halfUtilVolume = 4.0e6;

    /** Utilization ceiling for very large transfers. */
    double maxUtilization = 0.90;

    /**
     * Fixed software cost charged once per collective operation
     * (NCCL-style launch/synchronization overhead). Dominates the
     * cost of the tiny per-token all-reduces of inference.
     */
    double collectiveOverhead = 10.0e-6;

    /** Achievable bandwidth for a transfer of @p volume bytes. */
    double effectiveBandwidth(double volume) const;

    /** Bandwidth utilization factor in (0, maxUtilization]. */
    double utilization(double volume) const;

    /** Validate invariants; throws ConfigError on violation. */
    void validate() const;
};

} // namespace optimus

#endif // OPTIMUS_HW_NETWORK_H
