#include "hw/precision.h"

#include <algorithm>
#include <cctype>

#include "util/error.h"

namespace optimus {

double
precisionBytes(Precision p)
{
    switch (p) {
      case Precision::FP32:
      case Precision::TF32:
        return 4.0;
      case Precision::FP16:
      case Precision::BF16:
        return 2.0;
      case Precision::FP8:
      case Precision::INT8:
        return 1.0;
      case Precision::FP4:
        return 0.5;
    }
    throw ModelError("unknown precision");
}

std::string
precisionName(Precision p)
{
    switch (p) {
      case Precision::FP32: return "fp32";
      case Precision::TF32: return "tf32";
      case Precision::FP16: return "fp16";
      case Precision::BF16: return "bf16";
      case Precision::FP8:  return "fp8";
      case Precision::FP4:  return "fp4";
      case Precision::INT8: return "int8";
    }
    throw ModelError("unknown precision");
}

Precision
parsePrecision(const std::string &name)
{
    std::string s = name;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "fp32") return Precision::FP32;
    if (s == "tf32") return Precision::TF32;
    if (s == "fp16" || s == "half") return Precision::FP16;
    if (s == "bf16") return Precision::BF16;
    if (s == "fp8") return Precision::FP8;
    if (s == "fp4") return Precision::FP4;
    if (s == "int8") return Precision::INT8;
    throw ConfigError("unknown precision name: " + name);
}

} // namespace optimus
