/**
 * @file
 * Numeric precisions used by the performance model.
 *
 * Precision determines both the byte width of every tensor element and
 * which peak-throughput entry of a device applies to a kernel
 * (Sec. 5.2 of the paper: H100 adds an FP8 transformer engine, B200
 * adds FP4 processing).
 */

#ifndef OPTIMUS_HW_PRECISION_H
#define OPTIMUS_HW_PRECISION_H

#include <string>

namespace optimus {

/** Supported numeric formats. */
enum class Precision {
    FP32,
    TF32,
    FP16,
    BF16,
    FP8,
    FP4,
    INT8,
};

/** Element size in bytes (FP4 is 0.5). */
double precisionBytes(Precision p);

/** Human-readable name, e.g. "fp16". */
std::string precisionName(Precision p);

/** Parse a precision name (case-insensitive); throws ConfigError. */
Precision parsePrecision(const std::string &name);

} // namespace optimus

#endif // OPTIMUS_HW_PRECISION_H
