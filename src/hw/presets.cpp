#include "hw/presets.h"

#include "util/units.h"

namespace optimus {
namespace presets {

namespace {

/** Memory hierarchy helper: DRAM -> L2 -> SMEM. */
std::vector<MemoryLevel>
gpuHierarchy(double dram_cap, double dram_bw, double l2_cap,
             double l2_bw, double smem_cap, double smem_bw)
{
    return {
        {"DRAM", dram_cap, dram_bw, 0.85},
        {"L2", l2_cap, l2_bw, 0.80},
        {"SMEM", smem_cap, smem_bw, 0.80},
    };
}

} // namespace

Device
a100_80gb()
{
    Device d;
    d.name = "A100-80GB";
    d.matrixThroughput = {
        {Precision::TF32, 156 * TFLOPS},
        {Precision::FP16, 312 * TFLOPS},
        {Precision::BF16, 312 * TFLOPS},
        {Precision::INT8, 624 * TFLOPS},
    };
    d.vectorThroughput = {
        {Precision::FP32, 19.5 * TFLOPS},
        {Precision::FP16, 78 * TFLOPS},
        {Precision::BF16, 39 * TFLOPS},
    };
    d.mem = gpuHierarchy(80 * GiB, 1.9 * TBps,
                         40 * MiB, 5.5 * TBps,
                         20.25 * MiB, 19.0 * TBps);
    d.matrixMaxEfficiency = 0.85;
    d.gemvDramUtilization = 0.75;
    d.kernelLaunchOverhead = 3.0e-6;
    d.validate();
    return d;
}

Device
h100_sxm()
{
    Device d;
    d.name = "H100-SXM";
    d.matrixThroughput = {
        {Precision::TF32, 494.7 * TFLOPS},
        {Precision::FP16, 989.4 * TFLOPS},
        {Precision::BF16, 989.4 * TFLOPS},
        {Precision::FP8, 1978.9 * TFLOPS},
        {Precision::INT8, 1978.9 * TFLOPS},
    };
    d.vectorThroughput = {
        {Precision::FP32, 66.9 * TFLOPS},
        {Precision::FP16, 133.8 * TFLOPS},
        {Precision::BF16, 133.8 * TFLOPS},
    };
    d.mem = gpuHierarchy(80 * GiB, 3.35 * TBps,
                         50 * MiB, 11.0 * TBps,
                         29.5 * MiB, 33.0 * TBps);
    d.matrixMaxEfficiency = 0.85;
    d.gemvDramUtilization = 0.70;
    d.kernelLaunchOverhead = 3.0e-6;
    d.validate();
    return d;
}

Device
h200_sxm()
{
    Device d = h100_sxm();
    d.name = "H200-SXM";
    d.mem[0] = {"DRAM", 141 * GiB, 4.8 * TBps, 0.85};
    d.validate();
    return d;
}

Device
b100()
{
    Device d;
    d.name = "B100";
    d.matrixThroughput = {
        {Precision::TF32, 875 * TFLOPS},
        {Precision::FP16, 1750 * TFLOPS},
        {Precision::BF16, 1750 * TFLOPS},
        {Precision::FP8, 3500 * TFLOPS},
        {Precision::FP4, 7000 * TFLOPS},
        {Precision::INT8, 3500 * TFLOPS},
    };
    d.vectorThroughput = {
        {Precision::FP32, 110 * TFLOPS},
        {Precision::FP16, 220 * TFLOPS},
        {Precision::BF16, 220 * TFLOPS},
    };
    d.mem = gpuHierarchy(192 * GiB, 8.0 * TBps,
                         100 * MiB, 22.0 * TBps,
                         55 * MiB, 60.0 * TBps);
    d.matrixMaxEfficiency = 0.85;
    d.gemvDramUtilization = 0.72;
    d.kernelLaunchOverhead = 3.0e-6;
    d.validate();
    return d;
}

Device
b200()
{
    Device d = b100();
    d.name = "B200";
    d.matrixThroughput = {
        {Precision::TF32, 1125 * TFLOPS},
        {Precision::FP16, 2250 * TFLOPS},
        {Precision::BF16, 2250 * TFLOPS},
        {Precision::FP8, 4500 * TFLOPS},
        {Precision::FP4, 9000 * TFLOPS},
        {Precision::INT8, 4500 * TFLOPS},
    };
    d.vectorThroughput = {
        {Precision::FP32, 140 * TFLOPS},
        {Precision::FP16, 280 * TFLOPS},
        {Precision::BF16, 280 * TFLOPS},
    };
    d.validate();
    return d;
}

Device
tpuV4()
{
    Device d;
    d.name = "TPU-v4";
    d.matrixThroughput = {
        {Precision::BF16, 275 * TFLOPS},
        {Precision::FP16, 275 * TFLOPS},
        {Precision::INT8, 550 * TFLOPS},
    };
    d.vectorThroughput = {
        {Precision::FP32, 4.3 * TFLOPS},
        {Precision::BF16, 8.6 * TFLOPS},
    };
    // CMEM (on-chip common memory) plays the L2 role; vector memory
    // the scratch role.
    d.mem = {
        {"DRAM", 32 * GiB, 1.2 * TBps, 0.85},
        {"CMEM", 128 * MiB, 7.0 * TBps, 0.80},
        {"VMEM", 32 * MiB, 22.0 * TBps, 0.80},
    };
    // Systolic arrays sustain high utilization on large GEMMs but
    // need long reduction dims to fill the 128x128 MXU pipelines.
    d.matrixMaxEfficiency = 0.80;
    d.gemmKHalf = 700.0;
    d.gemvDramUtilization = 0.70;
    d.kernelLaunchOverhead = 2.0e-6;
    d.validate();
    return d;
}

Device
tpuV5p()
{
    Device d = tpuV4();
    d.name = "TPU-v5p";
    d.matrixThroughput = {
        {Precision::BF16, 459 * TFLOPS},
        {Precision::FP16, 459 * TFLOPS},
        {Precision::INT8, 918 * TFLOPS},
    };
    d.mem[0] = {"DRAM", 95 * GiB, 2.765 * TBps, 0.85};
    d.validate();
    return d;
}

namespace {

NetworkLink
iciLink(const char *name, double bandwidth)
{
    // Inter-chip interconnect: per-direction per-chip rate across the
    // torus; latency comparable to NVLink with a leaner software
    // stack.
    return {name, bandwidth, 4.0 * usec, 0.5 * MB, 0.80,
            10.0 * usec};
}

NetworkLink
dcnLink()
{
    return {"DCN", 50 * GBps, 10.0 * usec, 1.0 * MB, 0.85,
            20.0 * usec};
}

} // namespace

System
tpuV4Pod(int num_cubes)
{
    return makeSystem(tpuV4(), 64, num_cubes,
                      iciLink("ICI-v4", 150 * GBps), dcnLink());
}

System
tpuV5pPod(int num_cubes)
{
    return makeSystem(tpuV5p(), 64, num_cubes,
                      iciLink("ICI-v5p", 200 * GBps), dcnLink());
}

Device
withDram(const Device &base, const std::string &dram_name,
         double bandwidth, double capacity)
{
    Device d = base;
    d.name = base.name + "-" + dram_name;
    d.mem[0].name = "DRAM";
    d.mem[0].bandwidth = bandwidth;
    d.mem[0].capacity = capacity;
    d.validate();
    return d;
}

NetworkLink
nvlink3()
{
    // 600 GB/s bidirectional -> 300 GB/s per direction per GPU.
    return {"NVLink3", 300 * GBps, 7.0 * usec, 0.5 * MB, 0.80,
            12.0 * usec};
}

NetworkLink
nvlink4()
{
    return {"NVLink4", 450 * GBps, 5.0 * usec, 0.5 * MB, 0.80,
            12.0 * usec};
}

NetworkLink
nvlink5()
{
    return {"NVLink5", 900 * GBps, 4.0 * usec, 0.5 * MB, 0.80,
            10.0 * usec};
}

NetworkLink
hdrInfiniBand()
{
    return {"HDR-IB", 200 * GBps, 5.0 * usec, 1.0 * MB, 0.85,
            20.0 * usec};
}

NetworkLink
ndrInfiniBand()
{
    return {"NDR-IB", 400 * GBps, 5.0 * usec, 1.0 * MB, 0.85,
            20.0 * usec};
}

NetworkLink
xdrInfiniBand()
{
    return {"XDR-IB", 800 * GBps, 5.0 * usec, 1.0 * MB, 0.85,
            20.0 * usec};
}

NetworkLink
nvlinkSwitchSystem(const NetworkLink &per_gpu, int devices_per_node)
{
    NetworkLink l = per_gpu;
    l.name = per_gpu.name + "-NVS";
    l.bandwidth = per_gpu.bandwidth * devices_per_node;
    l.latency = per_gpu.latency + 1.0 * usec;  // extra switch hop
    return l;
}

System
dgxA100(int num_nodes)
{
    return makeSystem(a100_80gb(), 8, num_nodes, nvlink3(),
                      hdrInfiniBand());
}

System
dgxH100(int num_nodes)
{
    return makeSystem(h100_sxm(), 8, num_nodes, nvlink4(),
                      ndrInfiniBand());
}

System
dgxH100Nvs(int num_nodes)
{
    return makeSystem(h100_sxm(), 8, num_nodes, nvlink4(),
                      nvlinkSwitchSystem(nvlink4(), 8));
}

System
dgxH200Nvs(int num_nodes)
{
    return makeSystem(h200_sxm(), 8, num_nodes, nvlink4(),
                      nvlinkSwitchSystem(nvlink4(), 8));
}

System
dgxB200(int num_nodes)
{
    return makeSystem(b200(), 8, num_nodes, nvlink5(),
                      ndrInfiniBand());
}

System
dgxB200Nvs(int num_nodes)
{
    return makeSystem(b200(), 8, num_nodes, nvlink5(),
                      nvlinkSwitchSystem(nvlink5(), 8));
}

} // namespace presets
} // namespace optimus
