/**
 * @file
 * Vendor device / link / system presets used throughout the paper's
 * validation and case studies.
 *
 * Throughput numbers are dense (non-sparse) peak rates from public
 * datasheets; DRAM bandwidths follow the values the paper quotes
 * (HBM2e 1.9 TB/s, HBM3 3.35 TB/s, ...). Cache bandwidths are not
 * published for recent NVIDIA parts; we use widely reproduced
 * microbenchmark estimates (these only matter for bound-type
 * classification, see Fig. 9 discussion in EXPERIMENTS.md).
 */

#ifndef OPTIMUS_HW_PRESETS_H
#define OPTIMUS_HW_PRESETS_H

#include "hw/system.h"

namespace optimus {
namespace presets {

// ---- Devices -------------------------------------------------------

/** NVIDIA A100-SXM4-80GB (Ampere, 7 nm, HBM2e @ 1.9 TB/s). */
Device a100_80gb();

/** NVIDIA H100-SXM5-80GB (Hopper, 5 nm, HBM3 @ 3.35 TB/s). */
Device h100_sxm();

/** NVIDIA H200-SXM-141GB (Hopper, HBM3e @ 4.8 TB/s). */
Device h200_sxm();

/** NVIDIA B100 (Blackwell, HBM3e @ 8 TB/s, 192 GB). */
Device b100();

/** NVIDIA B200 (Blackwell, FP4 engine, HBM3e @ 8 TB/s, 192 GB). */
Device b200();

/** Google TPU v4 (bf16 matrix units, HBM2 @ 1.2 TB/s, 128 MiB CMEM). */
Device tpuV4();

/** Google TPU v5p (bf16/int8, HBM2e @ 2.77 TB/s, 95 GiB). */
Device tpuV5p();

/**
 * A copy of @p base with its DRAM level replaced (technology swap used
 * by the Fig. 9 memory-technology-scaling study).
 */
Device withDram(const Device &base, const std::string &dram_name,
                double bandwidth, double capacity);

// ---- Intra-node links ----------------------------------------------

/** NVLink gen3 (A100): 600 GB/s bidirectional per GPU. */
NetworkLink nvlink3();
/** NVLink gen4 (H100/H200): 900 GB/s bidirectional per GPU. */
NetworkLink nvlink4();
/** NVLink gen5 (B200): 1.8 TB/s bidirectional per GPU. */
NetworkLink nvlink5();

// ---- Inter-node links (per-node aggregate) --------------------------

/** HDR InfiniBand, 200 GB/s per node (8 x HDR200 NICs). */
NetworkLink hdrInfiniBand();
/** NDR InfiniBand, 400 GB/s per node. */
NetworkLink ndrInfiniBand();
/** XDR InfiniBand, 800 GB/s per node. */
NetworkLink xdrInfiniBand();
/**
 * NVLink Switch System: inter-node communication at intra-node NVLink
 * speed (@p per_gpu link times @p devices_per_node GPUs).
 */
NetworkLink nvlinkSwitchSystem(const NetworkLink &per_gpu,
                               int devices_per_node);

// ---- Systems ---------------------------------------------------------

/** DGX-A100 cluster: 8x A100-80GB per node, NVLink3 + HDR IB. */
System dgxA100(int num_nodes);
/** DGX-H100 cluster: 8x H100-SXM per node, NVLink4 + NDR IB. */
System dgxH100(int num_nodes);
/** DGX-H100 with NVLink Switch System across nodes. */
System dgxH100Nvs(int num_nodes);
/** DGX-H200 with NVLink Switch System across nodes. */
System dgxH200Nvs(int num_nodes);
/** DGX-B200 cluster with NDR IB across nodes. */
System dgxB200(int num_nodes);
/** DGX-B200 with NVLink Switch System across nodes. */
System dgxB200Nvs(int num_nodes);

/**
 * TPU v4 pod slice: 64-chip ICI cubes as "nodes", data-center
 * network between cubes.
 */
System tpuV4Pod(int num_cubes);

/** TPU v5p pod slice, same topology abstraction. */
System tpuV5pPod(int num_cubes);

} // namespace presets
} // namespace optimus

#endif // OPTIMUS_HW_PRESETS_H
