#include "hw/system.h"

#include "lint/lint.h"
#include "util/error.h"

namespace optimus {

long long
System::totalDevices() const
{
    return static_cast<long long>(devicesPerNode) * numNodes;
}

const NetworkLink &
System::linkForGroup(long long group_size) const
{
    checkConfig(group_size >= 1, "communication group must be non-empty");
    return group_size <= devicesPerNode ? intraLink : interLink;
}

void
System::validate() const
{
    lint::enforce(lint::lintSystem(*this));
}

System
makeSystem(Device device, int devices_per_node, int num_nodes,
           NetworkLink intra, NetworkLink inter)
{
    System sys;
    sys.device = std::move(device);
    sys.devicesPerNode = devices_per_node;
    sys.numNodes = num_nodes;
    sys.intraLink = std::move(intra);
    sys.interLink = std::move(inter);
    sys.validate();
    return sys;
}

} // namespace optimus
