/**
 * @file
 * Node and cluster-level system description.
 *
 * A System is a homogeneous cluster: numNodes nodes, each holding
 * devicesPerNode identical devices connected by an intra-node link
 * (e.g. NVLink), with nodes connected by an inter-node link (e.g.
 * InfiniBand or the NVLink Switch System).
 */

#ifndef OPTIMUS_HW_SYSTEM_H
#define OPTIMUS_HW_SYSTEM_H

#include "hw/device.h"
#include "hw/network.h"

namespace optimus {

/** A homogeneous multi-node accelerator system. */
struct System
{
    Device device;
    int devicesPerNode = 8;
    int numNodes = 1;
    NetworkLink intraLink;  ///< device-to-device within a node
    NetworkLink interLink;  ///< node-to-node, per-device share

    /** Total device count. */
    long long totalDevices() const;

    /**
     * The link connecting a group of @p group_size consecutive devices:
     * the intra-node link when the group fits in one node, the
     * inter-node link otherwise.
     */
    const NetworkLink &linkForGroup(long long group_size) const;

    /** Validate invariants; throws ConfigError on violation. */
    void validate() const;
};

/** Convenience constructor with validation. */
System makeSystem(Device device, int devices_per_node, int num_nodes,
                  NetworkLink intra, NetworkLink inter);

} // namespace optimus

#endif // OPTIMUS_HW_SYSTEM_H
