#include "inference/engine.h"

#include <algorithm>

#include "plan/plan.h"
#include "workload/graph.h"

namespace optimus {

// The whole evaluation lives in the plan pipeline (plan/plan.h):
// lowerInference builds the per-(phase, token, op) step list,
// evaluatePlan runs the roofline and collective models, foldInference
// produces the PhaseReports and the trace spans, and runInference
// adds the KV-cache / weight footprint tail. This function is only
// the historical entry point.
InferenceReport
evaluateInference(const TransformerConfig &cfg, const System &sys,
                  const InferenceOptions &opts)
{
    return plan::runInference(cfg, sys, opts).report;
}

namespace {

std::vector<GemmBoundRow>
gemmTable(const Device &dev, const std::vector<Op> &ops,
          long long heads_local)
{
    std::vector<GemmBoundRow> rows;
    for (const Op &op : ops) {
        if (op.kind != OpKind::Gemm)
            continue;
        Op single = op;
        // Attention-score GEMMs are reported per single head.
        bool per_head = (op.name == "qk^T" || op.name == "attn-v") &&
                        heads_local > 0;
        if (per_head) {
            single.count = std::max<long long>(
                1, op.count / heads_local);
            single.launchCount = 1;
        }
        KernelEstimate est = evaluateOp(dev, single);
        GemmBoundRow row;
        row.name = per_head ? "single-head " + op.name : op.name;
        row.time = est.time;
        row.boundType = est.boundName(dev);
        row.flops = est.flops;
        row.dramBytes = est.bytesPerLevel.empty() ? 0.0
                                                  : est.bytesPerLevel[0];
        rows.push_back(row);
    }
    return rows;
}

} // namespace

std::vector<GemmBoundRow>
prefillGemmTable(const Device &dev, const TransformerConfig &cfg,
                 const InferenceOptions &opts)
{
    LayerGraphParams gp;
    gp.batch = opts.batch;
    gp.seq = opts.promptLength;
    gp.tensorParallel = opts.tensorParallel;
    gp.precision = opts.precision;
    gp.training = false;
    long long heads_local = cfg.numHeads / opts.tensorParallel;
    return gemmTable(dev, layerForwardOps(cfg, gp), heads_local);
}

std::vector<GemmBoundRow>
decodeGemmTable(const Device &dev, const TransformerConfig &cfg,
                const InferenceOptions &opts, long long context)
{
    long long heads_local = cfg.numHeads / opts.tensorParallel;
    return gemmTable(dev,
                     decodeLayerOps(cfg, opts.batch, context,
                                    opts.tensorParallel,
                                    opts.precision, opts.kvPrecision),
                     heads_local);
}

} // namespace optimus
