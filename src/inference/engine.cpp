#include "inference/engine.h"

#include <algorithm>

#include "memory/kv_cache.h"
#include "trace/trace.h"
#include "util/error.h"
#include "workload/graph.h"

namespace optimus {

namespace {

/** Accumulate one op estimate into a phase report. */
KernelEstimate
accumulate(PhaseReport &phase, const Device &dev, const Op &op)
{
    KernelEstimate est = evaluateOp(dev, op);
    phase.time += est.time;
    phase.overheadTime += est.overhead;
    if (!est.memTimePerLevel.empty())
        phase.memoryTime += est.memTimePerLevel[0];
    // Bound-type buckets include each kernel's launch overhead, as in
    // the paper's per-kernel accounting (a 3 us per-head attention
    // kernel is counted as memory-bound time even though its cost is
    // launch-dominated).
    if (op.kind == OpKind::Gemm ||
        op.kind == OpKind::FusedAttention) {
        if (est.computeBound())
            phase.computeBoundGemmTime += est.time;
        else
            phase.memoryBoundGemmTime += est.time;
    } else {
        phase.otherKernelTime += est.time;
    }
    return est;
}

/**
 * Trace category of an op within @p phase ("prefill"/"decode"),
 * mirroring accumulate()'s bucket choice so per-category span sums
 * reproduce the PhaseReport fields.
 */
std::string
traceCategory(const char *phase, const Op &op,
              const KernelEstimate &est)
{
    const char *bucket = "other";
    if (op.kind == OpKind::Gemm || op.kind == OpKind::FusedAttention)
        bucket = est.computeBound() ? "gemm-compute" : "gemm-memory";
    return std::string(phase) + "-" + bucket;
}

/** TP all-reduce time for one layer's two row-parallel outputs. */
double
layerCommTime(const System &sys, const InferenceOptions &opts,
              double tokens, double hidden)
{
    if (opts.tensorParallel <= 1)
        return 0.0;
    double volume = tokens * hidden * precisionBytes(opts.precision);
    CollectiveResult ar = systemCollective(
        sys, CollectiveKind::AllReduce, volume, opts.tensorParallel,
        GroupScope::IntraNode, opts.collectiveAlgorithm);
    return 2.0 * ar.time;
}

} // namespace

InferenceReport
evaluateInference(const TransformerConfig &cfg, const System &sys,
                  const InferenceOptions &opts)
{
    cfg.validate();
    sys.validate();
    checkPositive(opts.batch, "batch");
    checkPositive(opts.promptLength, "promptLength");
    checkPositive(opts.generateLength, "generateLength");
    checkPositive(opts.tensorParallel, "tensorParallel");
    checkPositive(opts.pipelineParallel, "pipelineParallel");
    checkConfig(opts.tensorParallel * opts.pipelineParallel <=
                    sys.totalDevices(),
                "TP x PP exceeds system size");
    checkConfig(cfg.numLayers % opts.pipelineParallel == 0,
                "layers must divide by the PP degree");

    const Device &dev = sys.device;
    const long long L = cfg.numLayers;
    InferenceReport rep;

    TraceSession *tr = opts.trace;
    const bool tron = tracing(tr);
    int lane_prefill = 0, lane_prefill_comm = 0, lane_decode = 0,
        lane_decode_comm = 0;
    if (tron) {
        lane_prefill = tr->lane("prefill");
        lane_prefill_comm = tr->lane("prefill/comm");
        lane_decode = tr->lane("decode");
        lane_decode_comm = tr->lane("decode/comm");
        tr->counterAdd("infer/decode-tokens",
                       double(opts.generateLength));
        tr->counterAdd("infer/layers", double(L));
    }

    // ---- Prefill (summarization) ------------------------------------
    LayerGraphParams gp;
    gp.batch = opts.batch;
    gp.seq = opts.promptLength;
    gp.tensorParallel = opts.tensorParallel;
    gp.precision = opts.precision;
    gp.training = false;
    gp.flashAttention = opts.flashAttention;

    PhaseReport layer_prefill;
    std::vector<Op> prefill_ops = layerForwardOps(cfg, gp);
    std::vector<KernelEstimate> prefill_ests;
    for (const Op &op : prefill_ops) {
        KernelEstimate est = accumulate(layer_prefill, dev, op);
        if (tron)
            prefill_ests.push_back(std::move(est));
    }

    rep.prefill.time = layer_prefill.time * L;
    rep.prefill.computeBoundGemmTime =
        layer_prefill.computeBoundGemmTime * L;
    rep.prefill.memoryBoundGemmTime =
        layer_prefill.memoryBoundGemmTime * L;
    rep.prefill.otherKernelTime = layer_prefill.otherKernelTime * L;
    rep.prefill.overheadTime = layer_prefill.overheadTime * L;
    rep.prefill.memoryTime = layer_prefill.memoryTime * L;
    const double prefill_layer_comm =
        layerCommTime(sys, opts,
                      double(opts.batch) * opts.promptLength,
                      double(cfg.hiddenSize));
    rep.prefill.commTime = prefill_layer_comm * L;
    rep.prefill.time += rep.prefill.commTime;

    if (tron)
        for (long long l = 0; l < L; ++l) {
            for (size_t i = 0; i < prefill_ops.size(); ++i) {
                TraceSpan s = kernelSpan(
                    dev, prefill_ops[i].name,
                    traceCategory("prefill", prefill_ops[i],
                                  prefill_ests[i]),
                    prefill_ests[i]);
                s.layer = l;
                tr->emit(lane_prefill, std::move(s));
            }
            if (prefill_layer_comm > 0.0) {
                TraceSpan s;
                s.name = "tp-allreduce";
                s.category = "prefill-comm";
                s.duration = prefill_layer_comm;
                s.layer = l;
                tr->emit(lane_prefill_comm, std::move(s));
            }
        }

    // First sampled token: the LM head runs once on the last position.
    for (const Op &op : headOps(cfg, opts.batch, opts.tensorParallel,
                                opts.precision)) {
        KernelEstimate est = accumulate(rep.prefill, dev, op);
        if (tron)
            tr->emit(lane_prefill,
                     kernelSpan(dev, op.name,
                                traceCategory("prefill", op, est),
                                est));
    }

    // ---- Decode (auto-regressive generation) -------------------------
    for (long long i = 0; i < opts.generateLength; ++i) {
        long long context = opts.promptLength + i + 1;
        PhaseReport step;
        for (const Op &op : decodeLayerOps(cfg, opts.batch, context,
                                           opts.tensorParallel,
                                           opts.precision,
                                           opts.kvPrecision)) {
            KernelEstimate est = accumulate(step, dev, op);
            if (tron) {
                // One span aggregates the op over all L layers of
                // this token (duration, FLOPs and traffic scaled).
                TraceSpan s = kernelSpan(
                    dev, op.name,
                    traceCategory("decode", op, est), est);
                s.duration = est.time * double(L);
                s.flops = est.flops * double(L);
                for (double &b : s.bytesPerLevel)
                    b *= double(L);
                s.overhead = est.overhead * double(L);
                s.step = i;
                tr->emit(lane_decode, std::move(s));
            }
        }

        rep.decode.time += step.time * L;
        rep.decode.computeBoundGemmTime +=
            step.computeBoundGemmTime * L;
        rep.decode.memoryBoundGemmTime +=
            step.memoryBoundGemmTime * L;
        rep.decode.otherKernelTime += step.otherKernelTime * L;
        rep.decode.overheadTime += step.overheadTime * L;
        rep.decode.memoryTime += step.memoryTime * L;

        double comm = layerCommTime(sys, opts, double(opts.batch),
                                    double(cfg.hiddenSize)) * L;
        rep.decode.commTime += comm;
        rep.decode.time += comm;
        if (tron && comm > 0.0) {
            TraceSpan s;
            s.name = "tp-allreduce";
            s.category = "decode-comm";
            s.duration = comm;
            s.step = i;
            tr->emit(lane_decode_comm, std::move(s));
        }

        // Sampling head for this token.
        PhaseReport head;
        for (const Op &op : headOps(cfg, opts.batch,
                                    opts.tensorParallel,
                                    opts.precision)) {
            KernelEstimate est = accumulate(head, dev, op);
            if (tron) {
                TraceSpan s = kernelSpan(
                    dev, op.name,
                    traceCategory("decode", op, est), est);
                s.step = i;
                tr->emit(lane_decode, std::move(s));
            }
        }
        rep.decode.time += head.time;
        rep.decode.memoryTime += head.memoryTime;
        rep.decode.overheadTime += head.overheadTime;
        if (head.computeBoundGemmTime > 0.0)
            rep.decode.computeBoundGemmTime += head.computeBoundGemmTime;
        rep.decode.memoryBoundGemmTime += head.memoryBoundGemmTime;
        rep.decode.otherKernelTime += head.otherKernelTime;
    }

    // Pipeline-parallel stages add one activation hop per boundary:
    // per prefill pass and per generated token.
    if (opts.pipelineParallel > 1) {
        GroupScope scope =
            (opts.tensorParallel * opts.pipelineParallel >
             sys.devicesPerNode)
                ? GroupScope::InterNode
                : GroupScope::IntraNode;
        double hops = double(opts.pipelineParallel - 1);
        double prefill_vol = double(opts.batch) * opts.promptLength *
                             cfg.hiddenSize *
                             precisionBytes(opts.precision);
        double token_vol = double(opts.batch) * cfg.hiddenSize *
                           precisionBytes(opts.precision);
        double prefill_hop =
            systemCollective(sys, CollectiveKind::PointToPoint,
                             prefill_vol, 2, scope)
                .time;
        double token_hop =
            systemCollective(sys, CollectiveKind::PointToPoint,
                             token_vol, 2, scope)
                .time;
        rep.prefill.commTime += hops * prefill_hop;
        rep.prefill.time += hops * prefill_hop;
        double decode_comm = hops * token_hop *
                             double(opts.generateLength);
        rep.decode.commTime += decode_comm;
        rep.decode.time += decode_comm;
        if (tron) {
            tr->emit(lane_prefill_comm, "pp-hops", "prefill-comm",
                     hops * prefill_hop);
            tr->emit(lane_decode_comm, "pp-hops", "decode-comm",
                     decode_comm);
        }
    }

    rep.totalLatency = rep.prefill.time + rep.decode.time;

    // ---- Memory accounting --------------------------------------------
    long long final_ctx = opts.promptLength + opts.generateLength;
    rep.kvCacheBytes = kvCacheBytes(cfg, opts.batch, final_ctx,
                                    opts.kvPrecision);
    rep.weightBytes = modelWeightBytes(cfg, opts.precision);
    rep.fitsDeviceMemory =
        (rep.weightBytes + rep.kvCacheBytes) /
            double(opts.tensorParallel * opts.pipelineParallel) <=
        dev.dram().capacity;
    return rep;
}

namespace {

std::vector<GemmBoundRow>
gemmTable(const Device &dev, const std::vector<Op> &ops,
          long long heads_local)
{
    std::vector<GemmBoundRow> rows;
    for (const Op &op : ops) {
        if (op.kind != OpKind::Gemm)
            continue;
        Op single = op;
        // Attention-score GEMMs are reported per single head.
        bool per_head = (op.name == "qk^T" || op.name == "attn-v") &&
                        heads_local > 0;
        if (per_head) {
            single.count = std::max<long long>(
                1, op.count / heads_local);
            single.launchCount = 1;
        }
        KernelEstimate est = evaluateOp(dev, single);
        GemmBoundRow row;
        row.name = per_head ? "single-head " + op.name : op.name;
        row.time = est.time;
        row.boundType = est.boundName(dev);
        row.flops = est.flops;
        row.dramBytes = est.bytesPerLevel.empty() ? 0.0
                                                  : est.bytesPerLevel[0];
        rows.push_back(row);
    }
    return rows;
}

} // namespace

std::vector<GemmBoundRow>
prefillGemmTable(const Device &dev, const TransformerConfig &cfg,
                 const InferenceOptions &opts)
{
    LayerGraphParams gp;
    gp.batch = opts.batch;
    gp.seq = opts.promptLength;
    gp.tensorParallel = opts.tensorParallel;
    gp.precision = opts.precision;
    gp.training = false;
    long long heads_local = cfg.numHeads / opts.tensorParallel;
    return gemmTable(dev, layerForwardOps(cfg, gp), heads_local);
}

std::vector<GemmBoundRow>
decodeGemmTable(const Device &dev, const TransformerConfig &cfg,
                const InferenceOptions &opts, long long context)
{
    long long heads_local = cfg.numHeads / opts.tensorParallel;
    return gemmTable(dev,
                     decodeLayerOps(cfg, opts.batch, context,
                                    opts.tensorParallel,
                                    opts.precision, opts.kvPrecision),
                     heads_local);
}

} // namespace optimus
