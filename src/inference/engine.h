/**
 * @file
 * LLM inference latency model (paper Secs. 3.5, 4.3, 6): prefill
 * (summarization) phase plus auto-regressive decode with a KV cache,
 * tensor parallelism with latency-optimized collectives, and per-GEMM
 * bound-type analysis (Table 4, Fig. 8).
 */

#ifndef OPTIMUS_INFERENCE_ENGINE_H
#define OPTIMUS_INFERENCE_ENGINE_H

#include <string>
#include <vector>

#include "comm/collective.h"
#include "hw/system.h"
#include "roofline/estimate.h"
#include "workload/model_config.h"

namespace optimus {

class TraceSession;
namespace plan { class EvalCache; }

/** Inference scenario description. */
struct InferenceOptions
{
    Precision precision = Precision::FP16;
    long long tensorParallel = 1;

    /**
     * Pipeline parallelism for models beyond one node's memory: the
     * layers split across pp stages; each token traverses every stage
     * (latency adds the inter-stage hops; memory divides by pp).
     */
    long long pipelineParallel = 1;
    long long batch = 1;
    long long promptLength = 200;   ///< summarization tokens
    long long generateLength = 200; ///< auto-regressive tokens
    CollectiveAlgorithm collectiveAlgorithm = CollectiveAlgorithm::Auto;

    /** Fused IO-aware attention for the prefill phase. */
    bool flashAttention = false;

    /**
     * Storage precision of the KV cache (KV-cache quantization):
     * serving an fp16 model with an fp8 cache halves both the cache
     * footprint and the attention read traffic of long contexts.
     */
    Precision kvPrecision = Precision::FP16;

    /**
     * Optional trace sink (trace/trace.h). When set to an enabled
     * session, the evaluator records a per-kernel span for every
     * modeled prefill/decode op (FLOPs, traffic, bound type) and the
     * TP/PP communication; per-category span sums exactly reproduce
     * the PhaseReport fields. Null (the default) costs nothing.
     */
    TraceSession *trace = nullptr;

    /**
     * Optional shared memo of op-list roofline evaluations
     * (plan/plan.h), keyed by device name plus op signature; share one
     * cache only across evaluations against the same System.
     * Runtime-only; never serialized.
     */
    plan::EvalCache *evalCache = nullptr;
};

/** One row of the per-GEMM bound table (paper Table 4). */
struct GemmBoundRow
{
    std::string name;
    double time = 0.0;       ///< seconds (per batched call)
    std::string boundType;   ///< "compute", "DRAM", "L2", ...
    double flops = 0.0;
    double dramBytes = 0.0;
};

/** Cost of one inference phase. */
struct PhaseReport
{
    double time = 0.0;             ///< total phase latency
    double computeBoundGemmTime = 0.0; ///< GEMM time, compute-bound part
    double memoryBoundGemmTime = 0.0;  ///< GEMM time, memory-bound part
    double otherKernelTime = 0.0;  ///< softmax / norms / elementwise
    double commTime = 0.0;         ///< TP collectives
    double overheadTime = 0.0;     ///< kernel launches
    double memoryTime = 0.0;       ///< DRAM transfer time (all kernels)
};

/** Full inference evaluation result. */
struct InferenceReport
{
    PhaseReport prefill;
    PhaseReport decode;
    double totalLatency = 0.0;

    double kvCacheBytes = 0.0;   ///< total, end of generation
    double weightBytes = 0.0;    ///< total model weights
    bool fitsDeviceMemory = true;
};

/** Evaluate end-to-end inference latency of @p cfg on @p sys. */
InferenceReport evaluateInference(const TransformerConfig &cfg,
                                  const System &sys,
                                  const InferenceOptions &opts);

/**
 * Per-GEMM bound-type table for the prefill phase of one transformer
 * layer (paper Table 4). Attention-score rows are reported per single
 * head, matching the paper's presentation.
 */
std::vector<GemmBoundRow> prefillGemmTable(const Device &dev,
                                           const TransformerConfig &cfg,
                                           const InferenceOptions &opts);

/** Same table for one decode step at @p context cached tokens. */
std::vector<GemmBoundRow> decodeGemmTable(const Device &dev,
                                          const TransformerConfig &cfg,
                                          const InferenceOptions &opts,
                                          long long context);

} // namespace optimus

#endif // OPTIMUS_INFERENCE_ENGINE_H
