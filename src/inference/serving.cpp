#include "inference/serving.h"

#include <algorithm>

#include "comm/collective.h"
#include "memory/kv_cache.h"
#include "util/error.h"
#include "workload/graph.h"

namespace optimus {

namespace {

/** One decode step for @p batch sequences at @p context tokens. */
double
decodeStepTime(const TransformerConfig &cfg, const System &sys,
               const ServingOptions &opts, long long batch,
               long long context)
{
    const Device &dev = sys.device;
    double step = 0.0;
    for (const Op &op : decodeLayerOps(cfg, batch, context,
                                       opts.tensorParallel,
                                       opts.precision,
                                       opts.kvPrecision))
        step += evaluateOp(dev, op).time;
    step *= double(cfg.numLayers);

    if (opts.tensorParallel > 1) {
        double volume = double(batch) * cfg.hiddenSize *
                        precisionBytes(opts.precision);
        CollectiveResult ar = systemCollective(
            sys, CollectiveKind::AllReduce, volume,
            opts.tensorParallel, GroupScope::IntraNode,
            opts.collectiveAlgorithm);
        step += 2.0 * ar.time * double(cfg.numLayers);
    }

    for (const Op &op : headOps(cfg, batch, opts.tensorParallel,
                                opts.precision))
        step += evaluateOp(sys.device, op).time;
    return step;
}

} // namespace

ServingPoint
evaluateServingPoint(const TransformerConfig &cfg, const System &sys,
                     const ServingOptions &opts, long long batch)
{
    cfg.validate();
    sys.validate();
    checkPositive(batch, "batch");
    checkPositive(opts.promptLength, "promptLength");
    checkPositive(opts.generateLength, "generateLength");

    ServingPoint pt;
    pt.batch = batch;

    const long long mean_context =
        opts.promptLength + opts.generateLength / 2;

    pt.decodeStepTime =
        decodeStepTime(cfg, sys, opts, batch, mean_context);

    // Continuous batching interleaves one prefill per completed
    // sequence; amortize its cost over that sequence's generated
    // tokens. Prefill runs at batch 1 (chunked alongside decode).
    InferenceOptions io;
    io.precision = opts.precision;
    io.tensorParallel = opts.tensorParallel;
    io.batch = 1;
    io.promptLength = opts.promptLength;
    io.generateLength = 1;
    io.flashAttention = opts.flashAttention;
    io.collectiveAlgorithm = opts.collectiveAlgorithm;
    InferenceReport one = evaluateInference(cfg, sys, io);
    pt.timeToFirstToken = one.prefill.time;

    double amortized_prefill =
        one.prefill.time / double(opts.generateLength);
    double effective_step = pt.decodeStepTime + amortized_prefill;

    pt.interTokenLatency = effective_step;
    pt.tokensPerSecond = double(batch) / effective_step;
    pt.requestsPerSecond =
        pt.tokensPerSecond / double(opts.generateLength);

    long long max_context = opts.promptLength + opts.generateLength;
    pt.kvCacheBytesPerDevice =
        kvCacheBytes(cfg, batch, max_context, opts.kvPrecision) /
        double(opts.tensorParallel);
    double per_device =
        pt.kvCacheBytesPerDevice +
        modelWeightBytes(cfg, opts.precision) /
            double(opts.tensorParallel);
    pt.fits = per_device <= sys.device.dram().capacity;
    return pt;
}

std::vector<ServingPoint>
servingSweep(const TransformerConfig &cfg, const System &sys,
             const ServingOptions &opts,
             const std::vector<long long> &batches)
{
    std::vector<ServingPoint> out;
    out.reserve(batches.size());
    for (long long b : batches)
        out.push_back(evaluateServingPoint(cfg, sys, opts, b));
    return out;
}

ServingPoint
maxThroughputPoint(const TransformerConfig &cfg, const System &sys,
                   const ServingOptions &opts, long long batch_limit)
{
    checkPositive(batch_limit, "batch limit");
    ServingPoint best;
    bool any = false;
    for (long long b = 1; b <= batch_limit; b *= 2) {
        ServingPoint pt = evaluateServingPoint(cfg, sys, opts, b);
        if (!pt.fits)
            break;
        if (!any || pt.tokensPerSecond > best.tokensPerSecond) {
            best = pt;
            any = true;
        }
    }
    checkConfig(any, "model does not fit the device at batch 1");
    return best;
}

double
costPerMillionTokens(const System &sys, const ServingOptions &opts,
                     const ServingPoint &point,
                     const ServingCostModel &cost)
{
    (void)sys;  // reserved for per-system power/price lookups
    checkPositive(point.tokensPerSecond, "tokens per second");

    const double devices = double(opts.tensorParallel);
    const double seconds_per_mtok = 1e6 / point.tokensPerSecond;

    // Amortized hardware for the TP group.
    double fleet_price = cost.tco.devicePriceUsd * devices *
                         (1.0 + cost.tco.interconnectFraction);
    double amortization_seconds =
        cost.tco.amortizationYears * 365.25 * 24.0 * 3600.0;
    double capex = fleet_price * seconds_per_mtok /
                   amortization_seconds;

    // Electricity: decode is memory-bound, so devices run well below
    // TDP; charge the idle fraction plus DRAM-activity power.
    double watts = cost.energy.devicePower * devices *
                   (cost.energy.idlePowerFraction + 0.35);
    double kwh = watts * seconds_per_mtok / 3.6e6;
    double energy = kwh * cost.tco.powerCostPerKwh * cost.tco.pue;

    return capex + energy;
}

} // namespace optimus
