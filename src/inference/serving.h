/**
 * @file
 * Steady-state serving model on top of the inference engine.
 *
 * The paper's Sec. 6 analyzes single-request latency and notes that
 * "larger batch sizes improve inference throughput but at the cost of
 * latency". This extension turns that observation into a serving
 * calculator: for a continuously batched decode loop it reports the
 * sustainable token/request throughput, time-to-first-token, and the
 * largest batch the KV cache allows — plus dollars per million tokens
 * when combined with the energy/TCO module.
 */

#ifndef OPTIMUS_INFERENCE_SERVING_H
#define OPTIMUS_INFERENCE_SERVING_H

#include <vector>

#include "energy/energy.h"
#include "inference/engine.h"

namespace optimus {

/** Serving scenario description. */
struct ServingOptions
{
    Precision precision = Precision::FP16;
    long long tensorParallel = 1;
    long long promptLength = 512;
    long long generateLength = 256;
    bool flashAttention = true;
    CollectiveAlgorithm collectiveAlgorithm = CollectiveAlgorithm::Auto;

    /** KV-cache storage precision (quantized caches serve more). */
    Precision kvPrecision = Precision::FP16;
};

/** Steady-state operating point at one batch size. */
struct ServingPoint
{
    long long batch = 0;
    double decodeStepTime = 0.0;     ///< one token for every sequence
    double tokensPerSecond = 0.0;    ///< generated tokens, system-wide
    double requestsPerSecond = 0.0;  ///< completed generations
    double timeToFirstToken = 0.0;   ///< prefill latency at this batch
    double interTokenLatency = 0.0;  ///< per-sequence token spacing
    double kvCacheBytesPerDevice = 0.0;
    bool fits = true;
};

/**
 * Evaluate one steady-state batch size (decode at the mean context
 * length; prefill work amortized into the step time).
 */
ServingPoint evaluateServingPoint(const TransformerConfig &cfg,
                                  const System &sys,
                                  const ServingOptions &opts,
                                  long long batch);

/** Evaluate a sweep of batch sizes. */
std::vector<ServingPoint> servingSweep(const TransformerConfig &cfg,
                                       const System &sys,
                                       const ServingOptions &opts,
                                       const std::vector<long long> &
                                           batches);

/**
 * Largest power-of-two batch whose weights + KV cache fit device
 * memory, with its operating point.
 */
ServingPoint maxThroughputPoint(const TransformerConfig &cfg,
                                const System &sys,
                                const ServingOptions &opts,
                                long long batch_limit = 256);

/** Cost inputs for dollars-per-token accounting. */
struct ServingCostModel
{
    TcoModel tco;
    EnergyModel energy;
};

/**
 * Serving cost in USD per million generated tokens at an operating
 * point: amortized hardware for the TP group plus electricity.
 */
double costPerMillionTokens(const System &sys,
                            const ServingOptions &opts,
                            const ServingPoint &point,
                            const ServingCostModel &cost = {});

} // namespace optimus

#endif // OPTIMUS_INFERENCE_SERVING_H
