#include "inference/speculative.h"

#include <cmath>

#include "comm/collective.h"
#include "util/error.h"
#include "workload/graph.h"

namespace optimus {

namespace {

/** One decode step over @p queries query tokens at @p context. */
double
stepTime(const TransformerConfig &cfg, const System &sys,
         const SpeculativeOptions &opts, long long queries,
         long long tp)
{
    double t = 0.0;
    for (const Op &op : decodeLayerOps(cfg, queries, opts.context, tp,
                                       opts.precision))
        t += evaluateOp(sys.device, op).time;
    t *= double(cfg.numLayers);

    if (tp > 1) {
        double volume = double(queries) * cfg.hiddenSize *
                        precisionBytes(opts.precision);
        CollectiveResult ar = systemCollective(
            sys, CollectiveKind::AllReduce, volume, tp,
            GroupScope::IntraNode);
        t += 2.0 * ar.time * double(cfg.numLayers);
    }
    for (const Op &op : headOps(cfg, queries, tp, opts.precision))
        t += evaluateOp(sys.device, op).time;
    return t;
}

} // namespace

SpeculativeReport
evaluateSpeculative(const TransformerConfig &target,
                    const TransformerConfig &draft, const System &sys,
                    const SpeculativeOptions &opts)
{
    target.validate();
    draft.validate();
    sys.validate();
    checkPositive(opts.gamma, "gamma");
    checkPositive(opts.context, "context");
    checkConfig(opts.acceptanceRate > 0.0 && opts.acceptanceRate < 1.0,
                "acceptanceRate must be in (0,1)");
    checkConfig(draft.parameterCount() < target.parameterCount(),
                "draft model must be smaller than the target");

    SpeculativeReport rep;

    // The draft runs unsharded (it is small); the target keeps TP.
    rep.draftStepTime = stepTime(draft, sys, opts, 1, 1);
    rep.verifyTime = stepTime(target, sys, opts, opts.gamma + 1,
                              opts.tensorParallel);

    rep.cycleTime =
        double(opts.gamma) * rep.draftStepTime + rep.verifyTime;

    const double a = opts.acceptanceRate;
    rep.expectedTokensPerCycle =
        (1.0 - std::pow(a, double(opts.gamma) + 1.0)) / (1.0 - a);

    rep.tokensPerSecond = rep.expectedTokensPerCycle / rep.cycleTime;

    double target_step =
        stepTime(target, sys, opts, 1, opts.tensorParallel);
    rep.baselineTokensPerSecond = 1.0 / target_step;
    rep.speedup = rep.tokensPerSecond / rep.baselineTokensPerSecond;
    return rep;
}

} // namespace optimus
