/**
 * @file
 * Speculative decoding extension.
 *
 * The paper shows the auto-regressive generation phase is DRAM-bound:
 * every token streams the full weights (Sec. 6.1). Speculative
 * decoding exploits exactly that headroom — a small draft model
 * proposes gamma tokens, the target model verifies them in ONE
 * parallel pass (weights stream once for gamma+1 tokens). This module
 * predicts the achievable speedup from the same roofline primitives.
 */

#ifndef OPTIMUS_INFERENCE_SPECULATIVE_H
#define OPTIMUS_INFERENCE_SPECULATIVE_H

#include "hw/system.h"
#include "workload/model_config.h"

namespace optimus {

/** Speculative-decoding scenario. */
struct SpeculativeOptions
{
    Precision precision = Precision::FP16;
    long long tensorParallel = 1;
    long long context = 400;       ///< current sequence length
    long long gamma = 4;           ///< draft tokens per cycle
    double acceptanceRate = 0.8;   ///< per-token draft acceptance
};

/** Predicted steady-state behaviour of one speculation cycle. */
struct SpeculativeReport
{
    double draftStepTime = 0.0;        ///< one draft decode step
    double verifyTime = 0.0;           ///< target parallel check
    double cycleTime = 0.0;            ///< gamma drafts + verify
    double expectedTokensPerCycle = 0.0;
    double tokensPerSecond = 0.0;
    double baselineTokensPerSecond = 0.0;  ///< plain decoding
    double speedup = 0.0;
};

/**
 * Evaluate speculative decoding of @p target assisted by @p draft.
 *
 * Expected tokens per cycle follows Leviathan et al.:
 *   E[n] = (1 - a^(gamma+1)) / (1 - a)
 * with per-token acceptance rate a.
 */
SpeculativeReport evaluateSpeculative(const TransformerConfig &target,
                                      const TransformerConfig &draft,
                                      const System &sys,
                                      const SpeculativeOptions &opts);

} // namespace optimus

#endif // OPTIMUS_INFERENCE_SPECULATIVE_H
