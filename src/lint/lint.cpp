#include "lint/lint.h"

#include <algorithm>

#include "memory/footprint.h"
#include "memory/kv_cache.h"
#include "util/units.h"

namespace optimus {
namespace lint {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    throw ModelError("unknown lint severity");
}

void
LintReport::add(Severity severity, std::string rule_id,
                std::string message, std::string hint)
{
    diags_.push_back({severity, std::move(rule_id), std::move(message),
                      std::move(hint)});
}

void
LintReport::error(std::string rule_id, std::string message,
                  std::string hint)
{
    add(Severity::Error, std::move(rule_id), std::move(message),
        std::move(hint));
}

void
LintReport::warning(std::string rule_id, std::string message,
                    std::string hint)
{
    add(Severity::Warning, std::move(rule_id), std::move(message),
        std::move(hint));
}

void
LintReport::merge(const LintReport &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

size_t
LintReport::errorCount() const
{
    return static_cast<size_t>(
        std::count_if(diags_.begin(), diags_.end(),
                      [](const Diagnostic &d) {
                          return d.severity == Severity::Error;
                      }));
}

size_t
LintReport::warningCount() const
{
    return diags_.size() - errorCount();
}

bool
LintReport::has(const std::string &rule_id) const
{
    return std::any_of(diags_.begin(), diags_.end(),
                       [&](const Diagnostic &d) {
                           return d.ruleId == rule_id;
                       });
}

std::string
LintReport::summary() const
{
    const size_t e = errorCount();
    const size_t w = warningCount();
    std::string out = std::to_string(e) +
                      (e == 1 ? " error, " : " errors, ") +
                      std::to_string(w) +
                      (w == 1 ? " warning" : " warnings");
    return out;
}

std::string
LintReport::joinedMessages() const
{
    // Error-severity findings are the reason a LintError is thrown;
    // list them first (warnings only when nothing erred).
    std::string out;
    auto append = [&](const Diagnostic &d) {
        if (!out.empty())
            out += "; ";
        out += "[" + d.ruleId + "] " + d.message;
    };
    for (const Diagnostic &d : diags_)
        if (d.severity == Severity::Error)
            append(d);
    if (out.empty())
        for (const Diagnostic &d : diags_)
            append(d);
    return out;
}

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {kRuleTpHeads, Severity::Error,
         "TP degree must divide the attention head count"},
        {kRuleTrainMemory, Severity::Error,
         "static training footprint exceeds per-device memory"},
        {kRuleFewMicrobatches, Severity::Warning,
         "fewer microbatches than pipeline stages (bubble-bound)"},
        {kRuleSuspiciousUnits, Severity::Warning,
         "magnitude suggests a unit mix-up (GB vs GiB vs Gb)"},
        {kRulePrecisionSupport, Severity::Error,
         "compute precision unsupported by the device matrix engine"},
        {kRuleTpFfn, Severity::Error,
         "TP degree must divide the FFN hidden width"},
        {kRuleDeviceCount, Severity::Error,
         "mapping device count does not match the system"},
        {kRuleTpSpansNodes, Severity::Error,
         "TP group spans nodes (Megatron convention: stay in-node)"},
        {kRuleLayersPerStage, Severity::Error,
         "layers must divide evenly over pipeline stages"},
        {kRuleInterleaveSchedule, Severity::Error,
         "interleaved stages require the interleaved schedule"},
        {kRuleExpertParallel, Severity::Error,
         "expert-parallel constraints violated"},
        {kRuleBatchVsDp, Severity::Error,
         "global batch must divide by the DP degree"},
        {kRuleMicrobatchDivides, Severity::Error,
         "per-pipeline batch must divide by the microbatch size"},
        {kRuleTpKvHeads, Severity::Warning,
         "TP degree does not divide the KV head count (GQA waste)"},
        {kRuleInferMemory, Severity::Error,
         "weights + KV cache exceed the devices' memory budget"},
        {kRuleSequenceLength, Severity::Warning,
         "requested context exceeds the model's trained maximum"},
        {kRuleKvPrecision, Severity::Warning,
         "KV-cache precision has no native device support"},
        {kRuleModelStructure, Severity::Error,
         "model description violates a structural invariant"},
        {kRuleSystemStructure, Severity::Error,
         "system description violates a structural invariant"},
        {kRuleMappingPositive, Severity::Error,
         "parallelization degrees and batch sizes must be positive"},
        {kRuleSeqVsContextParallel, Severity::Error,
         "sequence length must divide by the context-parallel degree"},
    };
    return catalog;
}

namespace {

std::string
str(long long v)
{
    return std::to_string(v);
}

/** Emit OPT-CFG-020 for every non-positive field; true if any fired. */
bool
checkMappingPositive(const ParallelConfig &par, long long global_batch,
                     LintReport &report)
{
    const struct { const char *name; long long value; } fields[] = {
        {"dataParallel", par.dataParallel},
        {"tensorParallel", par.tensorParallel},
        {"pipelineParallel", par.pipelineParallel},
        {"microbatchSize", par.microbatchSize},
        {"interleavedStages", par.interleavedStages},
        {"expertParallel", par.expertParallel},
        {"contextParallel", par.contextParallel},
        {"global batch", global_batch},
    };
    bool fired = false;
    for (const auto &f : fields) {
        if (f.value <= 0) {
            report.error(kRuleMappingPositive,
                         std::string(f.name) + " must be positive, got " +
                             str(f.value));
            fired = true;
        }
    }
    return fired;
}

} // namespace

LintReport
lintModel(const TransformerConfig &cfg)
{
    // Mirrors TransformerConfig::validate(), but aggregates every
    // violation under OPT-CFG-018 instead of throwing on the first.
    LintReport report;
    const std::string name = cfg.name.empty() ? "<model>" : cfg.name;
    if (cfg.name.empty())
        report.error(kRuleModelStructure, "model needs a name");

    const struct { const char *field; long long value; } fields[] = {
        {"numLayers", cfg.numLayers},     {"hiddenSize", cfg.hiddenSize},
        {"numHeads", cfg.numHeads},       {"numKvHeads", cfg.numKvHeads},
        {"ffnHidden", cfg.ffnHidden},     {"vocabSize", cfg.vocabSize},
        {"maxSeqLength", cfg.maxSeqLength},
        {"numExperts", cfg.numExperts},   {"topK", cfg.topK},
    };
    for (const auto &f : fields) {
        if (f.value <= 0)
            report.error(kRuleModelStructure,
                         name + ": " + f.field +
                             " must be positive, got " + str(f.value));
    }

    if (cfg.numHeads > 0 && cfg.hiddenSize % cfg.numHeads != 0)
        report.error(kRuleModelStructure,
                     name + ": hiddenSize (" + str(cfg.hiddenSize) +
                         ") must divide evenly into " +
                         str(cfg.numHeads) + " heads");
    if (cfg.numKvHeads > cfg.numHeads)
        report.error(kRuleModelStructure,
                     name + ": numKvHeads (" + str(cfg.numKvHeads) +
                         ") cannot exceed numHeads (" +
                         str(cfg.numHeads) + ")");
    else if (cfg.numKvHeads > 0 && cfg.numHeads % cfg.numKvHeads != 0)
        report.error(kRuleModelStructure,
                     name + ": numHeads must be a multiple of "
                            "numKvHeads");
    if (cfg.topK > cfg.numExperts)
        report.error(kRuleModelStructure,
                     name + ": topK (" + str(cfg.topK) +
                         ") cannot exceed numExperts (" +
                         str(cfg.numExperts) + ")");
    if (cfg.numExperts <= 1 && cfg.topK != 1)
        report.error(kRuleModelStructure,
                     name + ": dense models route every token to the "
                            "single FFN (topK must be 1)");
    if (cfg.slidingWindow < 0)
        report.error(kRuleModelStructure,
                     name + ": slidingWindow must be non-negative");
    return report;
}

LintReport
lintSystem(const System &sys)
{
    LintReport report;
    if (sys.devicesPerNode <= 0)
        report.error(kRuleSystemStructure,
                     "devicesPerNode must be positive, got " +
                         str(sys.devicesPerNode));
    if (sys.numNodes <= 0)
        report.error(kRuleSystemStructure,
                     "numNodes must be positive, got " +
                         str(sys.numNodes));

    // Deep component checks reuse the components' own validators;
    // a failure in one component does not mask the others.
    bool device_ok = true;
    try {
        sys.device.validate();
    } catch (const ConfigError &e) {
        device_ok = false;
        report.error(kRuleSystemStructure, e.what());
    }
    for (const NetworkLink *link : {&sys.intraLink, &sys.interLink}) {
        try {
            link->validate();
        } catch (const ConfigError &e) {
            report.error(kRuleSystemStructure, e.what());
        }
    }

    // Unit-sanity heuristics (OPT-UNIT-004). The library stores bytes
    // and bytes/s; the classic mistakes are a raw vendor number with
    // no multiplier ("bandwidth": 400 meaning GB/s) and bit-rates
    // quoted as byte-rates. Magnitudes far outside the plausible
    // hardware range almost always mean one of those.
    if (device_ok) {
        const MemoryLevel &dram = sys.device.dram();
        if (dram.capacity < 1.0 * GiB)
            report.warning(
                kRuleSuspiciousUnits,
                sys.device.name + ": DRAM capacity is only " +
                    formatBytes(dram.capacity),
                "capacities are bytes; write `80 * GiB`, not `80`");
        else if (dram.capacity > 100.0 * TB)
            report.warning(
                kRuleSuspiciousUnits,
                sys.device.name + ": DRAM capacity of " +
                    formatBytes(dram.capacity) +
                    " exceeds any shipping accelerator",
                "check for a doubled multiplier (GiB vs GB)");
        if (dram.bandwidth < 1.0 * GBps)
            report.warning(
                kRuleSuspiciousUnits,
                sys.device.name + ": DRAM bandwidth is only " +
                    formatBandwidth(dram.bandwidth),
                "bandwidths are bytes/s; write `2 * TBps` or use the "
                "Gbps helper for bit-rates");
        else if (dram.bandwidth > 1000.0 * TBps)
            report.warning(kRuleSuspiciousUnits,
                           sys.device.name + ": DRAM bandwidth of " +
                               formatBandwidth(dram.bandwidth) +
                               " is beyond any HBM roadmap",
                           "check for a bits-vs-bytes mix-up");
    }
    for (const NetworkLink *link : {&sys.intraLink, &sys.interLink}) {
        if (link->bandwidth <= 0.0)
            continue;  // structural error already reported
        if (link->bandwidth < 0.1 * GBps)
            report.warning(
                kRuleSuspiciousUnits,
                link->name + ": link bandwidth is only " +
                    formatBandwidth(link->bandwidth),
                "vendors quote links in Gb/s; write `400 * Gbps` "
                "(= 50 GB/s), not `400`");
        else if (link->bandwidth > 50.0 * TBps)
            report.warning(
                kRuleSuspiciousUnits,
                link->name + ": link bandwidth of " +
                    formatBandwidth(link->bandwidth) +
                    " exceeds any interconnect",
                "check for a bits-vs-bytes mix-up (Gb/s vs GB/s)");
    }
    return report;
}

LintReport
lintMapping(const TransformerConfig &cfg, const System &sys,
            const ParallelConfig &par, long long global_batch)
{
    LintReport report;
    if (checkMappingPositive(par, global_batch, report))
        return report;  // divisibility math below needs positives

    if (par.totalDevices() != sys.totalDevices())
        report.error(kRuleDeviceCount,
                     "mapping needs " + str(par.totalDevices()) +
                         " devices (DP*CP*TP*PP), system has " +
                         str(sys.totalDevices()),
                     "adjust the degrees or the node count so "
                     "DP*CP*TP*PP matches the system");
    if (par.tensorParallel > sys.devicesPerNode)
        report.error(kRuleTpSpansNodes,
                     "TP degree " + str(par.tensorParallel) +
                         " exceeds the " + str(sys.devicesPerNode) +
                         " devices of a node",
                     "keep TP within a node (Megatron convention); "
                     "use PP or DP across nodes");
    if (cfg.numHeads % par.tensorParallel != 0)
        report.error(kRuleTpHeads,
                     str(cfg.numHeads) +
                         " attention heads do not divide by TP degree " +
                         str(par.tensorParallel),
                     "pick a TP degree that divides the head count");
    if (cfg.ffnHidden % par.tensorParallel != 0)
        report.error(kRuleTpFfn,
                     "FFN width " + str(cfg.ffnHidden) +
                         " does not divide by TP degree " +
                         str(par.tensorParallel),
                     "pick a TP degree that divides ffnHidden");
    if (par.tensorParallel > 1 &&
        cfg.numKvHeads % par.tensorParallel != 0)
        report.warning(kRuleTpKvHeads,
                       str(cfg.numKvHeads) +
                           " KV heads do not divide by TP degree " +
                           str(par.tensorParallel) +
                           "; KV projections will be replicated",
                       "for GQA models keep TP <= numKvHeads or a "
                       "divisor of it");

    const long long stages =
        par.pipelineParallel * par.interleavedStages;
    if (cfg.numLayers % stages != 0)
        report.error(kRuleLayersPerStage,
                     str(cfg.numLayers) +
                         " layers do not divide by PP*interleave (" +
                         str(par.pipelineParallel) + "*" +
                         str(par.interleavedStages) + " = " +
                         str(stages) + ")",
                     "choose PP and interleave so every stage gets "
                     "the same number of layers");
    if (par.interleavedStages > 1 &&
        par.schedule != PipelineSchedule::Interleaved1F1B)
        report.error(kRuleInterleaveSchedule,
                     "interleavedStages = " +
                         str(par.interleavedStages) +
                         " requires the interleaved schedule, got " +
                         scheduleName(par.schedule),
                     "set schedule = \"interleaved\"");

    if (par.expertParallel > 1) {
        if (!cfg.isMoe())
            report.error(kRuleExpertParallel,
                         "expert parallelism (EP = " +
                             str(par.expertParallel) +
                             ") requires a MoE model; " + cfg.name +
                             " is dense",
                         "set expertParallel = 1 for dense models");
        else if (cfg.numExperts % par.expertParallel != 0)
            report.error(kRuleExpertParallel,
                         str(cfg.numExperts) +
                             " experts do not divide by EP degree " +
                             str(par.expertParallel));
        if (par.dataParallel % par.expertParallel != 0)
            report.error(kRuleExpertParallel,
                         "EP shards the data-parallel dimension; DP (" +
                             str(par.dataParallel) +
                             ") must divide by EP (" +
                             str(par.expertParallel) + ")");
    }

    if (global_batch % par.dataParallel != 0) {
        report.error(kRuleBatchVsDp,
                     "global batch " + str(global_batch) +
                         " does not divide by DP degree " +
                         str(par.dataParallel),
                     "pick a global batch that is a multiple of DP");
    } else {
        const long long per_pipeline =
            global_batch / par.dataParallel;
        if (per_pipeline % par.microbatchSize != 0) {
            report.error(kRuleMicrobatchDivides,
                         "per-pipeline batch " + str(per_pipeline) +
                             " does not divide by microbatch size " +
                             str(par.microbatchSize));
        } else if (par.pipelineParallel > 1) {
            const long long m = per_pipeline / par.microbatchSize;
            if (m < par.pipelineParallel)
                report.warning(
                    kRuleFewMicrobatches,
                    str(m) + " microbatches feed " +
                        str(par.pipelineParallel) +
                        " pipeline stages; the bubble dominates",
                    "raise the global batch or shrink the microbatch "
                    "size so microbatches >= PP");
        }
    }
    return report;
}

LintReport
lintTraining(const TransformerConfig &cfg, const System &sys,
             const ParallelConfig &par, long long global_batch,
             const TrainingOptions &opts)
{
    LintReport report = lintModel(cfg);
    report.merge(lintSystem(sys));
    const bool structure_ok = !report.hasErrors();
    if (structure_ok)
        report.merge(lintMapping(cfg, sys, par, global_batch));

    if (structure_ok &&
        !sys.device.supportsMatrix(opts.precision))
        report.error(kRulePrecisionSupport,
                     sys.device.name +
                         " has no matrix-engine path for " +
                         precisionName(opts.precision),
                     "pick a supported precision (see the device's "
                     "matrixThroughput table)");
    if (opts.seqLength > 0 && opts.seqLength > cfg.maxSeqLength)
        report.warning(kRuleSequenceLength,
                       "training sequence length " +
                           str(opts.seqLength) +
                           " exceeds the model's maxSeqLength " +
                           str(cfg.maxSeqLength),
                       "extend maxSeqLength (position embeddings) or "
                       "shorten the sequences");
    if (structure_ok && opts.seqLength > 0 &&
        opts.seqLength % par.contextParallel != 0)
        report.error(kRuleSeqVsContextParallel,
                     "sequence length " + str(opts.seqLength) +
                         " does not divide by CP degree " +
                         str(par.contextParallel));

    // The footprint is only meaningful once the mapping itself is
    // legal; an illegal shard has no well-defined per-device memory.
    if (!report.hasErrors()) {
        const TrainingMemory mem = trainingMemoryPerDevice(
            cfg, par, global_batch, opts.seqLength, opts.recompute,
            opts.memory);
        const double capacity = sys.device.dram().capacity;
        if (mem.total() > capacity)
            report.error(
                kRuleTrainMemory,
                "static footprint " + formatBytes(mem.total()) +
                    " (weights " + formatBytes(mem.weights) +
                    ", grads " + formatBytes(mem.gradients) +
                    ", optimizer " + formatBytes(mem.optimizer) +
                    ", activations " + formatBytes(mem.activations) +
                    ") exceeds " + formatBytes(capacity) + " of " +
                    sys.device.name,
                "raise TP/PP, enable recomputation or sequence "
                "parallelism, or use ZeRO sharding");
    }
    return report;
}

LintReport
lintInferenceMapping(const TransformerConfig &cfg, const System &sys,
                     const InferenceOptions &opts)
{
    LintReport report;
    const struct { const char *name; long long value; } fields[] = {
        {"tensorParallel", opts.tensorParallel},
        {"pipelineParallel", opts.pipelineParallel},
        {"batch", opts.batch},
        {"promptLength", opts.promptLength},
        {"generateLength", opts.generateLength},
    };
    for (const auto &f : fields)
        if (f.value <= 0)
            report.error(kRuleMappingPositive,
                         std::string(f.name) +
                             " must be positive, got " + str(f.value));
    if (report.hasErrors())
        return report;

    const long long devices =
        opts.tensorParallel * opts.pipelineParallel;
    if (devices > sys.totalDevices())
        report.error(kRuleDeviceCount,
                     "inference mapping needs " + str(devices) +
                         " devices (TP*PP), system has " +
                         str(sys.totalDevices()));
    if (cfg.numHeads % opts.tensorParallel != 0)
        report.error(kRuleTpHeads,
                     str(cfg.numHeads) +
                         " attention heads do not divide by TP degree " +
                         str(opts.tensorParallel),
                     "pick a TP degree that divides the head count");
    if (cfg.ffnHidden % opts.tensorParallel != 0)
        report.error(kRuleTpFfn,
                     "FFN width " + str(cfg.ffnHidden) +
                         " does not divide by TP degree " +
                         str(opts.tensorParallel));
    if (opts.tensorParallel > 1 &&
        cfg.numKvHeads % opts.tensorParallel != 0)
        report.warning(kRuleTpKvHeads,
                       str(cfg.numKvHeads) +
                           " KV heads do not divide by TP degree " +
                           str(opts.tensorParallel) +
                           "; the KV cache will be replicated",
                       "keep TP <= numKvHeads or a divisor of it");
    if (cfg.numLayers % opts.pipelineParallel != 0)
        report.error(kRuleLayersPerStage,
                     str(cfg.numLayers) +
                         " layers do not divide by PP degree " +
                         str(opts.pipelineParallel));

    if (!sys.device.supportsMatrix(opts.precision))
        report.error(kRulePrecisionSupport,
                     sys.device.name +
                         " has no matrix-engine path for " +
                         precisionName(opts.precision));
    if (opts.kvPrecision != opts.precision &&
        !sys.device.supportsMatrix(opts.kvPrecision))
        report.warning(kRuleKvPrecision,
                       sys.device.name + " has no native " +
                           precisionName(opts.kvPrecision) +
                           " path; the KV cache will be dequantized "
                           "on every read",
                       "expect the bandwidth saving but no compute "
                       "speedup");
    const long long context = opts.promptLength + opts.generateLength;
    if (context > cfg.maxSeqLength)
        report.warning(kRuleSequenceLength,
                       "prompt + generation = " + str(context) +
                           " tokens exceed the model's maxSeqLength " +
                           str(cfg.maxSeqLength),
                       "long-context quality degrades beyond the "
                       "trained window");
    return report;
}

LintReport
lintInference(const TransformerConfig &cfg, const System &sys,
              const InferenceOptions &opts)
{
    LintReport report = lintModel(cfg);
    report.merge(lintSystem(sys));
    if (!report.hasErrors())
        report.merge(lintInferenceMapping(cfg, sys, opts));

    if (!report.hasErrors()) {
        // Mirrors the engine's fitsDeviceMemory accounting.
        const long long context =
            opts.promptLength + opts.generateLength;
        const double weights = modelWeightBytes(cfg, opts.precision);
        const double kv = kvCacheBytes(cfg, opts.batch, context,
                                       opts.kvPrecision);
        const double per_device =
            (weights + kv) /
            double(opts.tensorParallel * opts.pipelineParallel);
        const double capacity = sys.device.dram().capacity;
        if (per_device > capacity)
            report.error(
                kRuleInferMemory,
                "weights " + formatBytes(weights) + " + KV cache " +
                    formatBytes(kv) + " need " +
                    formatBytes(per_device) + " per device, " +
                    sys.device.name + " has " + formatBytes(capacity),
                "raise TP/PP, shrink the batch or context, or "
                "quantize the KV cache");
    }
    return report;
}

bool
isLegalMapping(const TransformerConfig &cfg, const System &sys,
               const ParallelConfig &par, long long global_batch)
{
    return !lintMapping(cfg, sys, par, global_batch).hasErrors();
}

bool
isLegalDevice(const Device &dev)
{
    try {
        dev.validate();
        return true;
    } catch (const ConfigError &) {
        return false;
    }
}

void
enforce(const LintReport &report)
{
    if (report.hasErrors())
        throw LintError(report);
}

Table
diagnosticsTable(const LintReport &report)
{
    Table out({"Severity", "Rule", "Message", "Hint"});
    for (const Diagnostic &d : report.diagnostics()) {
        out.beginRow()
            .cell(severityName(d.severity))
            .cell(d.ruleId)
            .cell(d.message)
            .cell(d.hint.empty() ? "-" : d.hint);
        out.endRow();
    }
    return out;
}

} // namespace lint
} // namespace optimus
