/**
 * @file
 * Rule-based static validation of (model, system, mapping) triples.
 *
 * The paper's value proposition is predicting *before* running; a
 * mapping that is illegal (heads not divisible by TP, KV cache
 * overflowing HBM, fewer microbatches than pipeline stages) should be
 * rejected by analysis, not discovered as a nonsense number. The lint
 * engine inspects a bound configuration without evaluating it and
 * emits every applicable diagnostic in one pass — unlike the
 * first-throw checkConfig() style, a single run reports the full list
 * of problems. Each rule has a stable identifier (OPT-PAR-001, ...)
 * catalogued in docs/DIAGNOSTICS.md.
 *
 * The legacy validate() entry points now route through this engine:
 * they throw LintError (a ConfigError carrying the complete report)
 * when any error-severity diagnostic fires.
 */

#ifndef OPTIMUS_LINT_LINT_H
#define OPTIMUS_LINT_LINT_H

#include <string>
#include <vector>

#include "inference/engine.h"
#include "training/trainer.h"
#include "util/error.h"
#include "util/table.h"

namespace optimus {
namespace lint {

/** How bad a diagnostic is. */
enum class Severity {
    Warning,  ///< legal but almost certainly not what you want
    Error,    ///< the configuration cannot run / cannot be trusted
};

/** Human-readable severity name ("warning" / "error"). */
const char *severityName(Severity s);

/** One finding of the static analyzer. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    std::string ruleId;   ///< stable identifier, e.g. "OPT-PAR-001"
    std::string message;  ///< what is wrong, with the offending values
    std::string hint;     ///< how to fix it (may be empty)
};

/** Aggregated result of a lint pass. */
class LintReport
{
  public:
    /** Append a diagnostic. */
    void add(Severity severity, std::string rule_id,
             std::string message, std::string hint = "");
    /** Append an error-severity diagnostic. */
    void error(std::string rule_id, std::string message,
               std::string hint = "");
    /** Append a warning-severity diagnostic. */
    void warning(std::string rule_id, std::string message,
                 std::string hint = "");
    /** Append every diagnostic of @p other. */
    void merge(const LintReport &other);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diags_;
    }
    bool empty() const { return diags_.empty(); }
    bool hasErrors() const { return errorCount() > 0; }
    size_t errorCount() const;
    size_t warningCount() const;
    /** True if a diagnostic with @p rule_id is present. */
    bool has(const std::string &rule_id) const;

    /** One-line synopsis, e.g. "2 errors, 1 warning". */
    std::string summary() const;
    /** Every message joined with "; " (error-severity first). */
    std::string joinedMessages() const;

  private:
    std::vector<Diagnostic> diags_;
};

// ---- Rule catalog ------------------------------------------------------

/** Static description of one lint rule. */
struct RuleInfo
{
    const char *id;
    Severity severity;
    const char *summary;
};

/** Every rule the engine can emit, for docs and tests. */
const std::vector<RuleInfo> &ruleCatalog();

// Stable rule identifiers (see docs/DIAGNOSTICS.md for the catalog).
inline constexpr char kRuleTpHeads[] = "OPT-PAR-001";
inline constexpr char kRuleTrainMemory[] = "OPT-MEM-002";
inline constexpr char kRuleFewMicrobatches[] = "OPT-SCHED-003";
inline constexpr char kRuleSuspiciousUnits[] = "OPT-UNIT-004";
inline constexpr char kRulePrecisionSupport[] = "OPT-PREC-005";
inline constexpr char kRuleTpFfn[] = "OPT-PAR-006";
inline constexpr char kRuleDeviceCount[] = "OPT-PAR-007";
inline constexpr char kRuleTpSpansNodes[] = "OPT-PAR-008";
inline constexpr char kRuleLayersPerStage[] = "OPT-SCHED-009";
inline constexpr char kRuleInterleaveSchedule[] = "OPT-SCHED-010";
inline constexpr char kRuleExpertParallel[] = "OPT-PAR-011";
inline constexpr char kRuleBatchVsDp[] = "OPT-PAR-012";
inline constexpr char kRuleMicrobatchDivides[] = "OPT-PAR-013";
inline constexpr char kRuleTpKvHeads[] = "OPT-PAR-014";
inline constexpr char kRuleInferMemory[] = "OPT-MEM-015";
inline constexpr char kRuleSequenceLength[] = "OPT-SEQ-016";
inline constexpr char kRuleKvPrecision[] = "OPT-PREC-017";
inline constexpr char kRuleModelStructure[] = "OPT-CFG-018";
inline constexpr char kRuleSystemStructure[] = "OPT-CFG-019";
inline constexpr char kRuleMappingPositive[] = "OPT-CFG-020";
inline constexpr char kRuleSeqVsContextParallel[] = "OPT-PAR-021";

// ---- Lint passes -------------------------------------------------------

/** Structural invariants of a model description (OPT-CFG-018). */
LintReport lintModel(const TransformerConfig &cfg);

/**
 * Structural invariants of a system description (OPT-CFG-019) plus
 * unit-sanity heuristics (OPT-UNIT-004: a bandwidth or capacity whose
 * magnitude suggests a missing multiplier or a bytes-vs-bits mix-up).
 */
LintReport lintSystem(const System &sys);

/**
 * A training parallelization mapping against a model and system:
 * divisibility, device counts, schedule legality, microbatch math.
 * Assumes @p cfg and @p sys are themselves structurally valid.
 */
LintReport lintMapping(const TransformerConfig &cfg, const System &sys,
                       const ParallelConfig &par,
                       long long global_batch);

/**
 * Full training-scenario lint: model + system + mapping plus the
 * option-dependent rules (precision support, sequence length, static
 * memory footprint vs device HBM).
 */
LintReport lintTraining(const TransformerConfig &cfg, const System &sys,
                        const ParallelConfig &par,
                        long long global_batch,
                        const TrainingOptions &opts = {});

/**
 * Inference-mapping rules only (no memory-fit check): TP divisibility,
 * device budget, precision support, context length.
 */
LintReport lintInferenceMapping(const TransformerConfig &cfg,
                                const System &sys,
                                const InferenceOptions &opts);

/**
 * Full inference-scenario lint: model + system + mapping plus the
 * weights+KV-cache memory budget (OPT-MEM-015).
 */
LintReport lintInference(const TransformerConfig &cfg, const System &sys,
                         const InferenceOptions &opts);

// ---- Search-loop helpers ----------------------------------------------

/**
 * Fast legality pre-filter for mapping enumeration (the planner / DSE
 * inner loops): true iff lintMapping() emits no error. Does not build
 * a Scenario, estimate memory, or evaluate anything.
 */
bool isLegalMapping(const TransformerConfig &cfg, const System &sys,
                    const ParallelConfig &par, long long global_batch);

/** True iff @p dev passes structural validation (DSE pre-filter). */
bool isLegalDevice(const Device &dev);

// ---- Reporting ---------------------------------------------------------

/** Throw LintError when @p report contains any error diagnostic. */
void enforce(const LintReport &report);

/** Render a report as a printable table (severity/rule/message/hint). */
Table diagnosticsTable(const LintReport &report);

} // namespace lint

/**
 * A ConfigError that carries the complete lint report instead of just
 * the first failing check. Catch sites expecting ConfigError keep
 * working; new code can recover every diagnostic via report().
 */
class LintError : public ConfigError
{
  public:
    explicit LintError(lint::LintReport report)
        : ConfigError(report.joinedMessages()), report_(std::move(report))
    {}

    const lint::LintReport &report() const { return report_; }

  private:
    lint::LintReport report_;
};

} // namespace optimus

#endif // OPTIMUS_LINT_LINT_H
