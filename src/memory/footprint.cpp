#include "memory/footprint.h"

#include "parallel/pipeline.h"
#include "util/error.h"

namespace optimus {

double
TrainingMemory::total() const
{
    return weights + gradients + optimizer + activations;
}

double
parametersPerDevice(const TransformerConfig &cfg,
                    const ParallelConfig &par)
{
    double layers_local =
        double(cfg.numLayers) / double(par.pipelineParallel);
    // Attention (and router) replicate across EP; the experts shard.
    double layer_params =
        (cfg.attentionParameterCount() +
         double(cfg.numExperts) * cfg.expertParameterCount() /
             double(par.expertParallel)) /
        double(par.tensorParallel);
    // The first stage also holds the (TP-sharded) embedding table.
    double embedding =
        cfg.embeddingParameterCount() / double(par.tensorParallel);
    return layers_local * layer_params + embedding;
}

TrainingMemory
trainingMemoryPerDevice(const TransformerConfig &cfg,
                        const ParallelConfig &par,
                        long long global_batch, long long seq,
                        Recompute recompute, const MemoryOptions &opts)
{
    cfg.validate();
    checkPositive(global_batch, "global batch");
    checkPositive(seq, "seq");

    checkConfig(opts.zeroStage >= 0 && opts.zeroStage <= 3,
                "zeroStage must be 0..3");

    TrainingMemory mem;
    double params = parametersPerDevice(cfg, par);
    double dp = double(par.dataParallel);
    mem.weights = params * opts.weightBytes /
                  (opts.zeroStage >= 3 ? dp : 1.0);
    mem.gradients = params * opts.gradientBytes /
                    (opts.zeroStage >= 2 ? dp : 1.0);
    mem.optimizer = params * opts.optimizerBytesPerParam /
                    (opts.zeroStage >= 1 ? dp : 1.0);

    checkConfig(seq % par.contextParallel == 0,
                "sequence length must divide by the CP degree");
    ActivationParams ap;
    ap.microbatch = par.microbatchSize;
    ap.seq = seq / par.contextParallel;
    ap.tensorParallel = par.tensorParallel;
    ap.sequenceParallel = par.sequenceParallel;
    ap.activationBytes = opts.activationBytes;
    ap.flashAttention = opts.flashAttention;

    long long layers_local = cfg.numLayers / par.pipelineParallel;
    long long m = par.microbatches(global_batch);
    PipelineCost pc = pipelineCost(par.schedule, par.pipelineParallel,
                                   m, par.interleavedStages);

    if (recompute == Recompute::Full) {
        // Every in-flight microbatch keeps only its checkpoints; the
        // working set of Eq. 1's second term exists once, for the
        // microbatch currently running backward.
        ActivationBreakdown br = layerActivations(cfg, ap);
        double checkpoints =
            double(layers_local) * br.input * pc.inflightMicrobatches;
        double working = br.total() - br.input;
        mem.activations = checkpoints + working;
    } else {
        double per_microbatch =
            activationMemory(cfg, ap, layers_local, recompute);
        mem.activations = per_microbatch * pc.inflightMicrobatches;
    }
    return mem;
}

} // namespace optimus
