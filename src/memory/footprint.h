/**
 * @file
 * Per-device training memory footprint (paper Sec. 5.1 / Fig. 4):
 * model weights, gradients, optimizer states and activations under a
 * given parallelization mapping and recomputation strategy.
 */

#ifndef OPTIMUS_MEMORY_FOOTPRINT_H
#define OPTIMUS_MEMORY_FOOTPRINT_H

#include "parallel/config.h"
#include "workload/activation.h"
#include "workload/model_config.h"

namespace optimus {

/** Byte costs per parameter for mixed-precision Adam training. */
struct MemoryOptions
{
    double weightBytes = 2.0;     ///< fp16/bf16 working weights
    double gradientBytes = 2.0;   ///< fp16 gradients
    /** fp32 master copy + momentum + variance. */
    double optimizerBytesPerParam = 12.0;
    double activationBytes = 2.0;

    /**
     * ZeRO-style sharding over the data-parallel group (Megatron's
     * distributed optimizer is stage 1): stage 1 shards optimizer
     * states, stage 2 also gradients, stage 3 also the weights
     * (which then must be all-gathered around each use).
     */
    int zeroStage = 0;

    /** Use FlashAttention's activation accounting. */
    bool flashAttention = false;
};

/** Per-device training memory breakdown, bytes. */
struct TrainingMemory
{
    double weights = 0.0;
    double gradients = 0.0;
    double optimizer = 0.0;
    double activations = 0.0;

    double total() const;
};

/** Parameters resident on the worst (embedding-holding) stage. */
double parametersPerDevice(const TransformerConfig &cfg,
                           const ParallelConfig &par);

/**
 * Memory footprint of the worst device for training @p cfg with
 * global batch @p global_batch and sequence length @p seq.
 */
TrainingMemory trainingMemoryPerDevice(const TransformerConfig &cfg,
                                       const ParallelConfig &par,
                                       long long global_batch,
                                       long long seq,
                                       Recompute recompute,
                                       const MemoryOptions &opts = {});

} // namespace optimus

#endif // OPTIMUS_MEMORY_FOOTPRINT_H
