#include "memory/kv_cache.h"

#include "util/error.h"

namespace optimus {

double
kvCacheBytes(const TransformerConfig &cfg, long long batch,
             long long context, Precision precision)
{
    cfg.validate();
    checkPositive(batch, "batch");
    checkPositive(context, "context");
    double kv_width = double(cfg.numKvHeads) * double(cfg.headDim());
    // Sliding-window attention caps the cache at the window size.
    double kept = double(cfg.attentionSpan(context));
    return 2.0 * double(batch) * kept * precisionBytes(precision) *
           double(cfg.numLayers) * kv_width;
}

double
modelWeightBytes(const TransformerConfig &cfg, Precision precision)
{
    cfg.validate();
    return cfg.parameterCount() * precisionBytes(precision);
}

bool
inferenceFits(const TransformerConfig &cfg, long long batch,
              long long context, Precision precision,
              long long tensor_parallel, double capacity)
{
    checkPositive(tensor_parallel, "tensorParallel");
    checkPositive(capacity, "device capacity");
    double per_device =
        (modelWeightBytes(cfg, precision) +
         kvCacheBytes(cfg, batch, context, precision)) /
        double(tensor_parallel);
    return per_device <= capacity;
}

} // namespace optimus
