/**
 * @file
 * KV-cache and weight memory for inference (paper Sec. 3.5):
 *   KV bytes = 2 * batch * context * precision * layers * kv_width
 * where kv_width generalizes the embedding dimension to grouped-query
 * attention (numKvHeads * headDim).
 */

#ifndef OPTIMUS_MEMORY_KV_CACHE_H
#define OPTIMUS_MEMORY_KV_CACHE_H

#include "hw/precision.h"
#include "workload/model_config.h"

namespace optimus {

/** Total KV-cache bytes for @p batch sequences of @p context tokens. */
double kvCacheBytes(const TransformerConfig &cfg, long long batch,
                    long long context, Precision precision);

/** Total model weight bytes at @p precision. */
double modelWeightBytes(const TransformerConfig &cfg,
                        Precision precision);

/**
 * Device-memory check for inference: weights + KV cache sharded over
 * @p tensor_parallel devices must fit @p capacity bytes.
 */
bool inferenceFits(const TransformerConfig &cfg, long long batch,
                   long long context, Precision precision,
                   long long tensor_parallel, double capacity);

} // namespace optimus

#endif // OPTIMUS_MEMORY_KV_CACHE_H
