#include "parallel/config.h"

#include "util/error.h"

namespace optimus {

const char *
scheduleName(PipelineSchedule s)
{
    switch (s) {
      case PipelineSchedule::GPipe: return "gpipe";
      case PipelineSchedule::OneFOneB: return "1f1b";
      case PipelineSchedule::Interleaved1F1B: return "interleaved";
    }
    throw ModelError("unknown pipeline schedule");
}

long long
ParallelConfig::totalDevices() const
{
    return dataParallel * contextParallel * tensorParallel *
           pipelineParallel;
}

std::string
ParallelConfig::label() const
{
    return std::to_string(dataParallel) + "-" +
           std::to_string(tensorParallel) + "-" +
           std::to_string(pipelineParallel) + "-" +
           std::to_string(sequenceParallel ? tensorParallel : 1);
}

long long
ParallelConfig::microbatches(long long global_batch) const
{
    checkPositive(global_batch, "global batch");
    long long per_pipeline = global_batch / dataParallel;
    checkConfig(per_pipeline * dataParallel == global_batch,
                "global batch must divide by DP degree");
    long long m = per_pipeline / microbatchSize;
    checkConfig(m * microbatchSize == per_pipeline,
                "per-pipeline batch must divide by microbatch size");
    return m;
}

void
ParallelConfig::validate(const TransformerConfig &cfg, const System &sys,
                         long long global_batch) const
{
    checkPositive(dataParallel, "dataParallel");
    checkPositive(tensorParallel, "tensorParallel");
    checkPositive(pipelineParallel, "pipelineParallel");
    checkPositive(microbatchSize, "microbatchSize");
    checkPositive(interleavedStages, "interleavedStages");
    checkPositive(expertParallel, "expertParallel");
    checkPositive(contextParallel, "contextParallel");

    checkConfig(totalDevices() == sys.totalDevices(),
                "mapping needs " + std::to_string(totalDevices()) +
                " devices, system has " +
                std::to_string(sys.totalDevices()));
    checkConfig(tensorParallel <= sys.devicesPerNode,
                "TP must fit within a node (Megatron convention)");
    checkConfig(cfg.numHeads % tensorParallel == 0,
                "attention heads must divide by TP degree");
    checkConfig(cfg.ffnHidden % tensorParallel == 0,
                "FFN width must divide by TP degree");

    long long stages = pipelineParallel * interleavedStages;
    checkConfig(cfg.numLayers % stages == 0,
                "layers (" + std::to_string(cfg.numLayers) +
                ") must divide by PP*interleave (" +
                std::to_string(stages) + ")");

    if (schedule != PipelineSchedule::Interleaved1F1B)
        checkConfig(interleavedStages == 1,
                    "interleavedStages > 1 requires the interleaved "
                    "schedule");

    if (expertParallel > 1) {
        checkConfig(cfg.isMoe(),
                    "expert parallelism requires a MoE model");
        checkConfig(cfg.numExperts % expertParallel == 0,
                    "experts must divide by the EP degree");
        checkConfig(dataParallel % expertParallel == 0,
                    "EP shards the data-parallel dimension; DP must "
                    "divide by EP");
    }

    microbatches(global_batch);  // validates divisibility
}

} // namespace optimus
