#include "parallel/config.h"

#include "lint/lint.h"
#include "util/error.h"

namespace optimus {

const char *
scheduleName(PipelineSchedule s)
{
    switch (s) {
      case PipelineSchedule::GPipe: return "gpipe";
      case PipelineSchedule::OneFOneB: return "1f1b";
      case PipelineSchedule::Interleaved1F1B: return "interleaved";
    }
    throw ModelError("unknown pipeline schedule");
}

long long
ParallelConfig::totalDevices() const
{
    return dataParallel * contextParallel * tensorParallel *
           pipelineParallel;
}

std::string
ParallelConfig::label() const
{
    return std::to_string(dataParallel) + "-" +
           std::to_string(tensorParallel) + "-" +
           std::to_string(pipelineParallel) + "-" +
           std::to_string(sequenceParallel ? tensorParallel : 1);
}

long long
ParallelConfig::microbatches(long long global_batch) const
{
    checkPositive(global_batch, "global batch");
    long long per_pipeline = global_batch / dataParallel;
    checkConfig(per_pipeline * dataParallel == global_batch,
                "global batch must divide by DP degree");
    long long m = per_pipeline / microbatchSize;
    checkConfig(m * microbatchSize == per_pipeline,
                "per-pipeline batch must divide by microbatch size");
    return m;
}

void
ParallelConfig::validate(const TransformerConfig &cfg, const System &sys,
                         long long global_batch) const
{
    lint::enforce(lint::lintMapping(cfg, sys, *this, global_batch));
}

} // namespace optimus
