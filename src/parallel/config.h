/**
 * @file
 * Parallelization strategy description (paper Sec. 1.3 / 3.2): data,
 * tensor, pipeline and sequence parallelism plus the pipeline
 * schedule. Conventions follow Megatron-LM: TP (and SP) stay inside a
 * node; DP and PP span nodes.
 */

#ifndef OPTIMUS_PARALLEL_CONFIG_H
#define OPTIMUS_PARALLEL_CONFIG_H

#include <string>

#include "hw/system.h"
#include "workload/model_config.h"

namespace optimus {

/** Pipeline-parallel schedules modeled (Sec. 3.2). */
enum class PipelineSchedule {
    GPipe,            ///< all-forward then all-backward
    OneFOneB,         ///< PipeDream-Flush
    Interleaved1F1B,  ///< Megatron interleaved schedule
};

/** Name of a schedule ("gpipe", "1f1b", "interleaved"). */
const char *scheduleName(PipelineSchedule s);

/** A complete parallelization mapping. */
struct ParallelConfig
{
    long long dataParallel = 1;
    long long tensorParallel = 1;
    long long pipelineParallel = 1;
    bool sequenceParallel = false;
    PipelineSchedule schedule = PipelineSchedule::OneFOneB;

    /** Sequences per microbatch (Megatron's micro-batch-size). */
    long long microbatchSize = 1;

    /** Virtual pipeline stages per device (interleaved schedule). */
    long long interleavedStages = 1;

    /**
     * Expert-parallel degree for mixture-of-experts FFNs: experts
     * shard over this many devices of the data-parallel dimension
     * (Megatron convention), with an all-to-all dispatch/combine per
     * layer. Must divide both numExperts and dataParallel.
     */
    long long expertParallel = 1;

    /**
     * Context-parallel degree (ring attention over the sequence);
     * multiplies the device count like the other dimensions.
     */
    long long contextParallel = 1;

    /** Device count the mapping requires (DP * CP * TP * PP). */
    long long totalDevices() const;

    /** Compact label like "8-8-8-1" (DP-TP-PP-SPdegree). */
    std::string label() const;

    /** Microbatches each pipeline executes per global batch. */
    long long microbatches(long long global_batch) const;

    /** Validate against a model and system; throws ConfigError. */
    void validate(const TransformerConfig &cfg, const System &sys,
                  long long global_batch) const;
};

} // namespace optimus

#endif // OPTIMUS_PARALLEL_CONFIG_H
