#include "parallel/pipeline.h"

#include <algorithm>

#include "util/error.h"

namespace optimus {

PipelineCost
pipelineCost(PipelineSchedule schedule, long long pp,
             long long microbatches, long long v)
{
    checkPositive(pp, "pipeline stages");
    checkPositive(microbatches, "microbatches");
    checkPositive(v, "virtual stages");

    PipelineCost cost;
    const double p = double(pp);
    const double m = double(microbatches);

    if (pp == 1) {
        cost.bubbleFraction = 0.0;
        cost.inflightMicrobatches = (schedule == PipelineSchedule::GPipe)
                                        ? m : 1.0;
        cost.p2pPerMicrobatch = 0.0;
        return cost;
    }

    switch (schedule) {
      case PipelineSchedule::GPipe:
        cost.bubbleFraction = (p - 1.0) / m;
        // All microbatches' activations live until backward starts.
        cost.inflightMicrobatches = m;
        cost.p2pPerMicrobatch = 2.0;
        break;
      case PipelineSchedule::OneFOneB:
        cost.bubbleFraction = (p - 1.0) / m;
        // The first stage holds at most p microbatches.
        cost.inflightMicrobatches = std::min(m, p);
        cost.p2pPerMicrobatch = 2.0;
        break;
      case PipelineSchedule::Interleaved1F1B:
        // Bubble shrinks by the virtual-stage count; communication
        // grows with it (one send per virtual stage).
        cost.bubbleFraction = (p - 1.0) / (m * double(v));
        cost.inflightMicrobatches =
            std::min(m, p) * (1.0 + (p - 1.0) / (p * double(v)));
        cost.p2pPerMicrobatch = 2.0 * double(v);
        break;
    }
    return cost;
}

} // namespace optimus
