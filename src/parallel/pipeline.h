/**
 * @file
 * Pipeline-schedule cost model: bubble fractions and in-flight
 * activation counts for GPipe, PipeDream-Flush (1F1B) and Megatron's
 * interleaved 1F1B (paper Sec. 3.2).
 */

#ifndef OPTIMUS_PARALLEL_PIPELINE_H
#define OPTIMUS_PARALLEL_PIPELINE_H

#include "parallel/config.h"

namespace optimus {

/** Static cost properties of a pipeline schedule instance. */
struct PipelineCost
{
    /**
     * Idle (bubble) time as a fraction of the busy per-device time:
     * total = busy * (1 + bubbleFraction).
     */
    double bubbleFraction = 0.0;

    /**
     * Peak number of microbatches whose activations are resident on
     * the worst (first) stage.
     */
    double inflightMicrobatches = 1.0;

    /**
     * Point-to-point activations transfers per microbatch per stage
     * boundary (forward + backward); the interleaved schedule sends
     * once per virtual stage.
     */
    double p2pPerMicrobatch = 2.0;
};

/**
 * Evaluate the schedule for @p pp stages, @p microbatches per batch
 * and @p v virtual stages per device.
 */
PipelineCost pipelineCost(PipelineSchedule schedule, long long pp,
                          long long microbatches, long long v);

} // namespace optimus

#endif // OPTIMUS_PARALLEL_PIPELINE_H
