#include "parallel/schedule_sim.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"

namespace optimus {

namespace {

/** Work unit identifier on the virtual pipeline. */
struct Unit
{
    int chunk = 0;            ///< virtual stage index on this device
    long long microbatch = 0;
    bool backward = false;
};

/**
 * Megatron ordering of forward units for one device: microbatches in
 * groups of p, each group sweeping the device's chunks in ascending
 * order. Backward mirrors it with descending chunks.
 */
std::vector<Unit>
unitStream(int p, long long m, int v, bool backward)
{
    std::vector<Unit> out;
    out.reserve(static_cast<size_t>(m) * v);
    for (long long g = 0; g < m; g += p) {
        long long hi = std::min<long long>(m, g + p);
        for (int c = 0; c < v; ++c) {
            int chunk = backward ? v - 1 - c : c;
            for (long long i = g; i < hi; ++i)
                out.push_back({chunk, i, backward});
        }
    }
    return out;
}

/** Per-device execution order implementing the schedule. */
std::vector<Unit>
deviceOrder(const ScheduleSimParams &prm, int s)
{
    const int p = prm.stages;
    const int v = prm.virtualStages;
    const long long total = prm.microbatches * v;

    std::vector<Unit> fwd = unitStream(p, prm.microbatches, v, false);
    std::vector<Unit> bwd = unitStream(p, prm.microbatches, v, true);

    std::vector<Unit> order;
    order.reserve(2 * total);

    if (prm.schedule == PipelineSchedule::GPipe) {
        order.insert(order.end(), fwd.begin(), fwd.end());
        order.insert(order.end(), bwd.begin(), bwd.end());
        return order;
    }

    // 1F1B warmup depth (Megatron): deeper for earlier stages, plus
    // a full sweep of the extra virtual stages when interleaving.
    long long warmup = (v > 1)
                           ? (long long)(p - 1 - s) * 2 +
                                 (long long)(v - 1) * p
                           : (long long)(p - 1 - s);
    warmup = std::min(warmup, total);

    size_t fi = 0, bi = 0;
    for (long long k = 0; k < warmup; ++k)
        order.push_back(fwd[fi++]);
    while (fi < fwd.size()) {
        order.push_back(fwd[fi++]);
        order.push_back(bwd[bi++]);
    }
    while (bi < bwd.size())
        order.push_back(bwd[bi++]);
    return order;
}

} // namespace

ScheduleSimResult
simulatePipeline(const ScheduleSimParams &prm)
{
    checkPositive((long long)prm.stages, "stages");
    checkPositive(prm.microbatches, "microbatches");
    checkPositive((long long)prm.virtualStages, "virtualStages");
    checkPositive(prm.forwardTime, "forwardTime");
    checkPositive(prm.backwardTime, "backwardTime");
    checkConfig(prm.p2pTime >= 0.0, "p2pTime must be non-negative");
    checkConfig(prm.schedule == PipelineSchedule::Interleaved1F1B ||
                    prm.virtualStages == 1,
                "virtualStages > 1 requires the interleaved schedule");

    const int p = prm.stages;
    const int v = prm.virtualStages;
    const long long m = prm.microbatches;
    const int positions = p * v;  // virtual pipeline depth
    const double tf = prm.forwardTime / v;
    const double tb = prm.backwardTime / v;

    // end[dir][pos][mb] = completion time, or <0 if not yet run.
    auto idx = [&](int pos, long long i) {
        return static_cast<size_t>(pos) * m + i;
    };
    std::vector<double> fwd_end(static_cast<size_t>(positions) * m,
                                -1.0);
    std::vector<double> bwd_end(static_cast<size_t>(positions) * m,
                                -1.0);

    std::vector<std::vector<Unit>> orders;
    std::vector<size_t> cursor(p, 0);
    std::vector<double> device_time(p, 0.0);
    orders.reserve(p);
    for (int s = 0; s < p; ++s)
        orders.push_back(deviceOrder(prm, s));

    ScheduleSimResult result;
    result.events.reserve(static_cast<size_t>(positions) * m * 2);

    // Two directions x p devices x v chunks x m microbatches.
    long long remaining = 2LL * p * v * m;
    bool progress = true;
    while (remaining > 0) {
        checkConfig(progress,
                    "schedule deadlocked (internal ordering bug)");
        progress = false;
        for (int s = 0; s < p; ++s) {
            while (cursor[s] < orders[s].size()) {
                const Unit &u = orders[s][cursor[s]];
                // Device s runs virtual position s + chunk*p.
                int pos = s + u.chunk * p;
                double ready;
                if (!u.backward) {
                    if (pos == 0) {
                        ready = 0.0;
                    } else {
                        int prev_pos = pos - 1;
                        double dep =
                            fwd_end[idx(prev_pos, u.microbatch)];
                        if (dep < 0.0)
                            break;  // dependency not yet executed
                        ready = dep + prm.p2pTime;
                    }
                } else {
                    if (pos == positions - 1) {
                        double dep =
                            fwd_end[idx(pos, u.microbatch)];
                        if (dep < 0.0)
                            break;
                        ready = dep;
                    } else {
                        double dep =
                            bwd_end[idx(pos + 1, u.microbatch)];
                        if (dep < 0.0)
                            break;
                        ready = dep + prm.p2pTime;
                    }
                }
                double start = std::max(device_time[s], ready);
                double dur = u.backward ? tb : tf;
                double end = start + dur;
                device_time[s] = end;
                (u.backward ? bwd_end : fwd_end)[idx(pos,
                                                     u.microbatch)] =
                    end;
                result.events.push_back({s, u.microbatch, u.chunk,
                                         u.backward, start, end});
                ++cursor[s];
                --remaining;
                progress = true;
            }
        }
    }

    for (int s = 0; s < p; ++s)
        result.makespan = std::max(result.makespan, device_time[s]);
    result.busyPerStage =
        double(m) * (prm.forwardTime + prm.backwardTime);
    result.bubbleFraction =
        (result.makespan - result.busyPerStage) / result.busyPerStage;
    return result;
}

std::string
toChromeTrace(const ScheduleSimResult &result)
{
    // chrome://tracing "trace event" format: X (complete) events with
    // microsecond timestamps; one row (tid) per pipeline stage.
    std::string out = "[";
    bool first = true;
    char buf[256];
    for (const SimEvent &e : result.events) {
        if (!first)
            out += ",";
        first = false;
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s mb%lld c%d\",\"ph\":\"X\",\"pid\":0,"
            "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
            e.backward ? "B" : "F",
            static_cast<long long>(e.microbatch), e.chunk, e.stage,
            e.start * 1e6, (e.end - e.start) * 1e6);
        out += buf;
    }
    out += "]";
    return out;
}

} // namespace optimus
