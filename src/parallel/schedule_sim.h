/**
 * @file
 * Event-driven pipeline-schedule simulator.
 *
 * The training engine uses closed-form bubble fractions (Sec. 3.2);
 * this module simulates the actual schedules — every forward/backward
 * chunk of every microbatch on every stage, with p2p transfer delays —
 * producing an exact makespan, a per-stage timeline, and a Chrome
 * trace (chrome://tracing JSON) for visual inspection. Tests verify
 * the closed forms against the simulation.
 */

#ifndef OPTIMUS_PARALLEL_SCHEDULE_SIM_H
#define OPTIMUS_PARALLEL_SCHEDULE_SIM_H

#include <string>
#include <vector>

#include "parallel/config.h"

namespace optimus {

/** One executed chunk in the simulated timeline. */
struct SimEvent
{
    int stage = 0;            ///< device (pipeline rank)
    long long microbatch = 0;
    int chunk = 0;            ///< virtual stage index (interleaved)
    bool backward = false;
    double start = 0.0;
    double end = 0.0;
};

/** Simulation inputs. */
struct ScheduleSimParams
{
    PipelineSchedule schedule = PipelineSchedule::OneFOneB;
    int stages = 4;                ///< p
    long long microbatches = 8;    ///< m
    int virtualStages = 1;         ///< v (interleaved)
    double forwardTime = 1.0;      ///< per microbatch per DEVICE
    double backwardTime = 2.0;     ///< per microbatch per DEVICE
    double p2pTime = 0.0;          ///< per boundary crossing
};

/** Simulation outcome. */
struct ScheduleSimResult
{
    std::vector<SimEvent> events;
    double makespan = 0.0;
    double busyPerStage = 0.0;   ///< fwd+bwd work one stage executes
    double bubbleFraction = 0.0; ///< (makespan - busy) / busy
};

/** Run the simulation; throws ConfigError on invalid parameters. */
ScheduleSimResult simulatePipeline(const ScheduleSimParams &params);

/** Serialize a timeline as chrome://tracing JSON. */
std::string toChromeTrace(const ScheduleSimResult &result);

} // namespace optimus

#endif // OPTIMUS_PARALLEL_SCHEDULE_SIM_H
