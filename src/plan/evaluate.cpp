/**
 * @file
 * The single evaluator: maps every PlanStep through the roofline
 * (workload/graph.h) and collective (comm/collective.h) models.
 *
 * Op-list evaluations are memoized — always within one plan (the
 * recompute step reuses the forward estimate, decode heads repeat per
 * token), and optionally across plans through a shared EvalCache
 * (planner candidates differing only in DP degree lower to identical
 * op lists). Cached values are deterministic, so neither memo level
 * can change results at any thread count.
 */

#include "plan/plan.h"

#include <algorithm>
#include <cstdio>

namespace optimus {
namespace plan {

bool
EvalCache::lookup(const std::string &key, KernelEstimate *out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    *out = it->second;
    return true;
}

void
EvalCache::insert(const std::string &key, const KernelEstimate &est)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(key, est);
}

size_t
EvalCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

namespace {

void
appendDouble(std::string &sig, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    sig += buf;
    sig += ';';
}

void
appendInt(std::string &sig, long long v)
{
    sig += std::to_string(v);
    sig += ';';
}

/**
 * Full numeric signature of an op list on one device. Labels are
 * excluded (they never affect the numbers); every field evaluateOp
 * reads is included.
 */
std::string
opsSignature(const Device &dev, const std::vector<Op> &ops)
{
    std::string sig = dev.name;
    sig += '|';
    for (const Op &op : ops) {
        appendInt(sig, static_cast<long long>(op.kind));
        appendInt(sig, op.gemm.m);
        appendInt(sig, op.gemm.n);
        appendInt(sig, op.gemm.k);
        appendInt(sig, static_cast<long long>(op.gemm.precision));
        appendInt(sig, op.count);
        appendInt(sig, op.launchCount);
        appendDouble(sig, op.rows);
        appendDouble(sig, op.cols);
        appendDouble(sig, op.elements);
        appendDouble(sig, op.flopsPerElement);
        appendDouble(sig, op.fusedFlops);
        appendDouble(sig, op.fusedDramBytes);
        appendDouble(sig, op.fusedOnChipBytes);
        appendInt(sig, static_cast<long long>(op.fusedPrecision));
        appendDouble(sig, op.streamBytes);
        appendDouble(sig, op.streamFlops);
        appendInt(sig, static_cast<long long>(op.streamPrecision));
        sig += op.fused ? 'f' : 'u';
        sig += '|';
    }
    return sig;
}

/** Memoized evaluation of one compute part. */
KernelEstimate
evaluatePart(const Device &dev, const ComputePart &part,
             std::map<std::string, KernelEstimate> &local,
             EvalCache *shared)
{
    std::string key = opsSignature(dev, part.ops);
    KernelEstimate est;
    auto it = local.find(key);
    if (it != local.end()) {
        est = it->second;
    } else if (shared != nullptr && shared->lookup(key, &est)) {
        local.emplace(key, est);
    } else {
        // A single op goes through evaluateOp directly so the cached
        // estimate is bit-identical to the per-kernel detail path.
        est = (part.ops.size() == 1)
                  ? evaluateOp(dev, part.ops[0])
                  : evaluateOps(dev, part.ops, part.label);
        local.emplace(key, est);
        if (shared != nullptr)
            shared->insert(key, est);
    }
    est.kernel =
        part.ops.size() == 1 ? part.ops[0].name : part.label;
    return est;
}

} // namespace

EvaluatedPlan
evaluatePlan(KernelPlan plan, const System &sys,
             const EvaluateOptions &opts)
{
    EvaluatedPlan ep;
    ep.dev = sys.device;
    ep.evals.reserve(plan.steps.size());

    std::map<std::string, KernelEstimate> local;
    // Running busy time of the steps evaluated so far — the quantity
    // the pipeline-bubble step scales (the bubble is lowered after
    // every per-iteration step and before DP/optimizer).
    double busy = 0.0;

    for (const PlanStep &st : plan.steps) {
        StepEval ev;
        ev.category = st.category;
        const double instances =
            double(st.repeatLayer) * double(st.repeatMicrobatch);

        switch (st.kind) {
          case StepKind::Compute: {
            double combined = 0.0;
            for (size_t pi = 0; pi < st.parts.size(); ++pi) {
                KernelEstimate est = evaluatePart(
                    ep.dev, st.parts[pi], local, opts.cache);
                double scaled = est.time * st.parts[pi].scale;
                if (pi == 0)
                    combined = scaled;
                else if (st.combine == PartCombine::Max)
                    combined = std::max(combined, scaled);
                else
                    combined += scaled;
                ev.partEsts.push_back(std::move(est));
            }
            ev.perInstance = combined;
            ev.total = ev.perInstance * instances;
            if (st.bucketByBound) {
                // Bound-bucketed steps are single-op by construction.
                const Op &op = st.parts[0].ops[0];
                const char *bucket = "other";
                if (op.kind == OpKind::Gemm ||
                    op.kind == OpKind::FusedAttention)
                    bucket = ev.partEsts[0].computeBound()
                                 ? "gemm-compute"
                                 : "gemm-memory";
                ev.category = st.phase + "-" + bucket;
            }
            if (opts.detail && !st.detailLane.empty())
                for (const Op &op : st.parts[0].ops)
                    ev.opEsts.push_back(evaluateOp(ep.dev, op));
            break;
          }
          case StepKind::Collective:
            ev.coll = systemCollective(sys, st.collective, st.volume,
                                       st.groupSize, st.scope,
                                       st.algorithm);
            ev.perInstance =
                (ev.coll.time * st.callsPerInstance) *
                st.exposedFraction;
            ev.total = ev.perInstance * instances;
            break;
          case StepKind::Synthetic:
            if (st.synthetic == SyntheticKind::Bubble)
                ev.total = busy * st.syntheticValue;
            else
                ev.total = st.syntheticValue /
                           (ep.dev.dram().bandwidth *
                            ep.dev.dram().utilization);
            ev.perInstance = ev.total;
            break;
        }

        busy += ev.total;
        ep.evals.push_back(std::move(ev));
    }

    ep.plan = std::move(plan);
    return ep;
}

} // namespace plan
} // namespace optimus
