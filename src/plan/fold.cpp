/**
 * @file
 * The single folder: derives every downstream artifact — breakdown
 * aggregates, trace spans, per-kernel RunRecord aggregates — from one
 * evaluated plan via one shared span-stream walker, so the trace
 * invariant (per-category span sums reproduce the aggregate report)
 * holds by construction.
 */

#include "plan/plan.h"

#include "trace/trace.h"
#include "util/error.h"

namespace optimus {
namespace plan {

namespace {

/** Instance span of a step (coordinates stamped by the caller). */
TraceSpan
instanceSpan(const Device &dev, const PlanStep &st, const StepEval &ev)
{
    if (st.kernelDetail)
        return kernelSpan(dev, st.name, ev.category, ev.partEsts[0]);
    TraceSpan s;
    s.name = st.name;
    s.category = ev.category;
    s.duration = ev.perInstance;
    return s;
}

/**
 * Walk the deterministic span stream of an evaluated plan: for every
 * step, first its per-op kernel-detail spans (detailLane), then its
 * instance spans in microbatch-major, layer-inner order (or one
 * layer-aggregated span per microbatch). @p fn receives
 * (lane name, span).
 */
template <typename Fn>
void
forEachStepSpan(const EvaluatedPlan &ep, Fn &&fn)
{
    for (size_t i = 0; i < ep.plan.steps.size(); ++i) {
        const PlanStep &st = ep.plan.steps[i];
        const StepEval &ev = ep.evals[i];

        if (!st.detailLane.empty() && !ev.opEsts.empty()) {
            const std::vector<Op> &ops = st.parts[0].ops;
            for (size_t j = 0; j < ops.size(); ++j) {
                TraceSpan s = kernelSpan(ep.dev, ops[j].name,
                                         st.detailCategory,
                                         ev.opEsts[j]);
                s.microbatch = 0;
                s.layer = 0;
                fn(st.detailLane, std::move(s));
            }
        }

        if (st.kind == StepKind::Synthetic) {
            // The bubble span is suppressed when the schedule has no
            // bubble (pp == 1); the optimizer span always appears.
            if (st.synthetic == SyntheticKind::Bubble &&
                !(ev.total > 0.0))
                continue;
            TraceSpan s;
            s.name = st.name;
            s.category = ev.category;
            s.duration = ev.total;
            fn(st.lane, std::move(s));
            continue;
        }

        for (long long mb = 0; mb < st.repeatMicrobatch; ++mb) {
            if (st.aggregateLayers) {
                TraceSpan s = instanceSpan(ep.dev, st, ev);
                const double rl = double(st.repeatLayer);
                s.duration = ev.perInstance * rl;
                if (s.isKernel()) {
                    s.flops *= rl;
                    for (double &b : s.bytesPerLevel)
                        b *= rl;
                    s.overhead *= rl;
                }
                if (st.coordMicrobatch)
                    s.microbatch = mb;
                s.step = st.step;
                fn(st.lane, std::move(s));
                continue;
            }
            for (long long l = 0; l < st.repeatLayer; ++l) {
                TraceSpan s = instanceSpan(ep.dev, st, ev);
                if (st.coordMicrobatch)
                    s.microbatch = mb;
                if (st.coordLayer)
                    s.layer = l;
                s.step = st.step;
                fn(st.lane, std::move(s));
            }
        }
    }
}

/** Emit the full span stream (lanes and counters first) into @p tr. */
void
emitTrace(const EvaluatedPlan &ep, TraceSession &tr)
{
    std::map<std::string, int> lane_ids;
    for (const std::string &name : ep.plan.lanes)
        lane_ids[name] = tr.lane(name);
    for (const auto &kv : ep.plan.counters)
        tr.counterAdd(kv.first, kv.second);
    forEachStepSpan(ep, [&](const std::string &lane, TraceSpan s) {
        auto it = lane_ids.find(lane);
        if (it == lane_ids.end())
            it = lane_ids.emplace(lane, tr.lane(lane)).first;
        tr.emit(it->second, std::move(s));
    });
}

/** TrainingBreakdown field addressed by a category name. */
double *
breakdownField(TrainingBreakdown &t, const std::string &category)
{
    if (category == "forward") return &t.forward;
    if (category == "backward") return &t.backward;
    if (category == "recompute") return &t.recompute;
    if (category == "embedding") return &t.embedding;
    if (category == "tp-comm") return &t.tpComm;
    if (category == "cp-comm") return &t.cpComm;
    if (category == "ep-comm") return &t.epComm;
    if (category == "pp-comm") return &t.ppComm;
    if (category == "dp-comm") return &t.dpComm;
    if (category == "bubble") return &t.bubble;
    if (category == "optimizer") return &t.optimizer;
    return nullptr;
}

} // namespace

FoldedTraining
foldTraining(const EvaluatedPlan &ep, TraceSession *trace)
{
    FoldedTraining f;
    for (size_t i = 0; i < ep.plan.steps.size(); ++i) {
        const PlanStep &st = ep.plan.steps[i];
        const StepEval &ev = ep.evals[i];
        double *field = breakdownField(f.time, ev.category);
        checkConfig(field != nullptr,
                    "training plan step '" + st.name +
                        "' has unknown category '" + ev.category + "'");
        *field += ev.total;
        if (st.kind == StepKind::Compute && !ev.partEsts.empty()) {
            if (st.name == "layer-fwd")
                f.layerForward = ev.partEsts[0];
            else if (st.name == "layer-bwd")
                f.layerBackward = ev.partEsts[0];
        }
    }
    if (tracing(trace))
        emitTrace(ep, *trace);
    return f;
}

FoldedInference
foldInference(const EvaluatedPlan &ep, TraceSession *trace)
{
    FoldedInference f;
    for (size_t i = 0; i < ep.plan.steps.size(); ++i) {
        const PlanStep &st = ep.plan.steps[i];
        const StepEval &ev = ep.evals[i];
        PhaseReport &r =
            (st.phase == "decode") ? f.decode : f.prefill;
        if (st.kind == StepKind::Compute) {
            const KernelEstimate &est = ev.partEsts[0];
            const double inst =
                double(st.repeatLayer) * double(st.repeatMicrobatch);
            r.time += ev.total;
            r.overheadTime += est.overhead * inst;
            if (!est.memTimePerLevel.empty())
                r.memoryTime += est.memTimePerLevel[0] * inst;
            // Bound-type buckets include each kernel's launch
            // overhead, as in the paper's per-kernel accounting (a
            // 3 us per-head attention kernel counts as memory-bound
            // time even though its cost is launch-dominated).
            if (ev.category.ends_with("gemm-compute"))
                r.computeBoundGemmTime += ev.total;
            else if (ev.category.ends_with("gemm-memory"))
                r.memoryBoundGemmTime += ev.total;
            else
                r.otherKernelTime += ev.total;
        } else if (st.kind == StepKind::Collective) {
            r.commTime += ev.total;
            r.time += ev.total;
        }
    }
    if (tracing(trace))
        emitTrace(ep, *trace);
    return f;
}

std::vector<KernelAggregate>
kernelAggregates(const EvaluatedPlan &ep)
{
    struct Agg
    {
        KernelAggregate a;
        std::map<std::string, double> boundTime;
    };
    std::map<std::string, Agg> by_key;

    forEachStepSpan(ep, [&](const std::string &lane, TraceSpan s) {
        if (!s.isKernel())
            return;
        const std::string key = lane + "/" + s.name;
        Agg &g = by_key[key];
        if (g.a.count == 0) {
            g.a.key = key;
            g.a.category = s.category;
        }
        ++g.a.count;
        g.a.time += s.duration;
        g.a.flops += s.flops;
        g.a.dramBytes += s.dramBytes();
        g.a.overhead += s.overhead;
        g.boundTime[s.bound] += s.duration;
    });

    std::vector<KernelAggregate> out;
    out.reserve(by_key.size());
    for (auto &kv : by_key) {
        // A kernel whose bound class varies within the run (e.g. a
        // decode GEMV flipping DRAM -> L2 as the context grows) is
        // labeled by its time-dominant class; ties break
        // lexicographically so the label is deterministic.
        Agg &g = kv.second;
        double best = -1.0;
        for (const auto &bt : g.boundTime)
            if (bt.second > best) {
                best = bt.second;
                g.a.bound = bt.first;
            }
        out.push_back(std::move(g.a));
    }
    return out;
}

} // namespace plan
} // namespace optimus
