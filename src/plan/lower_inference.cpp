/**
 * @file
 * Lowering of an inference configuration onto the kernel-plan IR.
 *
 * Prefill lowers to one step per layer op (repeated over the L
 * layers), decode to one step per (token, op) with the L layers
 * aggregated into a single span — the historical decode-lane shape.
 * All TP/PP communication scopes go through groupScopeFor(), so a TP
 * group larger than a node correctly pays the inter-node link.
 */

#include "plan/plan.h"

#include "hw/precision.h"
#include "util/error.h"

namespace optimus {
namespace plan {

namespace {

/** One bound-bucketed kernel step for a single op. */
PlanStep
opStep(const Op &op, const char *lane, const char *phase)
{
    PlanStep s;
    s.kind = StepKind::Compute;
    s.lane = lane;
    s.name = op.name;
    s.phase = phase;
    s.bucketByBound = true;
    s.kernelDetail = true;
    s.parts.push_back({op.name, {op}, 1.0});
    return s;
}

} // namespace

KernelPlan
lowerInference(const TransformerConfig &cfg, const System &sys,
               const InferenceOptions &opts)
{
    cfg.validate();
    sys.validate();
    checkPositive(opts.batch, "batch");
    checkPositive(opts.promptLength, "promptLength");
    checkPositive(opts.generateLength, "generateLength");
    checkPositive(opts.tensorParallel, "tensorParallel");
    checkPositive(opts.pipelineParallel, "pipelineParallel");
    checkConfig(opts.tensorParallel * opts.pipelineParallel <=
                    sys.totalDevices(),
                "TP x PP exceeds system size");
    checkConfig(cfg.numLayers % opts.pipelineParallel == 0,
                "layers must divide by the PP degree");

    const long long L = cfg.numLayers;
    const long long tp = opts.tensorParallel;

    KernelPlan kp;
    kp.phase = "inference";
    kp.lanes = {"prefill", "prefill/comm", "decode", "decode/comm"};
    kp.counters = {{"infer/decode-tokens", double(opts.generateLength)},
                   {"infer/layers", double(L)}};
    kp.layersPerStage = L;

    // ---- Prefill (summarization) ------------------------------------
    LayerGraphParams gp;
    gp.batch = opts.batch;
    gp.seq = opts.promptLength;
    gp.tensorParallel = tp;
    gp.precision = opts.precision;
    gp.training = false;
    gp.flashAttention = opts.flashAttention;

    for (const Op &op : layerForwardOps(cfg, gp)) {
        PlanStep s = opStep(op, "prefill", "prefill");
        s.repeatLayer = L;
        s.coordLayer = true;
        kp.steps.push_back(std::move(s));
    }

    // TP all-reduce of the layer's two row-parallel outputs.
    if (tp > 1) {
        PlanStep s;
        s.kind = StepKind::Collective;
        s.lane = "prefill/comm";
        s.name = "tp-allreduce";
        s.category = "prefill-comm";
        s.phase = "prefill";
        s.repeatLayer = L;
        s.coordLayer = true;
        s.collective = CollectiveKind::AllReduce;
        s.volume = double(opts.batch) * opts.promptLength *
                   double(cfg.hiddenSize) *
                   precisionBytes(opts.precision);
        s.groupSize = tp;
        s.scope = groupScopeFor(sys, tp);
        s.algorithm = opts.collectiveAlgorithm;
        s.callsPerInstance = 2.0;
        kp.steps.push_back(std::move(s));
    }

    // First sampled token: the LM head runs once on the last position.
    for (const Op &op :
         headOps(cfg, opts.batch, tp, opts.precision))
        kp.steps.push_back(opStep(op, "prefill", "prefill"));

    // ---- Decode (auto-regressive generation) ------------------------
    for (long long i = 0; i < opts.generateLength; ++i) {
        long long context = opts.promptLength + i + 1;
        for (const Op &op :
             decodeLayerOps(cfg, opts.batch, context, tp,
                            opts.precision, opts.kvPrecision)) {
            PlanStep s = opStep(op, "decode", "decode");
            s.repeatLayer = L;
            s.aggregateLayers = true;
            s.step = i;
            kp.steps.push_back(std::move(s));
        }

        if (tp > 1) {
            PlanStep s;
            s.kind = StepKind::Collective;
            s.lane = "decode/comm";
            s.name = "tp-allreduce";
            s.category = "decode-comm";
            s.phase = "decode";
            s.repeatLayer = L;
            s.aggregateLayers = true;
            s.step = i;
            s.collective = CollectiveKind::AllReduce;
            s.volume = double(opts.batch) * double(cfg.hiddenSize) *
                       precisionBytes(opts.precision);
            s.groupSize = tp;
            s.scope = groupScopeFor(sys, tp);
            s.algorithm = opts.collectiveAlgorithm;
            s.callsPerInstance = 2.0;
            kp.steps.push_back(std::move(s));
        }

        // Sampling head for this token.
        for (const Op &op :
             headOps(cfg, opts.batch, tp, opts.precision)) {
            PlanStep s = opStep(op, "decode", "decode");
            s.step = i;
            kp.steps.push_back(std::move(s));
        }
    }

    // Pipeline-parallel stages add one activation hop per boundary:
    // per prefill pass and per generated token. The hop uses the
    // default (auto) algorithm choice — a p2p has no algorithm knob.
    if (opts.pipelineParallel > 1) {
        GroupScope scope =
            groupScopeFor(sys, tp * opts.pipelineParallel);
        double hops = double(opts.pipelineParallel - 1);
        {
            PlanStep s;
            s.kind = StepKind::Collective;
            s.lane = "prefill/comm";
            s.name = "pp-hops";
            s.category = "prefill-comm";
            s.phase = "prefill";
            s.collective = CollectiveKind::PointToPoint;
            s.volume = double(opts.batch) * opts.promptLength *
                       cfg.hiddenSize * precisionBytes(opts.precision);
            s.groupSize = 2;
            s.scope = scope;
            s.callsPerInstance = hops;
            kp.steps.push_back(std::move(s));
        }
        {
            PlanStep s;
            s.kind = StepKind::Collective;
            s.lane = "decode/comm";
            s.name = "pp-hops";
            s.category = "decode-comm";
            s.phase = "decode";
            s.repeatLayer = opts.generateLength;
            s.aggregateLayers = true;
            s.collective = CollectiveKind::PointToPoint;
            s.volume = double(opts.batch) * cfg.hiddenSize *
                       precisionBytes(opts.precision);
            s.groupSize = 2;
            s.scope = scope;
            s.callsPerInstance = hops;
            kp.steps.push_back(std::move(s));
        }
    }

    return kp;
}

} // namespace plan
} // namespace optimus
