/**
 * @file
 * Lowering of a training configuration onto the kernel-plan IR.
 *
 * Step order is load-bearing: it fixes the breakdown-field summation
 * order (so the fold reproduces the historical TrainingBreakdown
 * numbers) and the busy-time prefix the pipeline-bubble step scales.
 */

#include "plan/plan.h"

#include <algorithm>

#include "memory/footprint.h"
#include "parallel/pipeline.h"
#include "util/error.h"
#include "workload/activation.h"

namespace optimus {
namespace plan {

KernelPlan
lowerTraining(const TransformerConfig &cfg, const System &sys,
              const ParallelConfig &par, long long global_batch,
              const TrainingOptions &opts)
{
    cfg.validate();
    sys.validate();
    par.validate(cfg, sys, global_batch);
    checkPositive(opts.seqLength, "seqLength");
    checkConfig(opts.seqLength % par.contextParallel == 0,
                "sequence length must divide by the CP degree");

    const long long tp = par.tensorParallel;
    const long long pp = par.pipelineParallel;
    const long long layers_local = cfg.numLayers / pp;
    const long long m = par.microbatches(global_batch);
    const double act_bytes = opts.memory.activationBytes;

    KernelPlan kp;
    kp.phase = "training";
    // The critical (worst) pipeline stage — the one whose per-device
    // time the analytical model predicts; tracing all pp stages would
    // multiply category sums by pp.
    kp.lanes = {"stage0/fwd",  "stage0/bwd", "stage0/recompute",
                "stage0/comm", "stage0/other", "kernels/fwd",
                "kernels/bwd"};
    kp.counters = {{"train/microbatches", double(m)},
                   {"train/layers-per-stage", double(layers_local)}};
    kp.microbatches = m;
    kp.layersPerStage = layers_local;

    LayerGraphParams gp;
    gp.batch = par.microbatchSize;
    gp.seq = opts.seqLength;
    gp.tensorParallel = tp;
    gp.sequenceParallel = par.sequenceParallel;
    gp.precision = opts.precision;
    gp.training = true;
    gp.flashAttention = opts.flashAttention;
    gp.expertParallel = par.expertParallel;
    gp.contextParallel = par.contextParallel;

    std::vector<Op> fwd_ops = layerForwardOps(cfg, gp);
    std::vector<Op> bwd_ops = layerBackwardOps(cfg, gp);

    ActivationParams ap;
    ap.microbatch = par.microbatchSize;
    ap.seq = opts.seqLength;
    ap.tensorParallel = tp;
    ap.sequenceParallel = par.sequenceParallel;
    ap.activationBytes = act_bytes;
    ap.flashAttention = opts.flashAttention;
    const double recompute_frac =
        recomputeForwardFraction(cfg, ap, opts.recompute);

    // ---- Per-(microbatch, layer) compute ----------------------------
    {
        PlanStep s;
        s.kind = StepKind::Compute;
        s.lane = "stage0/fwd";
        s.name = "layer-fwd";
        s.category = "forward";
        s.phase = "train";
        s.repeatMicrobatch = m;
        s.repeatLayer = layers_local;
        s.coordMicrobatch = s.coordLayer = true;
        s.detailLane = "kernels/fwd";
        s.parts.push_back({"layer-fwd", fwd_ops, 1.0});
        kp.steps.push_back(std::move(s));
    }
    {
        PlanStep s;
        s.kind = StepKind::Compute;
        s.lane = "stage0/bwd";
        s.name = "layer-bwd";
        s.category = "backward";
        s.phase = "train";
        s.repeatMicrobatch = m;
        s.repeatLayer = layers_local;
        s.coordMicrobatch = s.coordLayer = true;
        s.detailLane = "kernels/bwd";
        s.parts.push_back({"layer-bwd", std::move(bwd_ops), 1.0});
        kp.steps.push_back(std::move(s));
    }
    if (recompute_frac > 0.0) {
        PlanStep s;
        s.kind = StepKind::Compute;
        s.lane = "stage0/recompute";
        s.name = "layer-recompute";
        s.category = "recompute";
        s.phase = "train";
        s.repeatMicrobatch = m;
        s.repeatLayer = layers_local;
        s.coordMicrobatch = s.coordLayer = true;
        s.parts.push_back({"layer-fwd", fwd_ops, recompute_frac});
        kp.steps.push_back(std::move(s));
    }

    // ---- Embedding + LM head (worst stage carries both) -------------
    {
        const long long mb_tokens = par.microbatchSize * opts.seqLength;
        Op embed;
        embed.name = "embedding";
        embed.kind = OpKind::Stream;
        embed.streamBytes =
            2.0 * double(mb_tokens) * cfg.hiddenSize * act_bytes;
        embed.streamFlops = 0.0;
        embed.streamPrecision = opts.precision;

        PlanStep s;
        s.kind = StepKind::Compute;
        s.lane = "stage0/fwd";
        s.name = "embed+head";
        s.category = "embedding";
        s.phase = "train";
        s.repeatMicrobatch = m;
        s.coordMicrobatch = true;
        // Forward + backward (2x) for the head GEMM; embedding
        // backward is a scatter of comparable traffic. With pipeline
        // parallelism the embedding and the head live on different
        // stages, so the critical stage carries only the larger part.
        s.combine = (pp > 1) ? PartCombine::Max : PartCombine::Sum;
        s.parts.push_back(
            {"head", headOps(cfg, mb_tokens, tp, opts.precision), 3.0});
        s.parts.push_back({"embedding", {embed}, 2.0});
        kp.steps.push_back(std::move(s));
    }

    // ---- Tensor/sequence-parallel collectives -----------------------
    if (tp > 1) {
        PlanStep s;
        s.kind = StepKind::Collective;
        s.lane = "stage0/comm";
        s.name = "tp-allreduce";
        s.category = "tp-comm";
        s.phase = "train";
        s.repeatMicrobatch = m;
        s.repeatLayer = layers_local;
        s.coordMicrobatch = s.coordLayer = true;
        s.collective = CollectiveKind::AllReduce;
        s.volume = double(par.microbatchSize) * opts.seqLength *
                   cfg.hiddenSize * act_bytes;
        s.groupSize = tp;
        s.scope = groupScopeFor(sys, tp);
        s.algorithm = opts.collectiveAlgorithm;
        // Two collectives per block pair (attention, MLP) in forward,
        // two in backward; full recomputation repeats the forward
        // ones. Selective recomputation's region has no collective.
        s.callsPerInstance =
            4.0 + (opts.recompute == Recompute::Full ? 2.0 : 0.0);
        s.exposedFraction = 1.0 - opts.tpOverlapFraction;
        kp.steps.push_back(std::move(s));
    }

    // ---- Context-parallel ring-attention KV exchange ----------------
    if (par.contextParallel > 1) {
        // Each device's K/V shard circulates around the CP ring: an
        // all-gather's worth of wire traffic per layer in forward,
        // twice in backward (KV again plus their gradients), plus the
        // recompute replay.
        double kv_heads_local =
            std::max(1.0, double(cfg.numKvHeads) / double(tp));
        PlanStep s;
        s.kind = StepKind::Collective;
        s.lane = "stage0/comm";
        s.name = "cp-ring-exchange";
        s.category = "cp-comm";
        s.phase = "train";
        s.repeatMicrobatch = m;
        s.repeatLayer = layers_local;
        s.coordMicrobatch = s.coordLayer = true;
        s.collective = CollectiveKind::AllGather;
        s.volume = 2.0 * double(par.microbatchSize) * opts.seqLength *
                   kv_heads_local * double(cfg.headDim()) * act_bytes;
        s.groupSize = par.contextParallel;
        s.scope = groupScopeFor(sys, par.contextParallel * tp);
        s.algorithm = opts.collectiveAlgorithm;
        s.callsPerInstance =
            3.0 + (opts.recompute == Recompute::Full ? 1.0 : 0.0);
        kp.steps.push_back(std::move(s));
    }

    // ---- MoE expert-parallel all-to-all ------------------------------
    if (cfg.isMoe() && par.expertParallel > 1) {
        // Dispatch + combine per layer in forward, again in backward,
        // and once more when full recomputation replays the forward.
        PlanStep s;
        s.kind = StepKind::Collective;
        s.lane = "stage0/comm";
        s.name = "ep-alltoall";
        s.category = "ep-comm";
        s.phase = "train";
        s.repeatMicrobatch = m;
        s.repeatLayer = layers_local;
        s.coordMicrobatch = s.coordLayer = true;
        s.collective = CollectiveKind::AllToAll;
        s.volume = double(par.microbatchSize) * opts.seqLength *
                   cfg.topK * cfg.hiddenSize * act_bytes;
        s.groupSize = par.expertParallel;
        s.scope = groupScopeFor(sys, tp * pp);
        s.algorithm = opts.collectiveAlgorithm;
        s.callsPerInstance =
            4.0 + (opts.recompute == Recompute::Full ? 2.0 : 0.0);
        kp.steps.push_back(std::move(s));
    }

    // ---- Pipeline schedule ------------------------------------------
    PipelineCost pc =
        pipelineCost(par.schedule, pp, m, par.interleavedStages);
    kp.bubbleFraction = pc.bubbleFraction;
    if (pp > 1) {
        double p2p_volume = double(par.microbatchSize) * opts.seqLength *
                            cfg.hiddenSize * act_bytes;
        if (par.sequenceParallel)
            p2p_volume /= double(tp);
        PlanStep s;
        s.kind = StepKind::Collective;
        s.lane = "stage0/comm";
        s.name = "pp-p2p";
        s.category = "pp-comm";
        s.phase = "train";
        s.repeatMicrobatch = m;
        s.coordMicrobatch = true;
        s.collective = CollectiveKind::PointToPoint;
        s.volume = p2p_volume;
        s.groupSize = 2;
        s.scope = groupScopeFor(sys, tp * pp);
        s.algorithm = opts.collectiveAlgorithm;
        s.callsPerInstance = pc.p2pPerMicrobatch;
        kp.steps.push_back(std::move(s));
    }

    // Bubble applies to the busy time of one pipeline iteration — the
    // running total of every step lowered above this one.
    {
        PlanStep s;
        s.kind = StepKind::Synthetic;
        s.lane = "stage0/other";
        s.name = "pipeline-bubble";
        s.category = "bubble";
        s.phase = "train";
        s.synthetic = SyntheticKind::Bubble;
        s.syntheticValue = pc.bubbleFraction;
        kp.steps.push_back(std::move(s));
    }

    // ---- Data-parallel gradient communication -----------------------
    if (par.dataParallel > 1) {
        GroupScope dp_scope = groupScopeFor(sys, par.totalDevices());
        // Plain DP all-reduces gradients. ZeRO stages reduce-scatter
        // the gradients and all-gather the updated weights — the same
        // total volume as one all-reduce; stage 3 additionally
        // re-gathers the sharded weights around the forward and
        // backward passes.
        PlanStep s;
        s.kind = StepKind::Collective;
        s.lane = "stage0/comm";
        s.name = "dp-grad-allreduce";
        s.category = "dp-comm";
        s.phase = "train";
        s.collective = CollectiveKind::AllReduce;
        s.volume =
            parametersPerDevice(cfg, par) * opts.memory.gradientBytes;
        s.groupSize = par.dataParallel;
        s.scope = dp_scope;
        s.algorithm = opts.collectiveAlgorithm;
        s.exposedFraction = 1.0 - opts.dpOverlapFraction;
        kp.steps.push_back(std::move(s));

        if (opts.memory.zeroStage >= 3) {
            PlanStep g;
            g.kind = StepKind::Collective;
            g.lane = "stage0/comm";
            g.name = "zero3-weight-allgather";
            g.category = "dp-comm";
            g.phase = "train";
            g.repeatMicrobatch = 2;  // around forward and backward
            g.collective = CollectiveKind::AllGather;
            g.volume =
                parametersPerDevice(cfg, par) * opts.memory.weightBytes;
            g.groupSize = par.dataParallel;
            g.scope = dp_scope;
            g.algorithm = opts.collectiveAlgorithm;
            kp.steps.push_back(std::move(g));
        }
    }

    // ---- Optimizer step ---------------------------------------------
    {
        // Adam mixed precision: read fp32 master+momentum+variance and
        // the fp16 gradient, write the three fp32 states and the fp16
        // weight. ZeRO shards the update over the data-parallel group.
        double params = parametersPerDevice(cfg, par);
        if (opts.memory.zeroStage >= 1)
            params /= double(par.dataParallel);
        PlanStep s;
        s.kind = StepKind::Synthetic;
        s.lane = "stage0/other";
        s.name = "optimizer-step";
        s.category = "optimizer";
        s.phase = "train";
        s.synthetic = SyntheticKind::Optimizer;
        s.syntheticValue = params * (3.0 * 4.0 + 2.0 + 3.0 * 4.0 + 2.0);
        kp.steps.push_back(std::move(s));
    }

    return kp;
}

} // namespace plan
} // namespace optimus
