/**
 * @file
 * The kernel-plan IR: one lowering pass, one evaluator, one folder.
 *
 * The paper's core abstraction is a single pipeline — (model, system,
 * mapping) -> per-kernel roofline estimates -> folded time/memory/
 * bound reports — and this module is that pipeline made explicit.
 * `lowerTraining` / `lowerInference` turn a configuration into a flat,
 * deterministic KernelPlan: an ordered list of PlanSteps (compute op
 * lists, collectives with an explicit GroupScope, and synthetic steps
 * for the pipeline bubble and the optimizer), each tagged with a
 * stable identity (lane/name), phase, repeat counts and breakdown
 * category. `evaluatePlan` maps every step through the existing
 * roofline and collective models, and the folders derive *all*
 * downstream artifacts from that one evaluated stream:
 *
 *  - `foldTraining` / `foldInference` produce the TrainingBreakdown /
 *    PhaseReport aggregates and, when a TraceSession is supplied, the
 *    trace spans whose per-category sums reproduce them;
 *  - `kernelAggregates` produces the per-identity RunRecord kernel
 *    rows (report/record.h) from the same span stream;
 *  - `summarizePlan` / `planJson` / `planCsv` expose the plan itself
 *    (the `optimus_cli kernels` subcommand).
 *
 * evaluateTraining / evaluateInference are thin drivers over
 * runTraining / runInference (lower -> evaluate -> fold plus the
 * memory/MFU/latency tails); they contain no per-op folding of their
 * own. See docs/ARCHITECTURE.md.
 */

#ifndef OPTIMUS_PLAN_PLAN_H
#define OPTIMUS_PLAN_PLAN_H

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "comm/collective.h"
#include "hw/system.h"
#include "inference/engine.h"
#include "training/trainer.h"
#include "util/json.h"
#include "workload/graph.h"

namespace optimus {

class TraceSession;

namespace plan {

/** What a PlanStep models. */
enum class StepKind {
    Compute,     ///< one or more op lists through the roofline engines
    Collective,  ///< a communication collective (comm/collective.h)
    Synthetic,   ///< derived time: pipeline bubble, optimizer step
};

/** Synthetic step flavors. */
enum class SyntheticKind {
    Bubble,     ///< busy-so-far * bubbleFraction (value = fraction)
    Optimizer,  ///< value bytes / DRAM effective bandwidth
};

/** How a multi-part compute step combines its parts. */
enum class PartCombine {
    Sum,  ///< parts execute back to back
    Max,  ///< parts live on different pipeline stages; worst one counts
};

/** One op list inside a compute step, with a time scale factor. */
struct ComputePart
{
    std::string label;    ///< evaluateOps label for multi-op lists
    std::vector<Op> ops;
    double scale = 1.0;   ///< e.g. recompute fraction, fwd+bwd factor
};

/**
 * One step of a lowered plan. The identity (lane, name) is stable
 * across runs of the same configuration — it is the key the diff
 * engine and the trace lanes agree on.
 */
struct PlanStep
{
    StepKind kind = StepKind::Compute;
    std::string lane;      ///< trace lane, e.g. "stage0/comm"
    std::string name;      ///< event label, e.g. "tp-allreduce"
    /** Breakdown category; empty for bound-bucketed compute steps. */
    std::string category;
    std::string phase;     ///< "train" | "prefill" | "decode"

    /**
     * Resolve the category from the evaluated bound instead:
     * phase + "-" + {gemm-compute | gemm-memory | other} (the
     * inference PhaseReport buckets).
     */
    bool bucketByBound = false;

    // ---- Repeat structure -------------------------------------------
    long long repeatMicrobatch = 1;
    long long repeatLayer = 1;
    bool coordMicrobatch = false;  ///< stamp span.microbatch
    bool coordLayer = false;       ///< stamp span.layer
    long long step = -1;           ///< decode token index (span.step)
    /**
     * Emit one span covering all repeatLayer instances (duration,
     * FLOPs and traffic scaled by repeatLayer) instead of one span per
     * layer — the decode-lane aggregation.
     */
    bool aggregateLayers = false;

    // ---- Kernel detail ----------------------------------------------
    /** Instance spans carry full kernel detail (single-op steps). */
    bool kernelDetail = false;
    /**
     * Additionally emit one per-op kernel-detail span per op of
     * parts[0] on this lane (the trainer's "kernels/fwd" lanes).
     */
    std::string detailLane;
    std::string detailCategory = "kernel";

    // ---- Compute payload --------------------------------------------
    std::vector<ComputePart> parts;
    PartCombine combine = PartCombine::Sum;

    // ---- Collective payload -----------------------------------------
    CollectiveKind collective = CollectiveKind::AllReduce;
    double volume = 0.0;       ///< bytes per call
    long long groupSize = 1;
    GroupScope scope = GroupScope::IntraNode;
    CollectiveAlgorithm algorithm = CollectiveAlgorithm::Auto;
    double callsPerInstance = 1.0;   ///< e.g. collectives per layer
    double exposedFraction = 1.0;    ///< 1 - overlapped fraction

    // ---- Synthetic payload ------------------------------------------
    SyntheticKind synthetic = SyntheticKind::Bubble;
    double syntheticValue = 0.0;     ///< fraction (Bubble) or bytes
};

/** A lowered, deterministic plan for one evaluation. */
struct KernelPlan
{
    std::string phase;  ///< "training" | "inference"
    std::vector<PlanStep> steps;
    /** Trace lanes in registration order (stable lane indices). */
    std::vector<std::string> lanes;
    /** counterAdd(name, value) pairs recorded before any span. */
    std::vector<std::pair<std::string, double>> counters;

    long long microbatches = 1;
    long long layersPerStage = 1;
    double bubbleFraction = 0.0;
};

/**
 * Shared memo of op-list roofline evaluations, keyed by device name
 * plus a full op signature. Thread-safe; entries are deterministic
 * (any racing computation of the same key produces the identical
 * estimate), so sharing a cache across exec-layer workers cannot
 * change results. Share one cache only across evaluations against the
 * same System — the key does not hash the device parameters.
 */
class EvalCache
{
  public:
    /** Copy the entry for @p key into @p out; false when absent. */
    bool lookup(const std::string &key, KernelEstimate *out) const;
    /** Insert (first writer wins; later identical inserts are no-ops). */
    void insert(const std::string &key, const KernelEstimate &est);
    /** Number of cached op-list evaluations. */
    size_t size() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, KernelEstimate> entries_;
};

/** Evaluator knobs. */
struct EvaluateOptions
{
    /**
     * Also evaluate per-op kernel detail (detailLane spans). The
     * folders force this on when a TraceSession is attached or when
     * RunRecord kernel aggregates are wanted.
     */
    bool detail = false;
    EvalCache *cache = nullptr;  ///< optional shared memo
};

/** Evaluation result of one step. */
struct StepEval
{
    double perInstance = 0.0;  ///< seconds per (microbatch, layer)
    double total = 0.0;        ///< perInstance * repeats (or synthetic)
    std::string category;      ///< resolved (bucketByBound applied)
    std::vector<KernelEstimate> partEsts;  ///< one per ComputePart
    std::vector<KernelEstimate> opEsts;    ///< per-op detail of parts[0]
    CollectiveResult coll;     ///< collective steps only
};

/** A plan with every step evaluated on one system. */
struct EvaluatedPlan
{
    KernelPlan plan;
    std::vector<StepEval> evals;
    Device dev;  ///< the device the steps were evaluated on
};

// ---- Lower -----------------------------------------------------------

/** Lower a training configuration (validates its inputs). */
KernelPlan lowerTraining(const TransformerConfig &cfg, const System &sys,
                         const ParallelConfig &par, long long global_batch,
                         const TrainingOptions &opts);

/** Lower an inference configuration (validates its inputs). */
KernelPlan lowerInference(const TransformerConfig &cfg, const System &sys,
                          const InferenceOptions &opts);

// ---- Evaluate --------------------------------------------------------

/** Map every step through the roofline / collective models. */
EvaluatedPlan evaluatePlan(KernelPlan plan, const System &sys,
                           const EvaluateOptions &opts = {});

// ---- Fold ------------------------------------------------------------

/** Training aggregates folded from an evaluated plan. */
struct FoldedTraining
{
    TrainingBreakdown time;
    KernelEstimate layerForward;   ///< "layer-fwd" step estimate
    KernelEstimate layerBackward;  ///< "layer-bwd" step estimate
};

/** Inference aggregates folded from an evaluated plan. */
struct FoldedInference
{
    PhaseReport prefill;
    PhaseReport decode;
};

/**
 * Fold a training plan into its breakdown; when @p trace is a live
 * session, also emit the full span stream (lanes registered in plan
 * order, counters first) whose per-category sums reproduce the
 * breakdown.
 */
FoldedTraining foldTraining(const EvaluatedPlan &ep, TraceSession *trace);

/** Inference analogue of foldTraining. */
FoldedInference foldInference(const EvaluatedPlan &ep,
                              TraceSession *trace);

/**
 * Aggregate of every kernel-detail span sharing one "<lane>/<name>"
 * identity — the plan-side source of report::KernelStat rows,
 * produced from the same span stream the trace folders emit.
 */
struct KernelAggregate
{
    std::string key;
    std::string category;
    long long count = 0;
    double time = 0.0;
    double flops = 0.0;
    double dramBytes = 0.0;
    double overhead = 0.0;
    std::string bound;  ///< time-dominant bound class
};

/** Per-identity kernel aggregates (requires a detail evaluation). */
std::vector<KernelAggregate> kernelAggregates(const EvaluatedPlan &ep);

// ---- Drivers ---------------------------------------------------------

/** Result of a full training run over the plan pipeline. */
struct TrainingRun
{
    TrainingReport report;
    EvaluatedPlan plan;
};

/** Result of a full inference run over the plan pipeline. */
struct InferenceRun
{
    InferenceReport report;
    EvaluatedPlan plan;
};

/**
 * lower -> evaluate -> fold, plus the memory / model-FLOPs / MFU tail.
 * @p detail forces per-op kernel-detail evaluation (implied by an
 * attached trace session).
 */
TrainingRun runTraining(const TransformerConfig &cfg, const System &sys,
                        const ParallelConfig &par, long long global_batch,
                        const TrainingOptions &opts, bool detail = false);

/** Inference analogue of runTraining (KV/weight footprint tail). */
InferenceRun runInference(const TransformerConfig &cfg, const System &sys,
                          const InferenceOptions &opts,
                          bool detail = false);

// ---- Plan export (optimus_cli kernels) -------------------------------

/** One row of the plan summary / JSON dump. */
struct StepSummary
{
    std::string lane;
    std::string name;
    std::string category;
    std::string kind;    ///< "compute" | "collective" | "synthetic"
    long long count = 1; ///< repeatMicrobatch * repeatLayer
    double perInstance = 0.0;
    double total = 0.0;
    double flops = 0.0;      ///< across all instances
    double dramBytes = 0.0;  ///< across all instances
    double overhead = 0.0;   ///< across all instances
    /** Bound class (compute), scope (collective), or empty. */
    std::string detail;
};

/** Summarize every step of an evaluated plan, in plan order. */
std::vector<StepSummary> summarizePlan(const EvaluatedPlan &ep);

/** Schema "optimus-kernel-plan" version 1 document. */
JsonValue planJson(const EvaluatedPlan &ep);

/** Serialize summaries (the body of planJson). */
JsonValue summariesToJson(const std::vector<StepSummary> &steps,
                          const std::string &phase);

/** Parse a planJson document back into summaries (round trip). */
std::vector<StepSummary> summariesFromJson(const JsonValue &doc,
                                           std::string *phase = nullptr);

/** RFC-4180 CSV of the step summaries (header + one row per step). */
std::string planCsv(const EvaluatedPlan &ep);

} // namespace plan
} // namespace optimus

#endif // OPTIMUS_PLAN_PLAN_H
