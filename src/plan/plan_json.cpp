/**
 * @file
 * Plan export: step summaries, the "optimus-kernel-plan" JSON schema
 * (version 1, lossless round trip through util/json.h's
 * shortest-round-trip number dump) and an RFC-4180 CSV — the backing
 * of the `optimus_cli kernels` subcommand.
 */

#include "plan/plan.h"

#include <cstdio>

#include "util/error.h"

namespace optimus {
namespace plan {

namespace {

const char *kSchemaName = "optimus-kernel-plan";
constexpr int kSchemaVersion = 1;

const char *
scopeName(GroupScope scope)
{
    return scope == GroupScope::InterNode ? "inter-node" : "intra-node";
}

/** RFC-4180 cell: quote anything with a comma, quote, CR or LF. */
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\r\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
csvNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::vector<StepSummary>
summarizePlan(const EvaluatedPlan &ep)
{
    std::vector<StepSummary> out;
    out.reserve(ep.plan.steps.size());
    for (size_t i = 0; i < ep.plan.steps.size(); ++i) {
        const PlanStep &st = ep.plan.steps[i];
        const StepEval &ev = ep.evals[i];
        StepSummary r;
        r.lane = st.lane;
        r.name = st.name;
        r.category = ev.category;
        r.count = st.repeatMicrobatch * st.repeatLayer;
        r.perInstance = ev.perInstance;
        r.total = ev.total;
        switch (st.kind) {
          case StepKind::Compute: {
            r.kind = "compute";
            const double inst =
                double(st.repeatLayer) * double(st.repeatMicrobatch);
            // Under Max only the winning part runs on the critical
            // stage, so only its work is charged.
            size_t winner = 0;
            if (st.combine == PartCombine::Max) {
                double best = -1.0;
                for (size_t pi = 0; pi < st.parts.size(); ++pi) {
                    double scaled = ev.partEsts[pi].time *
                                    st.parts[pi].scale;
                    if (scaled > best) {
                        best = scaled;
                        winner = pi;
                    }
                }
            }
            for (size_t pi = 0; pi < st.parts.size(); ++pi) {
                if (st.combine == PartCombine::Max && pi != winner)
                    continue;
                const KernelEstimate &est = ev.partEsts[pi];
                const double s = st.parts[pi].scale * inst;
                r.flops += est.flops * s;
                if (!est.bytesPerLevel.empty())
                    r.dramBytes += est.bytesPerLevel[0] * s;
                r.overhead += est.overhead * s;
            }
            r.detail = ev.partEsts[0].boundName(ep.dev);
            break;
          }
          case StepKind::Collective:
            r.kind = "collective";
            r.detail = scopeName(st.scope);
            break;
          case StepKind::Synthetic:
            r.kind = "synthetic";
            break;
        }
        out.push_back(std::move(r));
    }
    return out;
}

JsonValue
summariesToJson(const std::vector<StepSummary> &steps,
                const std::string &phase)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::string(kSchemaName));
    doc.set("version", JsonValue::number(double(kSchemaVersion)));
    doc.set("phase", JsonValue::string(phase));

    JsonValue arr = JsonValue::array();
    double total_time = 0.0, total_flops = 0.0, total_bytes = 0.0;
    for (const StepSummary &r : steps) {
        JsonValue e = JsonValue::object();
        e.set("lane", JsonValue::string(r.lane));
        e.set("name", JsonValue::string(r.name));
        e.set("category", JsonValue::string(r.category));
        e.set("kind", JsonValue::string(r.kind));
        e.set("count", JsonValue::number(double(r.count)));
        e.set("per_instance_s", JsonValue::number(r.perInstance));
        e.set("total_s", JsonValue::number(r.total));
        e.set("flops", JsonValue::number(r.flops));
        e.set("dram_bytes", JsonValue::number(r.dramBytes));
        e.set("overhead_s", JsonValue::number(r.overhead));
        e.set("detail", JsonValue::string(r.detail));
        arr.push(std::move(e));
        total_time += r.total;
        total_flops += r.flops;
        total_bytes += r.dramBytes;
    }
    doc.set("steps", std::move(arr));

    JsonValue totals = JsonValue::object();
    totals.set("time", JsonValue::number(total_time));
    totals.set("flops", JsonValue::number(total_flops));
    totals.set("dram_bytes", JsonValue::number(total_bytes));
    doc.set("totals", std::move(totals));
    return doc;
}

std::vector<StepSummary>
summariesFromJson(const JsonValue &doc, std::string *phase)
{
    checkConfig(doc.isObject(), "kernel plan: document not an object");
    checkConfig(doc.getString("schema", "") == kSchemaName,
                "kernel plan: unexpected schema '" +
                    doc.getString("schema", "") + "'");
    checkConfig(doc.getInt("version", 0) == kSchemaVersion,
                "kernel plan: unsupported version");
    if (phase != nullptr)
        *phase = doc.getString("phase", "");

    std::vector<StepSummary> out;
    for (const JsonValue &e : doc.at("steps").asArray()) {
        StepSummary r;
        r.lane = e.at("lane").asString();
        r.name = e.at("name").asString();
        r.category = e.getString("category", "");
        r.kind = e.getString("kind", "");
        r.count = e.getInt("count", 1);
        r.perInstance = e.getNumber("per_instance_s", 0.0);
        r.total = e.getNumber("total_s", 0.0);
        r.flops = e.getNumber("flops", 0.0);
        r.dramBytes = e.getNumber("dram_bytes", 0.0);
        r.overhead = e.getNumber("overhead_s", 0.0);
        r.detail = e.getString("detail", "");
        out.push_back(std::move(r));
    }
    return out;
}

JsonValue
planJson(const EvaluatedPlan &ep)
{
    return summariesToJson(summarizePlan(ep), ep.plan.phase);
}

std::string
planCsv(const EvaluatedPlan &ep)
{
    std::string out = "lane,name,category,kind,count,per_instance_s,"
                      "total_s,flops,dram_bytes,overhead_s,detail\n";
    for (const StepSummary &r : summarizePlan(ep)) {
        out += csvCell(r.lane);
        out += ',';
        out += csvCell(r.name);
        out += ',';
        out += csvCell(r.category);
        out += ',';
        out += r.kind;
        out += ',';
        out += std::to_string(r.count);
        out += ',';
        out += csvNumber(r.perInstance);
        out += ',';
        out += csvNumber(r.total);
        out += ',';
        out += csvNumber(r.flops);
        out += ',';
        out += csvNumber(r.dramBytes);
        out += ',';
        out += csvNumber(r.overhead);
        out += ',';
        out += csvCell(r.detail);
        out += '\n';
    }
    return out;
}

} // namespace plan
} // namespace optimus
