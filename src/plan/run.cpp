/**
 * @file
 * Thin drivers over the plan pipeline: lower -> evaluate -> fold,
 * plus the non-plan tails (memory footprint, model FLOPs / MFU,
 * KV-cache / weight accounting) that evaluateTraining and
 * evaluateInference return.
 */

#include "plan/plan.h"

#include "memory/footprint.h"
#include "memory/kv_cache.h"
#include "trace/trace.h"

namespace optimus {
namespace plan {

namespace {

/** Model FLOPs for one batch (fwd + bwd, no recompute). */
double
modelFlopsPerBatch(const TransformerConfig &cfg, long long global_batch,
                   long long seq, Precision precision)
{
    LayerGraphParams gp;
    gp.batch = global_batch;
    gp.seq = seq;
    gp.tensorParallel = 1;
    gp.training = true;
    gp.precision = precision;

    double layer_fwd = 0.0;
    for (const Op &op : layerForwardOps(cfg, gp))
        layer_fwd += opFlops(op);

    double head_fwd = 0.0;
    for (const Op &op : headOps(cfg, global_batch * seq, 1, precision))
        head_fwd += opFlops(op);

    // Backward is twice the forward work.
    return 3.0 * (layer_fwd * double(cfg.numLayers) + head_fwd);
}

} // namespace

TrainingRun
runTraining(const TransformerConfig &cfg, const System &sys,
            const ParallelConfig &par, long long global_batch,
            const TrainingOptions &opts, bool detail)
{
    KernelPlan kp = lowerTraining(cfg, sys, par, global_batch, opts);

    EvaluateOptions eo;
    eo.detail = detail || tracing(opts.trace);
    eo.cache = opts.evalCache;

    TrainingRun run;
    run.plan = evaluatePlan(std::move(kp), sys, eo);
    FoldedTraining f = foldTraining(run.plan, opts.trace);

    TrainingReport &rep = run.report;
    rep.time = f.time;
    rep.layerForward = f.layerForward;
    rep.layerBackward = f.layerBackward;
    rep.microbatches = run.plan.plan.microbatches;
    rep.bubbleFraction = run.plan.plan.bubbleFraction;
    rep.timePerBatch = rep.time.total();

    rep.memory = trainingMemoryPerDevice(cfg, par, global_batch,
                                         opts.seqLength, opts.recompute,
                                         opts.memory);
    rep.modelFlops = modelFlopsPerBatch(cfg, global_batch,
                                        opts.seqLength, opts.precision);
    double system_peak = run.plan.dev.matrixFlops(opts.precision) *
                         double(sys.totalDevices());
    rep.mfu = rep.modelFlops / (rep.timePerBatch * system_peak);
    if (tracing(opts.trace)) {
        opts.trace->counterSet("train/time-per-batch-s",
                               rep.timePerBatch);
        opts.trace->counterSet("train/mfu", rep.mfu);
    }
    return run;
}

InferenceRun
runInference(const TransformerConfig &cfg, const System &sys,
             const InferenceOptions &opts, bool detail)
{
    KernelPlan kp = lowerInference(cfg, sys, opts);

    EvaluateOptions eo;
    eo.detail = detail || tracing(opts.trace);
    eo.cache = opts.evalCache;

    InferenceRun run;
    run.plan = evaluatePlan(std::move(kp), sys, eo);
    FoldedInference f = foldInference(run.plan, opts.trace);

    InferenceReport &rep = run.report;
    rep.prefill = f.prefill;
    rep.decode = f.decode;
    rep.totalLatency = rep.prefill.time + rep.decode.time;

    long long final_ctx = opts.promptLength + opts.generateLength;
    rep.kvCacheBytes = kvCacheBytes(cfg, opts.batch, final_ctx,
                                    opts.kvPrecision);
    rep.weightBytes = modelWeightBytes(cfg, opts.precision);
    rep.fitsDeviceMemory =
        (rep.weightBytes + rep.kvCacheBytes) /
            double(opts.tensorParallel * opts.pipelineParallel) <=
        run.plan.dev.dram().capacity;
    return run;
}

} // namespace plan
} // namespace optimus
