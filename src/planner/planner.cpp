#include "planner/planner.h"

#include <algorithm>

#include "exec/exec.h"
#include "lint/lint.h"
#include "memory/footprint.h"
#include "plan/plan.h"
#include "trace/trace.h"
#include "util/error.h"

namespace optimus {

namespace {

/** Deepest interleaving for @p pp (one transformer layer per chunk). */
long long
deepestInterleave(const TransformerConfig &model, long long pp)
{
    return model.numLayers / pp;
}

} // namespace

std::vector<TrainingPlan>
planTraining(const TransformerConfig &model, const System &sys,
             long long global_batch, const TrainingPlannerOptions &opts)
{
    model.validate();
    sys.validate();
    checkPositive(global_batch, "global batch");
    checkConfig(!opts.recomputeChoices.empty(),
                "planner needs at least one recompute choice");
    checkConfig(!opts.microbatchSizes.empty(),
                "planner needs at least one microbatch size");

    TraceSession *tr = opts.trace;
    const bool tron = tracing(tr);

    // Phase 1 (serial, cheap): enumerate the full candidate space,
    // pruning by lint and memory. The loop-invariant option fields
    // are built once, outside the recompute/zero loops.
    TrainingOptions base;
    base.precision = opts.precision;
    base.seqLength = opts.seqLength;
    base.flashAttention = opts.flashAttention;
    base.memory.flashAttention = opts.flashAttention;
    base.memory.activationBytes =
        std::max(1.0, precisionBytes(opts.precision));

    struct Candidate
    {
        ParallelConfig parallel;
        TrainingOptions options;
    };
    std::vector<Candidate> candidates;

    for (long long tp = 1; tp <= sys.devicesPerNode; tp *= 2) {
        for (long long pp = 1;
             tp * pp <= sys.totalDevices() && pp <= model.numLayers;
             pp *= 2) {
            long long dp = sys.totalDevices() / (tp * pp);

            std::vector<long long> interleaves = {1};
            if (opts.tryInterleaving && pp > 1) {
                long long v = deepestInterleave(model, pp);
                if (v > 1)
                    interleaves.push_back(v);
            }

            for (long long micro : opts.microbatchSizes) {
                for (long long v : interleaves) {
                    ParallelConfig par;
                    par.dataParallel = dp;
                    par.tensorParallel = tp;
                    par.pipelineParallel = pp;
                    par.sequenceParallel =
                        opts.allowSequenceParallel && tp > 1;
                    par.microbatchSize = micro;
                    if (v > 1) {
                        par.schedule =
                            PipelineSchedule::Interleaved1F1B;
                        par.interleavedStages = v;
                    }
                    // One lint call replaces the hand-rolled
                    // divisibility checks: skip illegal mappings
                    // before touching memory or timing models.
                    if (tron)
                        tr->counterAdd(
                            "planner/mappings-enumerated");
                    if (!lint::isLegalMapping(model, sys, par,
                                              global_batch)) {
                        if (tron)
                            tr->counterAdd(
                                "planner/pruned-illegal");
                        continue;
                    }

                    for (Recompute r : opts.recomputeChoices) {
                        TrainingOptions topts = base;
                        topts.recompute = r;
                        for (int zero : opts.zeroStages) {
                            topts.memory.zeroStage = zero;

                            TrainingMemory mem =
                                trainingMemoryPerDevice(
                                    model, par, global_batch,
                                    opts.seqLength, r, topts.memory);
                            if (mem.total() >
                                sys.device.dram().capacity) {
                                if (tron)
                                    tr->counterAdd(
                                        "planner/pruned-memory");
                                continue;
                            }
                            if (tron)
                                tr->counterAdd(
                                    "planner/plans-evaluated");
                            candidates.push_back(
                                Candidate{par, topts});
                        }
                    }
                }
            }
        }
    }

    // Phase 2: evaluate every surviving candidate. Evaluations are
    // independent pure functions, fanned out through the exec layer
    // and written by slot — the plans vector is bit-identical to a
    // serial run at any thread count (and sized from the candidate
    // count up front). Candidates with different (tp, microbatch,
    // recompute) mappings still lower to many identical kernels on
    // the same device, so one shared estimate cache serves the whole
    // sweep; cached estimates are exact replays, keeping results
    // independent of hit order and thread count.
    plan::EvalCache cache;
    std::vector<TrainingPlan> plans =
        exec::parallelMap(
            static_cast<long long>(candidates.size()), opts.threads,
            [&](long long i) {
                const Candidate &c =
                    candidates[static_cast<size_t>(i)];
                TrainingPlan plan;
                plan.parallel = c.parallel;
                plan.options = c.options;
                plan.options.evalCache = &cache;
                plan.report = evaluateTraining(
                    model, sys, c.parallel, global_batch,
                    plan.options);
                plan.options.evalCache = nullptr;
                return plan;
            });

    std::sort(plans.begin(), plans.end(),
              [](const TrainingPlan &a, const TrainingPlan &b) {
                  return a.report.timePerBatch <
                         b.report.timePerBatch;
              });
    if (plans.size() > opts.keep)
        plans.resize(opts.keep);
    return plans;
}

TrainingPlan
bestTrainingPlan(const TransformerConfig &model, const System &sys,
                 long long global_batch,
                 const TrainingPlannerOptions &opts)
{
    std::vector<TrainingPlan> plans =
        planTraining(model, sys, global_batch, opts);
    checkConfig(!plans.empty(),
                "no parallelization of " + model.name + " fits " +
                    sys.device.name + " memory at batch " +
                    std::to_string(global_batch));
    return plans.front();
}

std::vector<ServingPlan>
planServing(const TransformerConfig &model, const System &sys,
            const ServingPlannerOptions &opts)
{
    model.validate();
    sys.validate();
    checkPositive(opts.maxBatch, "maxBatch");

    std::vector<ServingPlan> plans;
    TraceSession *tr = opts.trace;
    const bool tron = tracing(tr);
    for (long long tp : opts.tensorParallelChoices) {
        if (tp > sys.totalDevices() || model.numHeads % tp != 0 ||
            model.ffnHidden % tp != 0) {
            if (tron)
                tr->counterAdd("planner/serving-tp-skipped");
            continue;
        }
        ServingOptions sopts = opts.serving;
        sopts.tensorParallel = tp;

        ServingPlan best;
        bool any = false;
        for (long long b = 1; b <= opts.maxBatch; b *= 2) {
            if (tron)
                tr->counterAdd("planner/serving-points");
            ServingPoint pt =
                evaluateServingPoint(model, sys, sopts, b);
            if (!pt.fits)
                break;
            if (opts.maxInterTokenLatency > 0.0 &&
                pt.interTokenLatency > opts.maxInterTokenLatency)
                break;  // latency grows with batch: stop here
            if (!any ||
                pt.tokensPerSecond > best.point.tokensPerSecond) {
                best.tensorParallel = tp;
                best.point = pt;
                best.tokensPerSecondPerDevice =
                    pt.tokensPerSecond / double(tp);
                any = true;
            }
        }
        if (any)
            plans.push_back(best);
    }

    std::sort(plans.begin(), plans.end(),
              [](const ServingPlan &a, const ServingPlan &b) {
                  return a.tokensPerSecondPerDevice >
                         b.tokensPerSecondPerDevice;
              });
    return plans;
}

} // namespace optimus
