/**
 * @file
 * Parallelization planner: enumerate valid DP/TP/PP/SP/EP mappings,
 * recomputation and interleaving choices for a model on a system,
 * discard those that overflow device memory, and rank the rest by
 * predicted performance — automating the workflow the paper's
 * Sec. 5.1 describes ("determine the best parallelism mapping or
 * training settings for an LLM model on a certain hardware system").
 */

#ifndef OPTIMUS_PLANNER_PLANNER_H
#define OPTIMUS_PLANNER_PLANNER_H

#include <vector>

#include "inference/serving.h"
#include "training/trainer.h"

namespace optimus {

class TraceSession;

/** Search-space switches for the training planner. */
struct TrainingPlannerOptions
{
    long long seqLength = 2048;
    Precision precision = Precision::FP16;
    bool allowSequenceParallel = true;
    bool flashAttention = false;
    std::vector<Recompute> recomputeChoices = {
        Recompute::None, Recompute::Selective, Recompute::Full};
    std::vector<int> zeroStages = {0};
    std::vector<long long> microbatchSizes = {1};
    /** Also try the deepest valid interleaving for each PP degree. */
    bool tryInterleaving = true;
    /** Keep at most this many ranked plans. */
    size_t keep = 10;

    /**
     * Worker threads for candidate evaluation (exec/exec.h): > 0 is
     * used as given, 0 defers to the OPTIMUS_THREADS environment
     * variable (default 1). Results are bit-identical at every
     * thread count.
     */
    int threads = 0;

    /**
     * Optional trace sink: counts candidate mappings enumerated
     * ("planner/mappings-enumerated"), mappings discarded by lint
     * ("planner/pruned-illegal") or memory ("planner/pruned-memory"),
     * and full evaluations ("planner/plans-evaluated").
     */
    TraceSession *trace = nullptr;
};

/** One viable plan with its predicted outcome. */
struct TrainingPlan
{
    ParallelConfig parallel;
    TrainingOptions options;
    TrainingReport report;
};

/**
 * Enumerate and rank training plans (fastest first). Returns an empty
 * vector when nothing fits device memory.
 */
std::vector<TrainingPlan> planTraining(
    const TransformerConfig &model, const System &sys,
    long long global_batch, const TrainingPlannerOptions &opts = {});

/** The fastest fitting plan; throws ConfigError when none fits. */
TrainingPlan bestTrainingPlan(const TransformerConfig &model,
                              const System &sys, long long global_batch,
                              const TrainingPlannerOptions &opts = {});

/** Search-space switches for the serving planner. */
struct ServingPlannerOptions
{
    ServingOptions serving;           ///< prompt/generate/precision
    double maxInterTokenLatency = 0.0; ///< SLO seconds; 0 = unlimited
    long long maxBatch = 256;
    std::vector<long long> tensorParallelChoices = {1, 2, 4, 8};

    /**
     * Optional trace sink: counts serving points evaluated
     * ("planner/serving-points") and TP choices skipped
     * ("planner/serving-tp-skipped").
     */
    TraceSession *trace = nullptr;
};

/** One viable serving deployment. */
struct ServingPlan
{
    long long tensorParallel = 1;
    ServingPoint point;
    /** Generated tokens per second per device (cost efficiency). */
    double tokensPerSecondPerDevice = 0.0;
};

/**
 * Rank serving deployments meeting the latency SLO by per-device
 * throughput (best first). Empty when the model fits nowhere.
 */
std::vector<ServingPlan> planServing(const TransformerConfig &model,
                                     const System &sys,
                                     const ServingPlannerOptions &opts);

} // namespace optimus

#endif // OPTIMUS_PLANNER_PLANNER_H
