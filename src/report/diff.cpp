#include "report/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace optimus {
namespace report {

namespace {

/** Deltas smaller than this are float noise, never drift. */
constexpr double kAbsFloor = 1e-12;

double
relPct(double a, double b)
{
    if (a == b)
        return 0.0;
    if (a == 0.0)
        return b > 0.0 ? 1e300 : -1e300;
    return 100.0 * (b - a) / std::fabs(a);
}

bool
beyond(double a, double b, double tol_pct)
{
    if (std::fabs(b - a) <= kAbsFloor)
        return false;
    return std::fabs(relPct(a, b)) > tol_pct;
}

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
pct(double v)
{
    if (std::fabs(v) >= 1e299)
        return v > 0 ? "+new" : "-new";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%+.4g%%", v);
    return buf;
}

/**
 * Diff two name->value maps into MetricDelta entries (changed values
 * only, union of keys, in @p a-then-@p b order without duplicates).
 */
template <typename Lookup>
void
diffNumericMaps(const std::vector<std::string> &keys, const Lookup &ga,
                const Lookup &gb, double tol_pct,
                std::vector<MetricDelta> &out)
{
    for (const std::string &key : keys) {
        const double *va = ga(key);
        const double *vb = gb(key);
        MetricDelta d;
        d.key = key;
        if (va != nullptr && vb != nullptr) {
            if (*va == *vb)
                continue;
            d.a = *va;
            d.b = *vb;
            d.beyondTolerance = beyond(*va, *vb, tol_pct);
        } else if (va != nullptr) {
            d.a = *va;
            d.onlyA = true;
            d.beyondTolerance = true;
        } else {
            d.b = *vb;
            d.onlyB = true;
            d.beyondTolerance = true;
        }
        out.push_back(std::move(d));
    }
}

std::vector<std::string>
unionKeys(const std::vector<std::string> &a,
          const std::vector<std::string> &b)
{
    std::vector<std::string> keys = a;
    std::set<std::string> seen(a.begin(), a.end());
    for (const std::string &k : b)
        if (seen.insert(k).second)
            keys.push_back(k);
    return keys;
}

} // namespace

double
MetricDelta::deltaPct() const
{
    return relPct(a, b);
}

double
KernelDelta::timeDeltaPct() const
{
    return relPct(a.time, b.time);
}

std::string
KernelDelta::component() const
{
    if (onlyA)
        return "removed";
    if (onlyB)
        return "added";
    if (boundFlip)
        return "bound";
    if (a.count != b.count)
        return "count";
    std::string parts;
    auto add = [&parts](const char *name) {
        if (!parts.empty())
            parts += "+";
        parts += name;
    };
    if (std::fabs(b.flops - a.flops) > kAbsFloor)
        add("flops");
    if (std::fabs(b.dramBytes - a.dramBytes) > kAbsFloor)
        add("bytes");
    if (std::fabs(b.overhead - a.overhead) > kAbsFloor)
        add("overhead");
    if (parts.empty() && std::fabs(b.time - a.time) > kAbsFloor)
        return "throughput";
    return parts;
}

bool
RunDiff::empty() const
{
    return comparable && !schemaMismatch && metrics.empty() &&
           kernels.empty() && validation.empty() && counters.empty() &&
           attrChanges.empty();
}

bool
RunDiff::drifted() const
{
    if (!comparable || schemaMismatch || !attrChanges.empty())
        return true;
    for (const MetricDelta &d : metrics)
        if (d.beyondTolerance)
            return true;
    for (const KernelDelta &d : kernels)
        if (d.beyondTolerance || d.boundFlip || d.onlyA || d.onlyB)
            return true;
    for (const MetricDelta &d : validation)
        if (d.beyondTolerance)
            return true;
    // Counters are informational only.
    return false;
}

RunDiff
diffRuns(const RunRecord &a, const RunRecord &b,
         const DiffOptions &opts)
{
    RunDiff diff;
    diff.fingerprintA = a.fingerprint;
    diff.fingerprintB = b.fingerprint;
    diff.comparable = a.fingerprint == b.fingerprint;
    diff.schemaMismatch = a.schemaVersion != b.schemaVersion;

    // ---- Metrics ----
    {
        std::vector<std::string> ka, kb;
        for (const auto &kv : a.metrics)
            ka.push_back(kv.first);
        for (const auto &kv : b.metrics)
            kb.push_back(kv.first);
        auto lookup = [](const RunRecord &r) {
            return [&r](const std::string &key) -> const double * {
                for (const auto &kv : r.metrics)
                    if (kv.first == key)
                        return &kv.second;
                return nullptr;
            };
        };
        diffNumericMaps(unionKeys(ka, kb), lookup(a), lookup(b),
                        opts.tolPct, diff.metrics);
    }

    // ---- Kernels (stable-identity match) ----
    {
        std::map<std::string, const KernelStat *> ia, ib;
        std::vector<std::string> ka, kb;
        for (const KernelStat &k : a.kernels) {
            ia[k.key] = &k;
            ka.push_back(k.key);
        }
        for (const KernelStat &k : b.kernels) {
            ib[k.key] = &k;
            kb.push_back(k.key);
        }
        for (const std::string &key : unionKeys(ka, kb)) {
            auto pa = ia.find(key);
            auto pb = ib.find(key);
            KernelDelta d;
            d.key = key;
            if (pa != ia.end() && pb != ib.end()) {
                d.a = *pa->second;
                d.b = *pb->second;
                d.boundFlip = d.a.bound != d.b.bound;
                d.beyondTolerance =
                    beyond(d.a.time, d.b.time, opts.tolPct);
                // Unchanged in every recorded dimension: not a diff.
                if (!d.boundFlip && d.a.time == d.b.time &&
                    d.a.flops == d.b.flops &&
                    d.a.dramBytes == d.b.dramBytes &&
                    d.a.overhead == d.b.overhead &&
                    d.a.count == d.b.count)
                    continue;
            } else if (pa != ia.end()) {
                d.a = *pa->second;
                d.onlyA = true;
            } else {
                d.b = *pb->second;
                d.onlyB = true;
            }
            diff.kernels.push_back(std::move(d));
        }
    }

    // ---- Validation rows (match by name, gate on predictions) ----
    {
        std::vector<std::string> ka, kb;
        std::map<std::string, const ValidationRow *> ia, ib;
        for (const ValidationRow &r : a.validation) {
            ia[r.name] = &r;
            ka.push_back(r.name);
        }
        for (const ValidationRow &r : b.validation) {
            ib[r.name] = &r;
            kb.push_back(r.name);
        }
        auto lookup = [](const std::map<std::string,
                                        const ValidationRow *> &m) {
            return [&m](const std::string &key) -> const double * {
                auto it = m.find(key);
                return it == m.end() ? nullptr
                                     : &it->second->predicted;
            };
        };
        diffNumericMaps(unionKeys(ka, kb), lookup(ia), lookup(ib),
                        opts.tolPct, diff.validation);
        for (const std::string &key : unionKeys(ka, kb)) {
            auto pa = ia.find(key);
            auto pb = ib.find(key);
            if (pa != ia.end() && pb != ib.end() &&
                pa->second->reference != pb->second->reference)
                diff.attrChanges.push_back(
                    "validation row '" + key +
                    "' reference changed: " +
                    num(pa->second->reference) + " -> " +
                    num(pb->second->reference));
        }
    }

    // ---- Counters (informational) ----
    {
        std::vector<std::string> ka, kb;
        for (const auto &kv : a.counters)
            ka.push_back(kv.first);
        for (const auto &kv : b.counters)
            kb.push_back(kv.first);
        auto lookup = [](const std::map<std::string, double> &m) {
            return [&m](const std::string &key) -> const double * {
                auto it = m.find(key);
                return it == m.end() ? nullptr : &it->second;
            };
        };
        diffNumericMaps(unionKeys(ka, kb), lookup(a.counters),
                        lookup(b.counters), opts.tolPct,
                        diff.counters);
    }

    // ---- Attributes ----
    {
        std::map<std::string, std::string> ia(a.attrs.begin(),
                                              a.attrs.end()),
            ib(b.attrs.begin(), b.attrs.end());
        for (const auto &kv : ia) {
            auto it = ib.find(kv.first);
            if (it == ib.end())
                diff.attrChanges.push_back("attr '" + kv.first +
                                           "' removed (was '" +
                                           kv.second + "')");
            else if (it->second != kv.second)
                diff.attrChanges.push_back(
                    "attr '" + kv.first + "' changed: '" + kv.second +
                    "' -> '" + it->second + "'");
        }
        for (const auto &kv : ib)
            if (ia.find(kv.first) == ia.end())
                diff.attrChanges.push_back("attr '" + kv.first +
                                           "' added ('" + kv.second +
                                           "')");
    }

    return diff;
}

int
checkExitCode(const RunDiff &diff)
{
    return diff.drifted() ? 1 : 0;
}

std::string
diffText(const RunDiff &diff, const RunRecord &a, const RunRecord &b,
         const DiffOptions &opts)
{
    std::ostringstream os;
    auto describe = [&os](const char *tag, const RunRecord &r) {
        os << tag << ": " << r.label << " (" << r.kind << ", tool "
           << r.toolVersion << ", git " << r.gitSha << ", fingerprint "
           << r.fingerprint << ", " << r.threads << " thread"
           << (r.threads == 1 ? "" : "s") << ")\n";
    };
    describe("a", a);
    describe("b", b);

    if (diff.schemaMismatch)
        os << "SCHEMA MISMATCH: a is schema " << a.schemaVersion
           << ", b is schema " << b.schemaVersion << "\n";
    if (!diff.comparable)
        os << "CONFIG DRIFT: fingerprints differ ("
           << diff.fingerprintA << " vs " << diff.fingerprintB
           << ") — the runs evaluate different configs\n";

    if (diff.empty()) {
        os << "\nrecords are identical\n";
        return os.str();
    }

    if (!diff.metrics.empty()) {
        Table t({"metric", "a", "b", "delta", "flag"});
        for (const MetricDelta &d : diff.metrics) {
            t.beginRow()
                .cell(d.key)
                .cell(d.onlyA ? num(d.a) : d.onlyB ? "-" : num(d.a))
                .cell(d.onlyB ? num(d.b) : d.onlyA ? "-" : num(d.b))
                .cell(d.onlyA ? "removed"
                              : d.onlyB ? "added" : pct(d.deltaPct()))
                .cell(d.beyondTolerance ? "DRIFT" : "");
            t.endRow();
        }
        os << "\n";
        t.print(os);
    }

    // Attribute the total-time delta to its recorded components.
    if (a.hasMetric("time/total") && b.hasMetric("time/total") &&
        a.metric("time/total") != b.metric("time/total")) {
        os << "\ntime/total delta "
           << num(b.metric("time/total") - a.metric("time/total"))
           << " s decomposes as:";
        for (const char *key :
             {"time/compute", "time/network", "time/other"}) {
            if (!a.hasMetric(key) && !b.hasMetric(key))
                continue;
            os << "  " << (key + 5) << " "
               << num(b.metric(key) - a.metric(key)) << " s";
        }
        os << "\n";
    }

    if (!diff.kernels.empty()) {
        Table t({"kernel", "t_a (s)", "t_b (s)", "delta", "component",
                 "bound", "flag"});
        for (const KernelDelta &d : diff.kernels) {
            t.beginRow()
                .cell(d.key)
                .cell(d.onlyB ? "-" : num(d.a.time))
                .cell(d.onlyA ? "-" : num(d.b.time))
                .cell(d.onlyA || d.onlyB ? "" : pct(d.timeDeltaPct()))
                .cell(d.component())
                .cell(d.boundFlip ? d.a.bound + " -> " + d.b.bound
                                  : (d.onlyB ? d.b.bound : d.a.bound))
                .cell(d.beyondTolerance || d.boundFlip || d.onlyA ||
                              d.onlyB
                          ? "DRIFT"
                          : "");
            t.endRow();
        }
        os << "\n";
        t.print(os);
    }

    if (!diff.validation.empty()) {
        Table t({"validation row", "pred_a", "pred_b", "delta",
                 "flag"});
        for (const MetricDelta &d : diff.validation) {
            t.beginRow()
                .cell(d.key)
                .cell(d.onlyB ? "-" : num(d.a))
                .cell(d.onlyA ? "-" : num(d.b))
                .cell(d.onlyA ? "removed"
                              : d.onlyB ? "added" : pct(d.deltaPct()))
                .cell(d.beyondTolerance ? "DRIFT" : "");
            t.endRow();
        }
        os << "\n";
        t.print(os);
    }

    if (!diff.counters.empty()) {
        Table t({"counter (informational)", "a", "b"});
        for (const MetricDelta &d : diff.counters) {
            t.beginRow()
                .cell(d.key)
                .cell(d.onlyB ? "-" : num(d.a))
                .cell(d.onlyA ? "-" : num(d.b));
            t.endRow();
        }
        os << "\n";
        t.print(os);
    }

    for (const std::string &c : diff.attrChanges)
        os << "\n" << c;
    if (!diff.attrChanges.empty())
        os << "\n";

    int gated = 0;
    for (const MetricDelta &d : diff.metrics)
        gated += d.beyondTolerance ? 1 : 0;
    for (const KernelDelta &d : diff.kernels)
        gated += (d.beyondTolerance || d.boundFlip || d.onlyA ||
                  d.onlyB)
                     ? 1
                     : 0;
    for (const MetricDelta &d : diff.validation)
        gated += d.beyondTolerance ? 1 : 0;
    os << "\n";
    if (diff.drifted())
        os << "DRIFT: " << gated << " value(s) beyond ±"
           << num(opts.tolPct) << "% tolerance"
           << (diff.attrChanges.empty() ? ""
                                        : " (plus attribute changes)")
           << (diff.comparable ? "" : " (plus config drift)") << "\n";
    else
        os << "within ±" << num(opts.tolPct) << "% tolerance ("
           << diff.metrics.size() + diff.kernels.size() +
                  diff.validation.size()
           << " sub-tolerance difference(s))\n";
    return os.str();
}

JsonValue
toJson(const RunDiff &diff)
{
    JsonValue j = JsonValue::object();
    j.set("comparable", JsonValue::boolean(diff.comparable));
    j.set("schema_mismatch",
          JsonValue::boolean(diff.schemaMismatch));
    j.set("fingerprint_a", JsonValue::string(diff.fingerprintA));
    j.set("fingerprint_b", JsonValue::string(diff.fingerprintB));
    j.set("drifted", JsonValue::boolean(diff.drifted()));

    auto metricArray = [](const std::vector<MetricDelta> &rows) {
        JsonValue arr = JsonValue::array();
        for (const MetricDelta &d : rows) {
            JsonValue e = JsonValue::object();
            e.set("key", JsonValue::string(d.key));
            if (!d.onlyB)
                e.set("a", JsonValue::number(d.a));
            if (!d.onlyA)
                e.set("b", JsonValue::number(d.b));
            if (!d.onlyA && !d.onlyB)
                e.set("delta_pct", JsonValue::number(d.deltaPct()));
            e.set("drift", JsonValue::boolean(d.beyondTolerance));
            arr.push(std::move(e));
        }
        return arr;
    };
    j.set("metrics", metricArray(diff.metrics));
    j.set("validation", metricArray(diff.validation));
    j.set("counters", metricArray(diff.counters));

    JsonValue kernels = JsonValue::array();
    for (const KernelDelta &d : diff.kernels) {
        JsonValue e = JsonValue::object();
        e.set("key", JsonValue::string(d.key));
        if (!d.onlyB) {
            e.set("time_a", JsonValue::number(d.a.time));
            e.set("bound_a", JsonValue::string(d.a.bound));
        }
        if (!d.onlyA) {
            e.set("time_b", JsonValue::number(d.b.time));
            e.set("bound_b", JsonValue::string(d.b.bound));
        }
        if (!d.onlyA && !d.onlyB)
            e.set("time_delta_pct",
                  JsonValue::number(d.timeDeltaPct()));
        e.set("component", JsonValue::string(d.component()));
        e.set("bound_flip", JsonValue::boolean(d.boundFlip));
        e.set("drift", JsonValue::boolean(d.beyondTolerance ||
                                          d.boundFlip || d.onlyA ||
                                          d.onlyB));
        kernels.push(std::move(e));
    }
    j.set("kernels", std::move(kernels));

    JsonValue attrs = JsonValue::array();
    for (const std::string &c : diff.attrChanges)
        attrs.push(JsonValue::string(c));
    j.set("attr_changes", std::move(attrs));
    return j;
}

} // namespace report
} // namespace optimus
