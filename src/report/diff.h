/**
 * @file
 * RunRecord diff & attribution engine, and the CI regression
 * sentinel's decision logic.
 *
 * diffRuns() matches two ledger entries metric by metric, kernel by
 * kernel (stable "<lane>/<name>" identity) and validation row by row,
 * computes relative deltas, decomposes the top-level time delta into
 * its compute / network / other components, and flags structural
 * drift that no tolerance excuses: bound-class flips, kernels present
 * on only one side, missing metrics, attribute changes, and config
 * fingerprint mismatches.
 *
 * Drift semantics (what `optimus_cli diff --check` gates on):
 *  - a metric, kernel time, or validation prediction whose relative
 *    delta exceeds DiffOptions::tolPct;
 *  - any structural drift listed above.
 * Counters are reported for context but never gate: totals such as
 * tile-cache hits or exec/threads legitimately vary with thread
 * count. Wall-clock and git SHA are metadata, never compared.
 */

#ifndef OPTIMUS_REPORT_DIFF_H
#define OPTIMUS_REPORT_DIFF_H

#include <string>
#include <vector>

#include "report/record.h"
#include "util/table.h"

namespace optimus {
namespace report {

/** Tolerances of a diff run. */
struct DiffOptions
{
    /** Relative drift allowed per metric, percent. */
    double tolPct = 0.5;
};

/** One changed (or one-sided) numeric value. */
struct MetricDelta
{
    std::string key;
    double a = 0.0;
    double b = 0.0;
    bool onlyA = false;      ///< present only in the first record
    bool onlyB = false;      ///< present only in the second record
    bool beyondTolerance = false;

    /** Relative delta vs @p a, percent (signed; huge when a == 0). */
    double deltaPct() const;
};

/** One changed (or one-sided) kernel aggregate. */
struct KernelDelta
{
    std::string key;
    KernelStat a;
    KernelStat b;
    bool onlyA = false;
    bool onlyB = false;
    bool boundFlip = false;  ///< bound class changed (always drift)
    bool beyondTolerance = false;

    /** Relative time delta vs a.time, percent. */
    double timeDeltaPct() const;

    /**
     * Attribution of the time delta: which recorded component moved.
     * One of "flops", "bytes", "overhead", "count", "bound",
     * "throughput" (time moved while work stayed identical — an
     * efficiency/model change), or "" when nothing changed.
     */
    std::string component() const;
};

/** Full result of diffing two RunRecords. */
struct RunDiff
{
    /** False when the config fingerprints differ (counts as drift). */
    bool comparable = true;
    bool schemaMismatch = false;
    std::string fingerprintA;
    std::string fingerprintB;

    std::vector<MetricDelta> metrics;      ///< changed metrics only
    std::vector<KernelDelta> kernels;      ///< changed kernels only
    std::vector<MetricDelta> validation;   ///< changed predictions
    std::vector<MetricDelta> counters;     ///< informational only
    /** "key: 'a' -> 'b'" descriptions of changed attributes. */
    std::vector<std::string> attrChanges;

    /** True when nothing differs at all (counters included). */
    bool empty() const;

    /** True when any gated difference exceeds tolerance. */
    bool drifted() const;
};

/** Compare two ledger entries. */
RunDiff diffRuns(const RunRecord &a, const RunRecord &b,
                 const DiffOptions &opts = {});

/** Sentinel exit code: 0 clean, 1 drifted. */
int checkExitCode(const RunDiff &diff);

/** Human-readable report (decomposition included). */
std::string diffText(const RunDiff &diff, const RunRecord &a,
                     const RunRecord &b, const DiffOptions &opts);

/** Machine-readable report. */
JsonValue toJson(const RunDiff &diff);

} // namespace report
} // namespace optimus

#endif // OPTIMUS_REPORT_DIFF_H
