#include "report/record.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "config/serialize.h"
#include "exec/exec.h"
#include "plan/plan.h"
#include "report/version.h"
#include "trace/trace.h"
#include "util/error.h"

namespace optimus {
namespace report {

namespace {

using clock = std::chrono::steady_clock;

double
secondsSince(clock::time_point t0)
{
    return std::chrono::duration<double>(clock::now() - t0).count();
}

/** Stamp build identity and fingerprint onto a fresh record. */
RunRecord
beginRecord(const std::string &kind, const std::string &label,
            JsonValue config)
{
    RunRecord rec;
    rec.schemaVersion = kSchemaVersion;
    rec.toolVersion = toolVersion();
    rec.gitSha = gitSha();
    rec.kind = kind;
    rec.label = label;
    rec.fingerprint = fingerprintJson(config);
    rec.config = std::move(config);
    return rec;
}

/** Fill rec.kernels straight from the evaluated plan (no trace). */
void
planKernels(RunRecord &rec, const plan::EvaluatedPlan &ep)
{
    rec.kernels.clear();
    std::vector<plan::KernelAggregate> aggs = plan::kernelAggregates(ep);
    rec.kernels.reserve(aggs.size());
    for (plan::KernelAggregate &a : aggs) {
        KernelStat k;
        k.key = std::move(a.key);
        k.category = std::move(a.category);
        k.count = a.count;
        k.time = a.time;
        k.flops = a.flops;
        k.dramBytes = a.dramBytes;
        k.overhead = a.overhead;
        k.bound = std::move(a.bound);
        rec.kernels.push_back(std::move(k));
    }
}

} // namespace

void
RunRecord::setMetric(const std::string &key, double value)
{
    for (auto &kv : metrics)
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    metrics.emplace_back(key, value);
}

bool
RunRecord::hasMetric(const std::string &key) const
{
    for (const auto &kv : metrics)
        if (kv.first == key)
            return true;
    return false;
}

double
RunRecord::metric(const std::string &key) const
{
    for (const auto &kv : metrics)
        if (kv.first == key)
            return kv.second;
    return 0.0;
}

void
RunRecord::setAttr(const std::string &key, const std::string &value)
{
    for (auto &kv : attrs)
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    attrs.emplace_back(key, value);
}

std::string
fingerprintJson(const JsonValue &config)
{
    // FNV-1a 64 over the compact dump: dependency-free, stable across
    // platforms, and sensitive to every serialized field.
    const std::string text = config.dump();
    std::uint64_t h = 1469598103934665603ull;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

void
foldTrace(RunRecord &rec, const TraceSession &session)
{
    struct Agg
    {
        KernelStat stat;
        std::map<std::string, double> boundTime;
    };
    std::map<std::string, Agg> byKey;

    const std::vector<TraceLane> &lanes = session.lanes();
    for (const TraceSpan &s : session.spans()) {
        if (!s.isKernel())
            continue;
        const std::string key =
            lanes.at(static_cast<size_t>(s.lane)).name + "/" + s.name;
        Agg &a = byKey[key];
        if (a.stat.count == 0) {
            a.stat.key = key;
            a.stat.category = s.category;
        }
        ++a.stat.count;
        a.stat.time += s.duration;
        a.stat.flops += s.flops;
        a.stat.dramBytes += s.dramBytes();
        a.stat.overhead += s.overhead;
        a.boundTime[s.bound] += s.duration;
    }

    rec.kernels.clear();
    rec.kernels.reserve(byKey.size());
    for (auto &kv : byKey) {
        // A kernel whose bound class varies within the run (e.g. a
        // decode GEMV flipping DRAM -> L2 as the context grows) is
        // labeled by its time-dominant class; ties break
        // lexicographically so the label is deterministic.
        Agg &a = kv.second;
        double best = -1.0;
        for (const auto &bt : a.boundTime)
            if (bt.second > best) {
                best = bt.second;
                a.stat.bound = bt.first;
            }
        rec.kernels.push_back(std::move(a.stat));
    }

    for (const auto &kv : session.counters())
        rec.counters[kv.first] = kv.second;
}

JsonValue
toJson(const RunRecord &rec)
{
    JsonValue j = JsonValue::object();
    j.set("schema_version",
          JsonValue::number(double(rec.schemaVersion)));
    JsonValue tool = JsonValue::object();
    tool.set("version", JsonValue::string(rec.toolVersion));
    tool.set("git_sha", JsonValue::string(rec.gitSha));
    j.set("tool", std::move(tool));
    j.set("kind", JsonValue::string(rec.kind));
    j.set("label", JsonValue::string(rec.label));
    j.set("fingerprint", JsonValue::string(rec.fingerprint));
    j.set("wall_seconds", JsonValue::number(rec.wallSeconds));
    j.set("threads", JsonValue::number(double(rec.threads)));
    j.set("config", rec.config);

    JsonValue metrics = JsonValue::object();
    for (const auto &kv : rec.metrics)
        metrics.set(kv.first, JsonValue::number(kv.second));
    j.set("metrics", std::move(metrics));

    JsonValue kernels = JsonValue::array();
    for (const KernelStat &k : rec.kernels) {
        JsonValue e = JsonValue::object();
        e.set("key", JsonValue::string(k.key));
        e.set("category", JsonValue::string(k.category));
        e.set("count", JsonValue::number(double(k.count)));
        e.set("time", JsonValue::number(k.time));
        e.set("flops", JsonValue::number(k.flops));
        e.set("dram_bytes", JsonValue::number(k.dramBytes));
        e.set("overhead", JsonValue::number(k.overhead));
        e.set("bound", JsonValue::string(k.bound));
        kernels.push(std::move(e));
    }
    j.set("kernels", std::move(kernels));

    JsonValue counters = JsonValue::object();
    for (const auto &kv : rec.counters)
        counters.set(kv.first, JsonValue::number(kv.second));
    j.set("counters", std::move(counters));

    JsonValue validation = JsonValue::array();
    for (const ValidationRow &row : rec.validation) {
        JsonValue e = JsonValue::object();
        e.set("name", JsonValue::string(row.name));
        e.set("reference", JsonValue::number(row.reference));
        e.set("predicted", JsonValue::number(row.predicted));
        validation.push(std::move(e));
    }
    j.set("validation", std::move(validation));

    JsonValue attrs = JsonValue::object();
    for (const auto &kv : rec.attrs)
        attrs.set(kv.first, JsonValue::string(kv.second));
    j.set("attrs", std::move(attrs));
    return j;
}

RunRecord
recordFromJson(const JsonValue &j)
{
    checkConfig(j.isObject(), "RunRecord: document is not an object");
    RunRecord rec;
    rec.schemaVersion =
        static_cast<int>(j.at("schema_version").asInt());
    checkConfig(rec.schemaVersion >= 1 &&
                    rec.schemaVersion <= kSchemaVersion,
                "RunRecord: schema_version " +
                    std::to_string(rec.schemaVersion) +
                    " not supported by this build (max " +
                    std::to_string(kSchemaVersion) + ")");
    const JsonValue &tool = j.at("tool");
    rec.toolVersion = tool.getString("version", "");
    rec.gitSha = tool.getString("git_sha", "");
    rec.kind = j.getString("kind", "");
    rec.label = j.getString("label", "");
    rec.fingerprint = j.getString("fingerprint", "");
    rec.wallSeconds = j.getNumber("wall_seconds", 0.0);
    rec.threads = static_cast<int>(j.getInt("threads", 1));
    if (j.has("config"))
        rec.config = j.at("config");

    if (j.has("metrics"))
        for (const auto &kv : j.at("metrics").asObject())
            rec.metrics.emplace_back(kv.first, kv.second.asNumber());

    if (j.has("kernels"))
        for (const JsonValue &e : j.at("kernels").asArray()) {
            KernelStat k;
            k.key = e.at("key").asString();
            k.category = e.getString("category", "");
            k.count = e.getInt("count", 0);
            k.time = e.getNumber("time", 0.0);
            k.flops = e.getNumber("flops", 0.0);
            k.dramBytes = e.getNumber("dram_bytes", 0.0);
            k.overhead = e.getNumber("overhead", 0.0);
            k.bound = e.getString("bound", "");
            rec.kernels.push_back(std::move(k));
        }

    if (j.has("counters"))
        for (const auto &kv : j.at("counters").asObject())
            rec.counters[kv.first] = kv.second.asNumber();

    if (j.has("validation"))
        for (const JsonValue &e : j.at("validation").asArray()) {
            ValidationRow row;
            row.name = e.at("name").asString();
            row.reference = e.getNumber("reference", 0.0);
            row.predicted = e.getNumber("predicted", 0.0);
            rec.validation.push_back(std::move(row));
        }

    if (j.has("attrs"))
        for (const auto &kv : j.at("attrs").asObject())
            rec.attrs.emplace_back(kv.first, kv.second.asString());
    return rec;
}

void
writeRunRecord(const std::string &path, const RunRecord &rec)
{
    std::ofstream f(path);
    checkConfig(f.good(), "cannot write RunRecord file " + path);
    f << toJson(rec).dump(2) << "\n";
    checkConfig(f.good(), "error writing RunRecord file " + path);
}

RunRecord
loadRunRecord(const std::string &path)
{
    std::ifstream in(path);
    checkConfig(in.good(), "cannot open RunRecord file " + path);
    std::stringstream ss;
    ss << in.rdbuf();
    return recordFromJson(JsonValue::parse(ss.str()));
}

RunRecord
recordTraining(const TransformerConfig &model, const System &sys,
               const ParallelConfig &par, long long global_batch,
               TrainingOptions opts, const std::string &label)
{
    JsonValue config = JsonValue::object();
    config.set("model", config::toJson(model));
    config.set("system", config::toJson(sys));
    config.set("parallel", config::toJson(par));
    config.set("batch", JsonValue::number(double(global_batch)));
    config.set("training", config::toJson(opts));
    RunRecord rec = beginRecord("training", label, std::move(config));
    rec.threads = resolveThreads();

    // The recorder reads kernel aggregates and counters straight off
    // the evaluated plan; no trace session is involved.
    opts.trace = nullptr;
    clock::time_point t0 = clock::now();
    plan::TrainingRun run = plan::runTraining(model, sys, par,
                                              global_batch, opts,
                                              /*detail=*/true);
    rec.wallSeconds = secondsSince(t0);
    const TrainingReport &rep = run.report;

    const TrainingBreakdown &t = rep.time;
    rec.setMetric("time/total", rep.timePerBatch);
    rec.setMetric("time/compute", t.compute());
    rec.setMetric("time/network", t.communication());
    rec.setMetric("time/other", t.other());
    rec.setMetric("time/forward", t.forward);
    rec.setMetric("time/backward", t.backward);
    rec.setMetric("time/recompute", t.recompute);
    rec.setMetric("time/embedding", t.embedding);
    rec.setMetric("time/tp-comm", t.tpComm);
    rec.setMetric("time/cp-comm", t.cpComm);
    rec.setMetric("time/ep-comm", t.epComm);
    rec.setMetric("time/pp-comm", t.ppComm);
    rec.setMetric("time/dp-comm", t.dpComm);
    rec.setMetric("time/bubble", t.bubble);
    rec.setMetric("time/optimizer", t.optimizer);
    rec.setMetric("mfu", rep.mfu);
    rec.setMetric("model-flops", rep.modelFlops);
    rec.setMetric("microbatches", double(rep.microbatches));
    rec.setMetric("bubble-fraction", rep.bubbleFraction);
    rec.setMetric("memory/total", rep.memory.total());
    rec.setMetric("memory/weights", rep.memory.weights);
    rec.setMetric("memory/gradients", rep.memory.gradients);
    rec.setMetric("memory/optimizer", rep.memory.optimizer);
    rec.setMetric("memory/activations", rep.memory.activations);

    planKernels(rec, run.plan);
    for (const auto &kv : run.plan.plan.counters)
        rec.counters[kv.first] = kv.second;
    rec.counters["train/time-per-batch-s"] = rep.timePerBatch;
    rec.counters["train/mfu"] = rep.mfu;
    return rec;
}

RunRecord
recordInference(const TransformerConfig &model, const System &sys,
                InferenceOptions opts, const std::string &label)
{
    JsonValue config = JsonValue::object();
    config.set("model", config::toJson(model));
    config.set("system", config::toJson(sys));
    config.set("inference", config::toJson(opts));
    RunRecord rec = beginRecord("inference", label, std::move(config));
    rec.threads = resolveThreads();

    // The recorder reads kernel aggregates and counters straight off
    // the evaluated plan; no trace session is involved.
    opts.trace = nullptr;
    clock::time_point t0 = clock::now();
    plan::InferenceRun run =
        plan::runInference(model, sys, opts, /*detail=*/true);
    rec.wallSeconds = secondsSince(t0);
    const InferenceReport &rep = run.report;

    auto phase = [&rec](const std::string &prefix,
                        const PhaseReport &p) {
        rec.setMetric(prefix + "/time", p.time);
        rec.setMetric(prefix + "/gemm-compute-bound",
                      p.computeBoundGemmTime);
        rec.setMetric(prefix + "/gemm-memory-bound",
                      p.memoryBoundGemmTime);
        rec.setMetric(prefix + "/other-kernels", p.otherKernelTime);
        rec.setMetric(prefix + "/comm", p.commTime);
        rec.setMetric(prefix + "/overhead", p.overheadTime);
        rec.setMetric(prefix + "/memory-time", p.memoryTime);
    };
    rec.setMetric("time/total", rep.totalLatency);
    rec.setMetric("time/compute", rep.prefill.computeBoundGemmTime +
                                      rep.prefill.memoryBoundGemmTime +
                                      rep.prefill.otherKernelTime +
                                      rep.decode.computeBoundGemmTime +
                                      rep.decode.memoryBoundGemmTime +
                                      rep.decode.otherKernelTime);
    rec.setMetric("time/network",
                  rep.prefill.commTime + rep.decode.commTime);
    phase("prefill", rep.prefill);
    phase("decode", rep.decode);
    rec.setMetric("memory/kv-cache", rep.kvCacheBytes);
    rec.setMetric("memory/weights", rep.weightBytes);
    rec.setMetric("memory/fits", rep.fitsDeviceMemory ? 1.0 : 0.0);

    planKernels(rec, run.plan);
    for (const auto &kv : run.plan.plan.counters)
        rec.counters[kv.first] = kv.second;
    return rec;
}

RunRecord
recordPlanner(const TransformerConfig &model, const System &sys,
              long long global_batch, TrainingPlannerOptions opts,
              const std::string &label)
{
    JsonValue config = JsonValue::object();
    config.set("model", config::toJson(model));
    config.set("system", config::toJson(sys));
    config.set("batch", JsonValue::number(double(global_batch)));
    JsonValue knobs = JsonValue::object();
    knobs.set("seqLength", JsonValue::number(double(opts.seqLength)));
    knobs.set("precision",
              JsonValue::string(precisionName(opts.precision)));
    knobs.set("keep", JsonValue::number(double(opts.keep)));
    knobs.set("flashAttention",
              JsonValue::boolean(opts.flashAttention));
    config.set("planner", std::move(knobs));
    RunRecord rec = beginRecord("planner", label, std::move(config));
    rec.threads = resolveThreads(opts.threads);

    TraceSession session;
    opts.trace = &session;
    clock::time_point t0 = clock::now();
    std::vector<TrainingPlan> plans =
        planTraining(model, sys, global_batch, opts);
    rec.wallSeconds = secondsSince(t0);

    rec.setMetric("plans/found", double(plans.size()));
    if (!plans.empty()) {
        const TrainingPlan &best = plans.front();
        rec.setMetric("best/time-per-batch",
                      best.report.timePerBatch);
        rec.setMetric("best/mfu", best.report.mfu);
        rec.setMetric("best/memory-total",
                      best.report.memory.total());
        rec.setAttr("best/mapping", best.parallel.label());
        rec.setAttr("best/schedule",
                    scheduleName(best.parallel.schedule));
        rec.setAttr("best/recompute",
                    recomputeName(best.options.recompute));
        rec.setAttr("best/zero",
                    std::to_string(best.options.memory.zeroStage));
    }
    foldTrace(rec, session);
    return rec;
}

RunRecord
recordDse(const TechConfig &tech, const DeviceObjective &objective,
          DseOptions opts, const JsonValue &objective_config,
          const std::string &label)
{
    JsonValue config = JsonValue::object();
    config.set("node", JsonValue::string(tech.node.name));
    config.set("dram", JsonValue::string(tech.dram.name));
    config.set("areaBudget", JsonValue::number(tech.areaBudget));
    config.set("powerBudget", JsonValue::number(tech.powerBudget));
    config.set("gridSteps", JsonValue::number(double(opts.gridSteps)));
    config.set("refineRounds",
               JsonValue::number(double(opts.refineRounds)));
    config.set("objective", objective_config);
    RunRecord rec = beginRecord("dse", label, std::move(config));
    rec.threads = resolveThreads(opts.threads);

    TraceSession session;
    opts.trace = &session;
    clock::time_point t0 = clock::now();
    DseResult r = optimizeAllocation(tech, objective, opts);
    rec.wallSeconds = secondsSince(t0);

    rec.setMetric("objective", r.objective);
    rec.setMetric("evaluations", double(r.evaluations));
    rec.setMetric("allocation/compute-area-fraction",
                  r.allocation.computeAreaFraction);
    rec.setMetric("allocation/compute-power-fraction",
                  r.allocation.computePowerFraction);
    rec.setMetric("device/fp16-matrix-flops",
                  r.device.matrixFlops(Precision::FP16));
    rec.setMetric("device/l2-capacity",
                  r.device.level("L2").capacity);
    foldTrace(rec, session);
    return rec;
}

RunRecord
beginBenchRecord(const std::string &label, JsonValue config)
{
    return beginRecord("bench", label, std::move(config));
}

} // namespace report
} // namespace optimus
