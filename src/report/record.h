/**
 * @file
 * RunRecord: the durable, schema-versioned ledger entry of one model
 * evaluation.
 *
 * The paper's value is its *predictions* (Tables 1-2, Figs. 3-9), yet
 * an `optimus_cli` or bench invocation normally prints a table and
 * vanishes — there is no record to compare against after a code
 * change. A RunRecord is the canonical JSON artifact of one
 * trainer / inference / planner / DSE / bench run: the build identity
 * (tool version, schema version, git SHA), a stable fingerprint of
 * the (model, system, mapping) configuration, wall-clock and thread
 * count, the top-level metric breakdown, per-kernel aggregates with
 * FLOPs / traffic / bound class (folded from a TraceSession), the
 * counter registry totals, and any validation-table rows.
 *
 * Records written by `optimus_cli record` (or the always-on bench
 * emitters) are diffed by report/diff.h and gated in CI against the
 * golden baselines under baselines/.
 */

#ifndef OPTIMUS_REPORT_RECORD_H
#define OPTIMUS_REPORT_RECORD_H

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dse/search.h"
#include "inference/engine.h"
#include "planner/planner.h"
#include "training/trainer.h"
#include "util/json.h"

namespace optimus {

class TraceSession;

namespace report {

/**
 * Aggregate of every kernel-detail span sharing one stable identity.
 * The key is "<lane>/<name>" (e.g. "kernels/fwd/qkT-gemm",
 * "decode/attn-v"), which is invariant across runs of the same
 * config, so the diff engine can match kernels between two records.
 */
struct KernelStat
{
    std::string key;
    std::string category;
    long long count = 0;      ///< spans folded into this aggregate
    double time = 0.0;        ///< summed modeled seconds
    double flops = 0.0;       ///< summed arithmetic work
    double dramBytes = 0.0;   ///< summed DRAM traffic
    double overhead = 0.0;    ///< summed launch overhead
    /** Time-dominant bound class ("compute", "DRAM", "L2", ...). */
    std::string bound;
};

/** One validation-table row (paper Tables 1-2 style). */
struct ValidationRow
{
    std::string name;        ///< stable row identity
    double reference = 0.0;  ///< published value
    double predicted = 0.0;  ///< model prediction
};

/** One ledger entry. See the file comment for the schema. */
struct RunRecord
{
    int schemaVersion = 0;      ///< kSchemaVersion when built here
    std::string toolVersion;
    std::string gitSha;
    std::string kind;           ///< training|inference|planner|dse|bench
    std::string label;          ///< caller-chosen run name
    std::string fingerprint;    ///< stable hash of `config`
    JsonValue config;           ///< canonical config object
    double wallSeconds = 0.0;   ///< real time spent evaluating
    int threads = 1;            ///< exec-layer worker threads

    /** Top-level breakdown, in insertion order (stable output). */
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<KernelStat> kernels;
    std::map<std::string, double> counters;
    std::vector<ValidationRow> validation;
    /** Non-numeric outcomes (e.g. the winning plan's mapping). */
    std::vector<std::pair<std::string, std::string>> attrs;

    /** Set (or replace) metric @p key. */
    void setMetric(const std::string &key, double value);
    /** True when metric @p key is present. */
    bool hasMetric(const std::string &key) const;
    /** Value of metric @p key (0 when absent). */
    double metric(const std::string &key) const;

    /** Set (or replace) attribute @p key. */
    void setAttr(const std::string &key, const std::string &value);
};

/**
 * Stable 64-bit FNV-1a fingerprint (hex) of a canonical config
 * object: hashes the compact JSON dump, so two configs fingerprint
 * equal iff they serialize identically.
 */
std::string fingerprintJson(const JsonValue &config);

/**
 * Fold every kernel-detail span of @p session into per-identity
 * KernelStat aggregates (sorted by key) and copy the counter totals
 * into the record.
 */
void foldTrace(RunRecord &rec, const TraceSession &session);

// ---- Serialization ---------------------------------------------------

/** Serialize; the inverse of recordFromJson (lossless round trip). */
JsonValue toJson(const RunRecord &rec);

/**
 * Parse a RunRecord document. Throws ConfigError on malformed input
 * or on a schema_version newer than this build understands.
 */
RunRecord recordFromJson(const JsonValue &j);

/** Write @p rec to @p path as pretty JSON; throws on I/O failure. */
void writeRunRecord(const std::string &path, const RunRecord &rec);

/** Load a RunRecord file; throws ConfigError on failure. */
RunRecord loadRunRecord(const std::string &path);

// ---- Builders --------------------------------------------------------
//
// Each builder runs the evaluator with a private TraceSession, stamps
// the build identity, fingerprints the canonical config, and fills
// metrics / kernels / counters. `threads` follows the exec-layer
// convention (0 = OPTIMUS_THREADS env, default 1).

/** Record one training evaluation. */
RunRecord recordTraining(const TransformerConfig &model,
                         const System &sys, const ParallelConfig &par,
                         long long global_batch, TrainingOptions opts,
                         const std::string &label = "training");

/** Record one inference evaluation. */
RunRecord recordInference(const TransformerConfig &model,
                          const System &sys, InferenceOptions opts,
                          const std::string &label = "inference");

/** Record a planner enumeration (metrics describe the ranked plans). */
RunRecord recordPlanner(const TransformerConfig &model,
                        const System &sys, long long global_batch,
                        TrainingPlannerOptions opts,
                        const std::string &label = "planner");

/** Record a DSE search (metrics describe the optimized design). */
RunRecord recordDse(const TechConfig &tech,
                    const DeviceObjective &objective, DseOptions opts,
                    const JsonValue &objective_config,
                    const std::string &label = "dse");

/**
 * Start a bench-shaped record (kind "bench"): identity stamped,
 * fingerprint taken from @p config, metrics/validation left for the
 * bench to fill.
 */
RunRecord beginBenchRecord(const std::string &label, JsonValue config);

} // namespace report
} // namespace optimus

#endif // OPTIMUS_REPORT_RECORD_H
