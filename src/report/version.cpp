#include "report/version.h"

namespace optimus {
namespace report {

namespace {

constexpr const char *kToolVersion = "0.5.0";

constexpr const char *kGitSha =
#ifdef OPTIMUS_GIT_SHA
    OPTIMUS_GIT_SHA;
#else
    "unknown";
#endif

} // namespace

const char *
toolVersion()
{
    return kToolVersion;
}

const char *
gitSha()
{
    return kGitSha;
}

std::string
versionLine()
{
    return std::string("optimus ") + kToolVersion +
           " (RunRecord schema " + std::to_string(kSchemaVersion) +
           ", git " + kGitSha + ")";
}

} // namespace report
} // namespace optimus
