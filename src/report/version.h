/**
 * @file
 * Build identity of the tool: semantic version, RunRecord schema
 * version, and the git commit the binary was configured from.
 *
 * Every RunRecord embeds this triple so a ledger entry is always
 * attributable to the exact code that produced it, and the diff
 * engine can warn when two records came from different schema
 * generations. The git SHA is wired in at CMake configure time
 * (OPTIMUS_GIT_SHA compile definition on version.cpp); a build from
 * an exported tarball reports "unknown".
 */

#ifndef OPTIMUS_REPORT_VERSION_H
#define OPTIMUS_REPORT_VERSION_H

#include <string>

namespace optimus {
namespace report {

/**
 * RunRecord schema generation. Bump on any change to the JSON layout
 * that an old parser would misread; additive optional fields do not
 * require a bump.
 */
constexpr int kSchemaVersion = 1;

/** Semantic version of the tool ("MAJOR.MINOR.PATCH"). */
const char *toolVersion();

/** Short git SHA recorded at configure time ("unknown" outside git). */
const char *gitSha();

/** One-line "optimus X.Y.Z (RunRecord schema N, git SHA)" banner. */
std::string versionLine();

} // namespace report
} // namespace optimus

#endif // OPTIMUS_REPORT_VERSION_H
