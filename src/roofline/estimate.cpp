#include "roofline/estimate.h"

#include <algorithm>

#include "util/error.h"

namespace optimus {

std::string
boundLevelName(const Device &dev, int bound_level)
{
    if (bound_level < 0)
        return "compute";
    return dev.mem.at(static_cast<size_t>(bound_level)).name;
}

void
finalizeEstimate(KernelEstimate &est)
{
    checkConfig(est.bytesPerLevel.size() == est.memTimePerLevel.size(),
                "estimate has inconsistent per-level vectors");
    double worst = est.computeTime;
    est.boundLevel = -1;
    for (size_t i = 0; i < est.memTimePerLevel.size(); ++i) {
        if (est.memTimePerLevel[i] > worst) {
            worst = est.memTimePerLevel[i];
            est.boundLevel = static_cast<int>(i);
        }
    }
    est.time = worst + est.overhead;
}

KernelEstimate
combineEstimates(const std::string &label, const KernelEstimate &a,
                 const KernelEstimate &b)
{
    KernelEstimate out;
    out.kernel = label;
    out.flops = a.flops + b.flops;
    size_t levels = std::max(a.bytesPerLevel.size(),
                             b.bytesPerLevel.size());
    out.bytesPerLevel.assign(levels, 0.0);
    out.memTimePerLevel.assign(levels, 0.0);
    for (size_t i = 0; i < levels; ++i) {
        if (i < a.bytesPerLevel.size()) {
            out.bytesPerLevel[i] += a.bytesPerLevel[i];
            out.memTimePerLevel[i] += a.memTimePerLevel[i];
        }
        if (i < b.bytesPerLevel.size()) {
            out.bytesPerLevel[i] += b.bytesPerLevel[i];
            out.memTimePerLevel[i] += b.memTimePerLevel[i];
        }
    }
    out.computeTime = a.computeTime + b.computeTime;
    out.overhead = a.overhead + b.overhead;
    // Aggregate time is additive (kernels run back to back); the bound
    // label reports the largest aggregated component.
    out.time = a.time + b.time;
    double worst = out.computeTime;
    out.boundLevel = -1;
    for (size_t i = 0; i < out.memTimePerLevel.size(); ++i) {
        if (out.memTimePerLevel[i] > worst) {
            worst = out.memTimePerLevel[i];
            out.boundLevel = static_cast<int>(i);
        }
    }
    return out;
}

} // namespace optimus
