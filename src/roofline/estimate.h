/**
 * @file
 * Kernel-level performance estimate returned by the roofline engines.
 *
 * Every kernel (GEMM, GEMV, stream op, collective) is summarized by
 * its FLOP count, per-memory-level traffic, per-resource times, and
 * the resource that binds it — the quantity Tables 4 and Figs. 7/8 of
 * the paper report.
 */

#ifndef OPTIMUS_ROOFLINE_ESTIMATE_H
#define OPTIMUS_ROOFLINE_ESTIMATE_H

#include <string>
#include <vector>

#include "hw/device.h"

namespace optimus {

/**
 * Canonical name of a binding resource: "compute" for @p bound_level
 * -1, otherwise the device's memory-level name ("DRAM", "L2", ...).
 *
 * Every human-readable bound string in the code base — Table 4's
 * GemmBoundRow::boundType, the roofline report, trace spans — goes
 * through this single function so the spellings can never diverge
 * between outputs.
 */
std::string boundLevelName(const Device &dev, int bound_level);

/**
 * Result of evaluating one kernel on one device.
 *
 * boundLevel identifies the binding resource: -1 means compute-bound,
 * a non-negative value indexes Device::mem (0 = DRAM-bound, 1 =
 * L2-bound, ...).
 */
struct KernelEstimate
{
    std::string kernel;               ///< label, e.g. "QK^T"
    double flops = 0.0;               ///< arithmetic work
    std::vector<double> bytesPerLevel; ///< traffic per memory level
    double computeTime = 0.0;         ///< FLOPs / effective throughput
    std::vector<double> memTimePerLevel; ///< per-level transfer time
    double overhead = 0.0;            ///< kernel-launch overhead
    double time = 0.0;                ///< total = max(...) + overhead
    int boundLevel = -1;              ///< -1 compute, else mem index

    /** True when the kernel is bound by arithmetic throughput. */
    bool computeBound() const { return boundLevel < 0; }

    /** True when bound specifically by DRAM bandwidth. */
    bool dramBound() const { return boundLevel == 0; }

    /** Name of the binding resource ("compute", "DRAM", "L2", ...). */
    std::string
    boundName(const Device &dev) const
    {
        return boundLevelName(dev, boundLevel);
    }

    /** Arithmetic intensity against DRAM traffic (FLOP/byte). */
    double
    dramIntensity() const
    {
        if (bytesPerLevel.empty() || bytesPerLevel[0] == 0.0)
            return 0.0;
        return flops / bytesPerLevel[0];
    }
};

/**
 * Pick the binding resource and fill time/boundLevel from the
 * component times already stored in @p est.
 */
void finalizeEstimate(KernelEstimate &est);

/** Sum of two estimates (used to aggregate kernels into phases). */
KernelEstimate combineEstimates(const std::string &label,
                                const KernelEstimate &a,
                                const KernelEstimate &b);

} // namespace optimus

#endif // OPTIMUS_ROOFLINE_ESTIMATE_H
