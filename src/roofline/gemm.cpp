#include "roofline/gemm.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "util/error.h"

namespace optimus {

namespace {

/** Hardware macro-tile used for shape quantization. */
constexpr long long kQuantM = 16;
constexpr long long kQuantN = 16;
constexpr long long kQuantK = 32;

/** Effective register-level reuse distance per operand. */
constexpr long long kRegisterTile = 128;

long long
roundUp(long long v, long long q)
{
    return (v + q - 1) / q * q;
}

double
ceilDiv(double a, double b)
{
    return std::ceil(a / b);
}

/** Candidate tile edges: powers of two up to dim, plus dim itself. */
std::vector<long long>
tileCandidates(long long dim)
{
    std::vector<long long> out;
    for (long long t = 16; t < dim; t *= 2)
        out.push_back(t);
    out.push_back(dim);
    return out;
}

/**
 * Traffic (bytes) to the outer level for a given tile choice. When
 * tk < k the reduction is split into ceil(k/tk) chunks and the output
 * tile is read and written once per chunk, so the C term scales with
 * the chunk count — the single source of truth for both the search
 * and the streaming fallback.
 */
double
tileTraffic(const GemmShape &s, long long tm, long long tn,
            long long tk, double elem)
{
    double a_reads = double(s.m) * double(s.k) * ceilDiv(double(s.n), double(tn));
    double b_reads = double(s.k) * double(s.n) * ceilDiv(double(s.m), double(tm));
    double c_rw = 2.0 * double(s.m) * double(s.n) *
                  ceilDiv(double(s.k), double(tk));
    return elem * (a_reads + b_reads + c_rw);
}

// ---- Tile-search memo cache -----------------------------------------
//
// Sweeps (planner enumeration, DSE grids, figure drivers) re-run
// searchTile for identical keys thousands of times; the O(tiles^2)
// candidate scan is the engine's hottest loop. The cache is process-
// wide, shared-read (std::shared_mutex), and safe under the exec
// layer's concurrency. searchTile is a pure function of the key, so
// caching can never change results.

struct TileKey
{
    long long m = 0;
    long long n = 0;
    long long k = 0;
    int precision = 0;
    std::uint64_t capacityBits = 0; ///< exact double, bit pattern
    std::uint64_t fillBits = 0;
    bool operator==(const TileKey &) const = default;
};

struct TileKeyHash
{
    size_t operator()(const TileKey &key) const
    {
        // FNV-1a over the key's words: cheap and well-mixed for the
        // handful of distinct shapes a sweep produces.
        std::uint64_t h = 1469598103934665603ull;
        auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        mix(static_cast<std::uint64_t>(key.m));
        mix(static_cast<std::uint64_t>(key.n));
        mix(static_cast<std::uint64_t>(key.k));
        mix(static_cast<std::uint64_t>(key.precision));
        mix(key.capacityBits);
        mix(key.fillBits);
        return static_cast<size_t>(h);
    }
};

std::shared_mutex tile_cache_mu;
std::unordered_map<TileKey, TileChoice, TileKeyHash> tile_cache;
std::atomic<unsigned long long> tile_cache_hits{0};
std::atomic<unsigned long long> tile_cache_misses{0};
std::atomic<bool> tile_cache_on{true};

} // namespace

double
shapeEfficiency(const GemmShape &shape)
{
    double ideal = double(shape.m) * double(shape.n) * double(shape.k);
    double padded = double(roundUp(shape.m, kQuantM)) *
                    double(roundUp(shape.n, kQuantN)) *
                    double(roundUp(shape.k, kQuantK));
    return ideal / padded;
}

TileCacheStats
tileCacheStats()
{
    TileCacheStats s;
    s.hits = tile_cache_hits.load(std::memory_order_relaxed);
    s.misses = tile_cache_misses.load(std::memory_order_relaxed);
    std::shared_lock lock(tile_cache_mu);
    s.entries = tile_cache.size();
    return s;
}

void
tileCacheClear()
{
    std::unique_lock lock(tile_cache_mu);
    tile_cache.clear();
    tile_cache_hits.store(0, std::memory_order_relaxed);
    tile_cache_misses.store(0, std::memory_order_relaxed);
}

void
tileCacheSetEnabled(bool on)
{
    tile_cache_on.store(on, std::memory_order_relaxed);
}

bool
tileCacheEnabled()
{
    return tile_cache_on.load(std::memory_order_relaxed);
}

TileChoice
searchTile(const GemmShape &shape, double capacity_bytes,
           double fill_factor)
{
    checkPositive(shape.m, "gemm m");
    checkPositive(shape.n, "gemm n");
    checkPositive(shape.k, "gemm k");
    checkPositive(capacity_bytes, "tile search capacity");

    const bool use_cache =
        tile_cache_on.load(std::memory_order_relaxed);
    TileKey key{shape.m, shape.n, shape.k,
                static_cast<int>(shape.precision),
                std::bit_cast<std::uint64_t>(capacity_bytes),
                std::bit_cast<std::uint64_t>(fill_factor)};
    if (use_cache) {
        std::shared_lock lock(tile_cache_mu);
        auto it = tile_cache.find(key);
        if (it != tile_cache.end()) {
            tile_cache_hits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }

    const double elem = precisionBytes(shape.precision);
    const double budget = capacity_bytes * fill_factor / elem;

    TileChoice best;
    best.traffic = std::numeric_limits<double>::infinity();

    for (long long tm : tileCandidates(shape.m)) {
        for (long long tn : tileCandidates(shape.n)) {
            // Reserve room for the output tile, then give the rest to
            // the k extent of the A and B tiles.
            double remaining = budget - double(tm) * double(tn);
            if (remaining <= 0.0)
                continue;
            long long tk = static_cast<long long>(remaining / (tm + tn));
            if (tk < 1)
                continue;
            tk = std::min(tk, shape.k);
            double traffic = tileTraffic(shape, tm, tn, tk, elem);
            if (traffic < best.traffic) {
                best = {tm, tn, tk, traffic};
            }
        }
    }

    if (!std::isfinite(best.traffic)) {
        // Cache too small for even the minimal tile: every operand
        // byte streams through without reuse, and the 1-element
        // output chunk is revisited once per k step (same formula as
        // the search, at the degenerate 1x1x1 tile).
        best.tm = 1;
        best.tn = 1;
        best.tk = 1;
        best.traffic = tileTraffic(shape, 1, 1, 1, elem);
    }

    if (use_cache) {
        tile_cache_misses.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock lock(tile_cache_mu);
        tile_cache.emplace(key, best);
    }
    return best;
}

KernelEstimate
estimateGemm(const Device &dev, const GemmShape &shape,
             const std::string &label, const GemmOptions &opts)
{
    checkPositive(shape.m, "gemm m");
    checkPositive(shape.n, "gemm n");
    checkPositive(shape.k, "gemm k");
    checkConfig(!dev.mem.empty(), "device has no memory hierarchy");

    const double elem = precisionBytes(shape.precision);

    KernelEstimate est;
    est.kernel = label;
    est.flops = 2.0 * double(shape.m) * double(shape.n) * double(shape.k);

    // Effective compute throughput. The matrix engine approaches its
    // efficiency ceiling only for large reduction dimensions. A
    // precision the matrix engine lacks runs dequantized at the
    // narrowest wider format it does support (e.g. fp8 operands on an
    // A100 compute at the fp16 tensor-core rate); only formats wider
    // than every supported one fall back to the vector units.
    double matrix_rate = 0.0;
    if (opts.matrixEngine) {
        if (dev.supportsMatrix(shape.precision)) {
            matrix_rate = dev.matrixFlops(shape.precision);
        } else {
            double want = precisionBytes(shape.precision);
            double best_bytes = 1e9;
            for (const auto &[p, f] : dev.matrixThroughput) {
                double b = precisionBytes(p);
                if (b >= want && b < best_bytes) {
                    best_bytes = b;
                    matrix_rate = f;
                }
            }
        }
    }
    double peak;
    if (matrix_rate > 0.0) {
        double k_eff = double(shape.k) /
                       (double(shape.k) + dev.gemmKHalf);
        peak = matrix_rate * dev.matrixMaxEfficiency * k_eff;
    } else {
        peak = dev.vectorFlops(shape.precision);
    }
    peak *= shapeEfficiency(shape);
    est.computeTime = est.flops / peak;

    const bool skinny =
        std::min(shape.m, shape.n) < opts.skinnyThreshold;

    const size_t levels = dev.mem.size();
    est.bytesPerLevel.assign(levels, 0.0);
    est.memTimePerLevel.assign(levels, 0.0);

    for (size_t i = 0; i < levels; ++i) {
        double bytes;
        if (i + 1 < levels) {
            // Traffic at level i is set by how well the next (inner)
            // level can tile the problem.
            bytes = searchTile(shape, dev.mem[i + 1].capacity).traffic;
        } else if (levels == 1) {
            // Single-level device: assume perfect on-chip reuse, pay
            // only compulsory traffic.
            bytes = elem * (double(shape.m) * shape.k +
                            double(shape.k) * shape.n +
                            2.0 * double(shape.m) * shape.n);
        } else {
            // Innermost scratch: traffic set by the register tile.
            GemmShape reg = shape;
            double a_reads = double(reg.m) * reg.k *
                             ceilDiv(double(reg.n), double(kRegisterTile));
            double b_reads = double(reg.k) * reg.n *
                             ceilDiv(double(reg.m), double(kRegisterTile));
            bytes = elem * (a_reads + b_reads +
                            2.0 * double(reg.m) * reg.n);
        }
        double util = dev.mem[i].utilization;
        if (i == 0 && skinny)
            util = dev.gemvDramUtilization;
        est.bytesPerLevel[i] = bytes;
        est.memTimePerLevel[i] = bytes / (dev.mem[i].bandwidth * util);
    }

    est.overhead = opts.launchOverhead ? dev.kernelLaunchOverhead : 0.0;
    finalizeEstimate(est);

    // Bound-type classification follows the classic roofline (peak
    // matrix rate at the efficiency ceiling, no mainloop penalty), as
    // the paper does: a kernel whose arithmetic intensity sits below
    // the ridge is memory-bound even when an inefficient kernel
    // implementation makes its compute term slow.
    if (matrix_rate > 0.0) {
        double cls_compute =
            est.flops / (matrix_rate * dev.matrixMaxEfficiency *
                         shapeEfficiency(shape));
        double worst = cls_compute;
        est.boundLevel = -1;
        for (size_t i = 0; i < est.memTimePerLevel.size(); ++i) {
            if (est.memTimePerLevel[i] > worst) {
                worst = est.memTimePerLevel[i];
                est.boundLevel = static_cast<int>(i);
            }
        }
    }
    return est;
}

} // namespace optimus
