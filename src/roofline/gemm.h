/**
 * @file
 * Hierarchical roofline model for dense matrix multiplication.
 *
 * Follows the DeepFlow approach the paper builds on (Sec. 3.1): for
 * each cache level a capacity-constrained tile search determines the
 * traffic that must cross to the next (outer) memory level; the kernel
 * time is the maximum of the compute time and every per-level transfer
 * time. Skinny GEMMs (auto-regressive inference) additionally apply
 * the DRAM bandwidth-utilization factor of Sec. 4.1.
 */

#ifndef OPTIMUS_ROOFLINE_GEMM_H
#define OPTIMUS_ROOFLINE_GEMM_H

#include <string>

#include "hw/device.h"
#include "roofline/estimate.h"

namespace optimus {

/** Problem shape for C[m,n] = A[m,k] * B[k,n]. */
struct GemmShape
{
    long long m = 1;
    long long n = 1;
    long long k = 1;
    Precision precision = Precision::FP16;
};

/** Tuning switches for the GEMM estimator. */
struct GemmOptions
{
    /** Use the matrix engine (tensor cores) vs the vector units. */
    bool matrixEngine = true;

    /**
     * Count kernel launch overhead. Callers fusing several logical
     * GEMMs into one launch disable this on all but the first.
     */
    bool launchOverhead = true;

    /**
     * Threshold on min(m, n) below which the GEMM is treated as
     * skinny and the GEMV DRAM-utilization factor applies.
     */
    long long skinnyThreshold = 32;
};

/** Chosen tile for one cache level (elements, not bytes). */
struct TileChoice
{
    long long tm = 0;
    long long tn = 0;
    long long tk = 0;
    double traffic = 0.0;  ///< bytes crossing to the outer level
};

/**
 * Tile search for one cache level: choose (tm, tn, tk) whose working
 * set fits @p capacity_bytes (with a fill factor for double
 * buffering) and that minimizes traffic to the outer memory level.
 *
 * Traffic model for C = A*B with tiles (tm, tn, tk):
 *   bytes = elem * (m*k*ceil(n/tn) + k*n*ceil(m/tm)
 *                   + 2*m*n*ceil(k/tk))
 * i.e. A is re-read once per column block, B once per row block, and
 * the C tile is read+written once per k chunk (once total when the
 * whole reduction fits, tk = k).
 *
 * Results are memoized in a process-wide, thread-safe cache keyed by
 * (m, n, k, precision, capacity, fill_factor); searchTile is a pure
 * function of that key, so the cache never changes results. See
 * tileCacheStats() / tileCacheClear().
 */
TileChoice searchTile(const GemmShape &shape, double capacity_bytes,
                      double fill_factor = 0.5);

/** Aggregate statistics of the process-wide tile-search memo cache. */
struct TileCacheStats
{
    unsigned long long hits = 0;
    unsigned long long misses = 0;
    size_t entries = 0;

    /** Hit fraction in [0, 1]; 0 when the cache was never queried. */
    double hitRate() const
    {
        unsigned long long total = hits + misses;
        return total == 0 ? 0.0 : double(hits) / double(total);
    }
};

/** Snapshot of the tile-cache counters (thread-safe). */
TileCacheStats tileCacheStats();

/** Drop every cached tile and zero the hit/miss counters. */
void tileCacheClear();

/**
 * Globally enable/disable the memo cache (default on). Disabling
 * bypasses lookup, insertion and the counters — used by benchmarks to
 * A/B the cache itself.
 */
void tileCacheSetEnabled(bool on);
bool tileCacheEnabled();

/**
 * Estimate a GEMM on @p dev.
 *
 * @param dev     target device
 * @param shape   problem shape
 * @param label   kernel label carried into the estimate
 * @param opts    tuning switches
 */
KernelEstimate estimateGemm(const Device &dev, const GemmShape &shape,
                            const std::string &label = "gemm",
                            const GemmOptions &opts = {});

/**
 * Shape-quantization efficiency: the fraction of issued tensor-core
 * work that is useful when m/n/k are not multiples of the hardware
 * macro tile.
 */
double shapeEfficiency(const GemmShape &shape);

} // namespace optimus

#endif // OPTIMUS_ROOFLINE_GEMM_H
