#include "roofline/gemv.h"

#include "util/error.h"

namespace optimus {

double
GemvUtilizationCurve::utilization(double dram_bytes) const
{
    checkConfig(dram_bytes >= 0.0, "gemv traffic must be non-negative");
    if (dram_bytes == 0.0)
        return maxUtilization;
    return maxUtilization * dram_bytes / (dram_bytes + halfVolume);
}

KernelEstimate
estimateGemv(const Device &dev, long long m, long long k,
             Precision precision, const std::string &label,
             GemvUtilMode mode, const GemvUtilizationCurve &curve)
{
    checkPositive(m, "gemv m");
    checkPositive(k, "gemv k");

    const double elem = precisionBytes(precision);

    KernelEstimate est;
    est.kernel = label;
    est.flops = 2.0 * double(m) * double(k);

    // The matrix dominates traffic; the vectors stream once.
    double dram_bytes = elem * (double(m) * double(k) + double(k) +
                                double(m));

    double util = (mode == GemvUtilMode::Constant)
                      ? dev.gemvDramUtilization
                      : curve.utilization(dram_bytes);

    est.bytesPerLevel.assign(dev.mem.size(), 0.0);
    est.memTimePerLevel.assign(dev.mem.size(), 0.0);
    est.bytesPerLevel[0] = dram_bytes;
    est.memTimePerLevel[0] =
        dram_bytes / (dev.dram().bandwidth * util);

    // GEMV runs on the vector units; it is never compute-bound on a
    // GPU-class device but the term keeps custom designs honest.
    est.computeTime = est.flops / dev.vectorFlops(precision);

    est.overhead = dev.kernelLaunchOverhead;
    finalizeEstimate(est);
    return est;
}

} // namespace optimus
