/**
 * @file
 * GEMV (matrix-vector) estimator with DRAM bandwidth-utilization
 * factors (paper Sec. 4.1 / Fig. 3).
 *
 * GEMV kernels move small data volumes, so DRAM bandwidth is
 * underutilized; the achievable fraction depends on the matrix size.
 * The paper profiles A100 kernels, clusters the measured utilization
 * factors, and also offers a simplified constant factor. Both model
 * variants are implemented here; the clustered (size-dependent) curve
 * doubles as the measurement proxy in our hardware-free reproduction
 * of Fig. 3 (see DESIGN.md, Substitutions).
 */

#ifndef OPTIMUS_ROOFLINE_GEMV_H
#define OPTIMUS_ROOFLINE_GEMV_H

#include <string>

#include "hw/device.h"
#include "roofline/estimate.h"

namespace optimus {

/** Which DRAM-utilization model a GEMV estimate uses. */
enum class GemvUtilMode {
    Constant,   ///< single factor for all kernels (simplified)
    Clustered,  ///< size-dependent factor (profiled / proxy)
};

/**
 * Size-dependent DRAM-utilization curve fitted per device family:
 *   u(V) = maxUtilization * V / (V + halfVolume)
 * where V is the kernel's DRAM traffic in bytes.
 */
struct GemvUtilizationCurve
{
    double maxUtilization = 0.80;
    double halfVolume = 2.0e6;

    double utilization(double dram_bytes) const;
};

/**
 * Estimate y[m] = A[m,k] x[k] on @p dev.
 *
 * @param mode      utilization model variant
 * @param curve     curve used in Clustered mode
 */
KernelEstimate estimateGemv(const Device &dev, long long m, long long k,
                            Precision precision,
                            const std::string &label = "gemv",
                            GemvUtilMode mode = GemvUtilMode::Constant,
                            const GemvUtilizationCurve &curve = {});

} // namespace optimus

#endif // OPTIMUS_ROOFLINE_GEMV_H
