#include "roofline/report.h"

#include "util/error.h"
#include "util/units.h"

namespace optimus {

RooflineCeilings
rooflineCeilings(const Device &dev, Precision precision)
{
    RooflineCeilings c;
    c.peakFlops = dev.supportsMatrix(precision)
                      ? dev.matrixFlops(precision) *
                            dev.matrixMaxEfficiency
                      : dev.vectorFlops(precision);
    c.dramBandwidth = dev.dram().bandwidth * dev.dram().utilization;
    c.ridgeIntensity = c.peakFlops / c.dramBandwidth;
    return c;
}

std::vector<RooflinePoint>
rooflinePoints(const Device &dev, const std::vector<Op> &ops)
{
    std::vector<RooflinePoint> out;
    out.reserve(ops.size());
    for (const Op &op : ops) {
        KernelEstimate est = evaluateOp(dev, op);
        RooflinePoint pt;
        pt.name = op.name;
        pt.time = est.time;
        pt.intensity = est.dramIntensity();
        pt.achieved = est.time > 0.0 ? est.flops / est.time : 0.0;
        pt.bound = boundLevelName(dev, est.boundLevel);
        out.push_back(std::move(pt));
    }
    return out;
}

Table
rooflineTable(const Device &dev, Precision precision,
              const std::vector<Op> &ops)
{
    RooflineCeilings c = rooflineCeilings(dev, precision);
    Table t({"op", "intensity (F/B)", "achieved (GFLOP/s)",
             "% of peak", "time (us)", "bound"});
    for (const RooflinePoint &pt : rooflinePoints(dev, ops)) {
        t.beginRow()
            .cell(pt.name)
            .cell(pt.intensity, 1)
            .cell(pt.achieved / GFLOPS, 1)
            .cell(100.0 * pt.achieved / c.peakFlops, 1)
            .cell(pt.time * 1e6, 2)
            .cell(pt.bound);
        t.endRow();
    }
    return t;
}

} // namespace optimus
