/**
 * @file
 * Roofline-plot data exporter.
 *
 * The paper's analysis style (Secs. 1.2, 6.1, ref. [37]) is the
 * classic roofline: operations plotted as (arithmetic intensity,
 * achieved throughput) against the device's compute and bandwidth
 * ceilings. This module produces that data as a table/CSV so any
 * plotting tool can render the figure.
 */

#ifndef OPTIMUS_ROOFLINE_REPORT_H
#define OPTIMUS_ROOFLINE_REPORT_H

#include <string>
#include <vector>

#include "hw/device.h"
#include "util/table.h"
#include "workload/graph.h"

namespace optimus {

/** One plotted operation. */
struct RooflinePoint
{
    std::string name;
    double intensity = 0.0;     ///< FLOP per DRAM byte
    double achieved = 0.0;      ///< FLOP/s = flops / time
    double time = 0.0;          ///< seconds
    std::string bound;          ///< binding resource
};

/** The device's ceilings for the plot. */
struct RooflineCeilings
{
    double peakFlops = 0.0;          ///< matrix engine at ceiling
    double dramBandwidth = 0.0;      ///< effective DRAM B/s
    double ridgeIntensity = 0.0;     ///< peak / bandwidth crossover
};

/** Ceilings of @p dev for @p precision. */
RooflineCeilings rooflineCeilings(const Device &dev,
                                  Precision precision);

/** Evaluate @p ops on @p dev into plot points. */
std::vector<RooflinePoint> rooflinePoints(const Device &dev,
                                          const std::vector<Op> &ops);

/**
 * Render points + ceilings into a table (columns: op, intensity,
 * achieved GFLOP/s, % of peak, time, bound).
 */
Table rooflineTable(const Device &dev, Precision precision,
                    const std::vector<Op> &ops);

} // namespace optimus

#endif // OPTIMUS_ROOFLINE_REPORT_H
