#include "roofline/stream.h"

#include "util/error.h"

namespace optimus {

KernelEstimate
estimateStream(const Device &dev, const std::string &label, double bytes,
               double flops, Precision precision, bool launch)
{
    checkConfig(bytes >= 0.0, label + ": bytes must be non-negative");
    checkConfig(flops >= 0.0, label + ": flops must be non-negative");

    KernelEstimate est;
    est.kernel = label;
    est.flops = flops;
    est.bytesPerLevel.assign(dev.mem.size(), 0.0);
    est.memTimePerLevel.assign(dev.mem.size(), 0.0);
    est.bytesPerLevel[0] = bytes;
    est.memTimePerLevel[0] =
        bytes / (dev.dram().bandwidth * dev.dram().utilization);
    est.computeTime = flops / dev.vectorFlops(precision);
    est.overhead = launch ? dev.kernelLaunchOverhead : 0.0;
    finalizeEstimate(est);
    return est;
}

KernelEstimate
estimateSoftmax(const Device &dev, double rows, double cols,
                Precision precision)
{
    double elems = rows * cols;
    double bytes = 2.0 * elems * precisionBytes(precision);
    // exp + running max + sum + divide: ~5 vector ops per element.
    return estimateStream(dev, "softmax", bytes, 5.0 * elems, precision);
}

KernelEstimate
estimateLayerNorm(const Device &dev, double rows, double cols,
                  Precision precision)
{
    double elems = rows * cols;
    double bytes = 2.0 * elems * precisionBytes(precision);
    // mean + variance + normalize + scale/shift: ~5 ops per element.
    return estimateStream(dev, "layernorm", bytes, 5.0 * elems,
                          precision);
}

KernelEstimate
estimateElementwise(const Device &dev, const std::string &label,
                    double elements, double flops_per_elem,
                    Precision precision, bool launch)
{
    double bytes = 2.0 * elements * precisionBytes(precision);
    return estimateStream(dev, label, bytes, flops_per_elem * elements,
                          precision, launch);
}

} // namespace optimus
