/**
 * @file
 * Streaming (memory-bound) kernel estimator for normalization and
 * element-wise operations: softmax, layer-norm, dropout, GELU,
 * residual adds, bias adds (paper Sec. 1.2: these are generally
 * memory-bound; kernel fusion raises their arithmetic intensity).
 */

#ifndef OPTIMUS_ROOFLINE_STREAM_H
#define OPTIMUS_ROOFLINE_STREAM_H

#include <string>

#include "hw/device.h"
#include "roofline/estimate.h"

namespace optimus {

/**
 * Estimate a streaming kernel that moves @p bytes through DRAM and
 * performs @p flops vector operations.
 *
 * @param launch  whether to charge a kernel-launch overhead (disabled
 *                for ops fused into a neighbouring kernel)
 */
KernelEstimate estimateStream(const Device &dev, const std::string &label,
                              double bytes, double flops,
                              Precision precision, bool launch = true);

/** Softmax over @p rows rows of @p cols elements (read + write). */
KernelEstimate estimateSoftmax(const Device &dev, double rows,
                               double cols, Precision precision);

/** Layer-norm over @p rows rows of @p cols elements. */
KernelEstimate estimateLayerNorm(const Device &dev, double rows,
                                 double cols, Precision precision);

/** Element-wise op (GELU/dropout/residual) on @p elements values. */
KernelEstimate estimateElementwise(const Device &dev,
                                   const std::string &label,
                                   double elements, double flops_per_elem,
                                   Precision precision,
                                   bool launch = true);

} // namespace optimus

#endif // OPTIMUS_ROOFLINE_STREAM_H
