#include "tech/dram.h"

#include "util/units.h"

namespace optimus {
namespace dram {

namespace {

DramTech
make(const std::string &name, double bw, double cap, double pj_per_byte)
{
    return {name, bw, cap, pj_per_byte * 1e-12};
}

} // namespace

DramTech gddr6() { return make("GDDR6", 600 * GBps, 48 * GiB, 60.0); }
DramTech hbm2() { return make("HBM2", 1.0 * TBps, 32 * GiB, 31.0); }
DramTech hbm2e() { return make("HBM2E", 1.9 * TBps, 80 * GiB, 28.0); }
DramTech hbm3_26() { return make("HBM3", 2.6 * TBps, 96 * GiB, 26.0); }
DramTech hbm3() { return make("HBM3", 3.35 * TBps, 80 * GiB, 26.0); }
DramTech hbm3e() { return make("HBM3E", 4.8 * TBps, 141 * GiB, 24.0); }
DramTech hbm4() { return make("HBM4", 3.3 * TBps, 160 * GiB, 22.0); }
DramTech hbmx() { return make("HBMX", 6.8 * TBps, 192 * GiB, 20.0); }

const std::vector<DramTech> &
trainingSweep()
{
    static const std::vector<DramTech> sweep = {hbm2(), hbm2e(),
                                                hbm3_26(), hbm4()};
    return sweep;
}

const std::vector<DramTech> &
inferenceSweep()
{
    static const std::vector<DramTech> sweep = {
        gddr6(), hbm2(), hbm2e(), hbm3(), hbm3e(), hbmx()};
    return sweep;
}

} // namespace dram
} // namespace optimus
