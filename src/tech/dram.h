/**
 * @file
 * Off-chip DRAM technology table (paper Secs. 5.3, 6.2): four HBM
 * generations for the training node-scaling study, and the inference
 * study's sweep from GDDR6 to the hypothetical HBMX.
 */

#ifndef OPTIMUS_TECH_DRAM_H
#define OPTIMUS_TECH_DRAM_H

#include <string>
#include <vector>

namespace optimus {

/** One DRAM technology generation. */
struct DramTech
{
    std::string name;
    double bandwidth = 0.0;  ///< bytes/s per device
    double capacity = 0.0;   ///< bytes per device
    double energyPerByte = 0.0;  ///< J/byte access energy
};

namespace dram {

DramTech gddr6();   ///< 600 GB/s
DramTech hbm2();    ///< 1.0 TB/s
DramTech hbm2e();   ///< 1.9 TB/s
DramTech hbm3_26(); ///< 2.6 TB/s (the node-scaling study's HBM3)
DramTech hbm3();    ///< 3.35 TB/s (H100's HBM3)
DramTech hbm3e();   ///< 4.8 TB/s
DramTech hbm4();    ///< 3.3 TB/s projected stack used in Fig. 6
DramTech hbmx();    ///< 6.8 TB/s futuristic (Fig. 9)

/** The Fig. 6 training sweep: HBM2, HBM2E, HBM3(2.6), HBM4. */
const std::vector<DramTech> &trainingSweep();

/** The Fig. 9 inference sweep: GDDR6 ... HBMX. */
const std::vector<DramTech> &inferenceSweep();

} // namespace dram
} // namespace optimus

#endif // OPTIMUS_TECH_DRAM_H
