#include "tech/logic_node.h"

#include <cmath>

#include "util/error.h"

namespace optimus {

namespace {

std::vector<LogicNode>
buildNodes()
{
    const char *names[] = {"N12", "N10", "N7", "N5", "N3", "N2", "N1"};
    std::vector<LogicNode> nodes;
    for (int i = 0; i < 7; ++i) {
        LogicNode n;
        n.name = names[i];
        n.index = i;
        n.densityScale = std::pow(kAreaScalePerNode, i);
        n.efficiencyScale = std::pow(kPowerScalePerNode, i);
        n.sramDensityScale = std::pow(kSramScalePerNode, i);
        nodes.push_back(n);
    }
    return nodes;
}

} // namespace

const std::vector<LogicNode> &
logicNodes()
{
    static const std::vector<LogicNode> nodes = buildNodes();
    return nodes;
}

const LogicNode &
logicNode(const std::string &name)
{
    for (const LogicNode &n : logicNodes())
        if (n.name == name)
            return n;
    throw ConfigError("unknown logic node: " + name);
}

} // namespace optimus
