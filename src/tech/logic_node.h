/**
 * @file
 * Logic technology node table, N12 through N1 (paper Sec. 5.3).
 *
 * The paper follows the iso-performance scaling assumption it cites
 * (DeepFlow / Stillmaker-Baas): between consecutive nodes, transistor
 * density improves 1.8x and power per operation improves 1.3x. The
 * table is anchored at N7 = A100-class silicon.
 */

#ifndef OPTIMUS_TECH_LOGIC_NODE_H
#define OPTIMUS_TECH_LOGIC_NODE_H

#include <string>
#include <vector>

namespace optimus {

/** One manufacturing process generation. */
struct LogicNode
{
    std::string name;      ///< "N12" ... "N1"
    int index = 0;         ///< steps after N12

    /** Compute density relative to N12, FLOPS/mm^2 multiplier. */
    double densityScale = 1.0;

    /** Energy efficiency relative to N12, FLOPS/W multiplier. */
    double efficiencyScale = 1.0;

    /** SRAM density relative to N12, bytes/mm^2 multiplier. */
    double sramDensityScale = 1.0;
};

/** Area density improvement per node step. */
constexpr double kAreaScalePerNode = 1.8;
/** Power efficiency improvement per node step. */
constexpr double kPowerScalePerNode = 1.3;
/** SRAM scales slower than logic in advanced nodes. */
constexpr double kSramScalePerNode = 1.4;

/** The seven explored nodes: N12, N10, N7, N5, N3, N2, N1. */
const std::vector<LogicNode> &logicNodes();

/** Lookup by name; throws ConfigError if unknown. */
const LogicNode &logicNode(const std::string &name);

} // namespace optimus

#endif // OPTIMUS_TECH_LOGIC_NODE_H
