#include "tech/network_tech.h"

#include "hw/presets.h"
#include "util/units.h"

namespace optimus {
namespace nettech {

NetworkLink
ndrX8()
{
    return {"NDR-x8", 100 * GBps, 5.0 * usec, 8.0e5, 0.85,
            20.0 * usec};
}

NetworkLink
xdrX8()
{
    return {"XDR-x8", 200 * GBps, 5.0 * usec, 8.0e5, 0.85,
            20.0 * usec};
}

NetworkLink
gdrX8()
{
    return {"GDR-x8", 400 * GBps, 5.0 * usec, 8.0e5, 0.85,
            20.0 * usec};
}

const std::vector<NetworkLink> &
scalingSweep()
{
    static const std::vector<NetworkLink> sweep = {ndrX8(), xdrX8(),
                                                   gdrX8()};
    return sweep;
}

NetworkLink
nvlinkGen3()
{
    return presets::nvlink3();
}

NetworkLink
nvlinkGen4()
{
    return presets::nvlink4();
}

} // namespace nettech
} // namespace optimus
