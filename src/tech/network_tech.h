/**
 * @file
 * Inter-node network technology table for the node-scaling study
 * (paper Sec. 5.3 / Fig. 6): NDR-x8 (100 GB/s), XDR-x8 (200 GB/s) and
 * GDR-x8 (400 GB/s) InfiniBand per-node rates.
 */

#ifndef OPTIMUS_TECH_NETWORK_TECH_H
#define OPTIMUS_TECH_NETWORK_TECH_H

#include <vector>

#include "hw/network.h"

namespace optimus {
namespace nettech {

NetworkLink ndrX8();  ///< 100 GB/s per node
NetworkLink xdrX8();  ///< 200 GB/s per node
NetworkLink gdrX8();  ///< 400 GB/s per node

/** The Fig. 6 sweep: NDR-x8, XDR-x8, GDR-x8. */
const std::vector<NetworkLink> &scalingSweep();

/** NVLink gen3 / gen4 intra-node links (Fig. 9's NV3 / NV4). */
NetworkLink nvlinkGen3();
NetworkLink nvlinkGen4();

} // namespace nettech
} // namespace optimus

#endif // OPTIMUS_TECH_NETWORK_TECH_H
