#include "tech/uarch.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace optimus {

void
UArchAllocation::validate() const
{
    checkConfig(computeAreaFraction > 0.0 && computeAreaFraction < 1.0,
                "computeAreaFraction must be in (0,1)");
    checkConfig(computePowerFraction > 0.0 && computePowerFraction < 1.0,
                "computePowerFraction must be in (0,1)");
}

UArchCalibration
UArchCalibration::a100Anchor()
{
    // A100: 312 TFLOPS fp16, 826 mm^2, 400 W, at N7 (index 2), with
    // the default allocation (55% area / 70% power to compute) and
    // 60 MiB of on-chip SRAM (40 MiB L2 + ~20 MiB shared memory).
    UArchCalibration cal;
    const double n7_density = std::pow(kAreaScalePerNode, 2);
    const double n7_power = std::pow(kPowerScalePerNode, 2);
    const double n7_sram = std::pow(kSramScalePerNode, 2);

    cal.flopsPerMm2 = 312 * TFLOPS / (826.0 * 0.55) / n7_density;
    cal.flopsPerWatt = 312 * TFLOPS / (400.0 * 0.70) / n7_power;
    cal.sramBytesPerMm2 = 60 * MiB / (826.0 * 0.45) / n7_sram;
    cal.l2BwPerByte = 5.5 * TBps / (40 * MiB) / n7_power;
    return cal;
}

Device
buildDevice(const TechConfig &tech, const UArchAllocation &alloc,
            const UArchCalibration &cal)
{
    alloc.validate();
    checkPositive(tech.areaBudget, "areaBudget");
    checkPositive(tech.powerBudget, "powerBudget");

    const LogicNode &node = tech.node;

    // Compute throughput: limited by whichever budget binds.
    double area_limited = tech.areaBudget * alloc.computeAreaFraction *
                          cal.flopsPerMm2 * node.densityScale;
    double power_limited = tech.powerBudget *
                           alloc.computePowerFraction *
                           cal.flopsPerWatt * node.efficiencyScale;
    double fp16 = std::min(area_limited, power_limited);

    // On-chip SRAM from the remaining area: 2/3 L2, 1/3 scratch.
    double sram_bytes = tech.areaBudget *
                        (1.0 - alloc.computeAreaFraction) *
                        cal.sramBytesPerMm2 * node.sramDensityScale;
    double l2_cap = sram_bytes * (2.0 / 3.0);
    double smem_cap = sram_bytes / 3.0;
    double l2_bw = l2_cap * cal.l2BwPerByte * node.efficiencyScale;
    double smem_bw = l2_bw * 3.45;

    Device d;
    d.name = "DSE-" + node.name + "-" + tech.dram.name;
    d.matrixThroughput = {
        {Precision::TF32, fp16 / 2.0},
        {Precision::FP16, fp16},
        {Precision::BF16, fp16},
        {Precision::FP8, fp16 * 2.0},
        {Precision::INT8, fp16 * 2.0},
    };
    d.vectorThroughput = {
        {Precision::FP32, fp16 / 16.0},
        {Precision::FP16, fp16 / 8.0},
        {Precision::BF16, fp16 / 8.0},
    };
    d.mem = {
        {"DRAM", tech.dram.capacity, tech.dram.bandwidth, 0.85},
        {"L2", l2_cap, l2_bw, 0.80},
        {"SMEM", smem_cap, smem_bw, 0.80},
    };
    d.matrixMaxEfficiency = 0.85;
    d.gemvDramUtilization = 0.75;
    d.kernelLaunchOverhead = 3.0e-6;
    d.validate();
    return d;
}

System
buildSystem(const TechConfig &tech, const UArchAllocation &alloc,
            int devices_per_node, int num_nodes,
            const NetworkLink &intra, const NetworkLink &inter,
            const UArchCalibration &cal)
{
    return makeSystem(buildDevice(tech, alloc, cal), devices_per_node,
                      num_nodes, intra, inter);
}

} // namespace optimus
