/**
 * @file
 * Micro-architecture engine: synthesizes a Device from technology
 * parameters and a resource allocation (paper Secs. 3.1, 3.6).
 *
 * The engine is anchored at a 7 nm A100-class design (826 mm^2,
 * 400 W): compute density, energy efficiency and SRAM density scale
 * with the logic node; the off-chip memory comes from the DRAM
 * technology table. A design point splits the area and power budgets
 * between the compute array and on-chip memory — the space the DSE
 * search (dse/search.h) explores.
 */

#ifndef OPTIMUS_TECH_UARCH_H
#define OPTIMUS_TECH_UARCH_H

#include "hw/device.h"
#include "hw/system.h"
#include "tech/dram.h"
#include "tech/logic_node.h"
#include "tech/network_tech.h"

namespace optimus {

/** Technology corner a device is synthesized in. */
struct TechConfig
{
    LogicNode node;
    DramTech dram;
    double areaBudget = 826.0;   ///< mm^2
    double powerBudget = 400.0;  ///< W
};

/** Fraction of each budget given to the compute array. */
struct UArchAllocation
{
    double computeAreaFraction = 0.55;
    double computePowerFraction = 0.70;

    /** Validate fractions are in (0, 1). */
    void validate() const;
};

/** Calibration anchors (A100 at N7). */
struct UArchCalibration
{
    /** FLOP/s (fp16 matrix) per mm^2 at N12. */
    double flopsPerMm2 = 0.0;
    /** FLOP/s (fp16 matrix) per W at N12. */
    double flopsPerWatt = 0.0;
    /** SRAM bytes per mm^2 at N12. */
    double sramBytesPerMm2 = 0.0;
    /** L2 bandwidth per byte of capacity at N12, 1/s. */
    double l2BwPerByte = 0.0;

    /** Default calibration derived from the A100 anchor. */
    static UArchCalibration a100Anchor();
};

/**
 * Build a device at the given technology corner and allocation.
 * Compute throughput is the min of the area-limited and power-limited
 * rates; on-chip memory receives the remaining area.
 */
Device buildDevice(const TechConfig &tech, const UArchAllocation &alloc,
                   const UArchCalibration &cal =
                       UArchCalibration::a100Anchor());

/**
 * Build a homogeneous system of synthesized devices with the given
 * intra-node link and inter-node network technology.
 */
System buildSystem(const TechConfig &tech, const UArchAllocation &alloc,
                   int devices_per_node, int num_nodes,
                   const NetworkLink &intra, const NetworkLink &inter,
                   const UArchCalibration &cal =
                       UArchCalibration::a100Anchor());

} // namespace optimus

#endif // OPTIMUS_TECH_UARCH_H
