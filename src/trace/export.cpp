#include "trace/export.h"

#include <sstream>

namespace optimus {

namespace {

/** Seconds -> integer-friendly microseconds for trace timestamps. */
double
toMicros(double seconds)
{
    return seconds * 1e6;
}

} // namespace

JsonValue
chromeTraceJson(const TraceSession &session)
{
    JsonValue doc = JsonValue::object();
    JsonValue events = JsonValue::array();

    // Process/thread metadata ("M" events) so Perfetto labels the
    // two process groups and every lane instead of showing bare ids.
    auto processName = [&events](int pid, const std::string &name) {
        JsonValue e = JsonValue::object();
        e.set("ph", JsonValue::string("M"));
        e.set("name", JsonValue::string("process_name"));
        e.set("pid", JsonValue::number(double(pid)));
        JsonValue args = JsonValue::object();
        args.set("name", JsonValue::string(name));
        e.set("args", std::move(args));
        events.push(std::move(e));
    };
    processName(0, "optimus model timeline");
    if (!session.counterSamples().empty())
        processName(1, "optimus counters");

    const std::vector<TraceLane> &lanes = session.lanes();
    for (size_t i = 0; i < lanes.size(); ++i) {
        JsonValue e = JsonValue::object();
        e.set("ph", JsonValue::string("M"));
        e.set("name", JsonValue::string("thread_name"));
        e.set("pid", JsonValue::number(0));
        e.set("tid", JsonValue::number(double(i)));
        JsonValue args = JsonValue::object();
        args.set("name", JsonValue::string(lanes[i].name));
        e.set("args", std::move(args));
        events.push(std::move(e));
    }

    for (const TraceSpan &s : session.spans()) {
        JsonValue e = JsonValue::object();
        e.set("ph", JsonValue::string("X"));
        e.set("name", JsonValue::string(s.name));
        e.set("cat", JsonValue::string(s.category));
        e.set("pid", JsonValue::number(0));
        e.set("tid", JsonValue::number(double(s.lane)));
        e.set("ts", JsonValue::number(toMicros(s.start)));
        e.set("dur", JsonValue::number(toMicros(s.duration)));
        JsonValue args = JsonValue::object();
        if (s.microbatch >= 0)
            args.set("microbatch",
                     JsonValue::number(double(s.microbatch)));
        if (s.layer >= 0)
            args.set("layer", JsonValue::number(double(s.layer)));
        if (s.step >= 0)
            args.set("step", JsonValue::number(double(s.step)));
        if (s.isKernel()) {
            args.set("flops", JsonValue::number(s.flops));
            args.set("dram_bytes", JsonValue::number(s.dramBytes()));
            args.set("launch_overhead_s",
                     JsonValue::number(s.overhead));
            args.set("bound", JsonValue::string(s.bound));
        }
        e.set("args", std::move(args));
        events.push(std::move(e));
    }

    // Counter series: one "C" event per sample, sequenced by index so
    // search-progress gauges (e.g. DSE best objective) plot as steps.
    const std::vector<CounterSample> &samples =
        session.counterSamples();
    for (size_t i = 0; i < samples.size(); ++i) {
        JsonValue e = JsonValue::object();
        e.set("ph", JsonValue::string("C"));
        e.set("name", JsonValue::string(samples[i].name));
        e.set("pid", JsonValue::number(1));
        e.set("ts", JsonValue::number(double(i)));
        JsonValue args = JsonValue::object();
        args.set("value", JsonValue::number(samples[i].value));
        e.set("args", std::move(args));
        events.push(std::move(e));
    }

    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", JsonValue::string("ms"));
    return doc;
}

std::string
kernelCsv(const TraceSession &session)
{
    Table t({"lane", "name", "category", "start_us", "duration_us",
             "microbatch", "layer", "step", "flops", "dram_bytes",
             "launch_overhead_us", "bound"});
    const std::vector<TraceLane> &lanes = session.lanes();
    for (const TraceSpan &s : session.spans()) {
        if (!s.isKernel())
            continue;
        t.beginRow()
            .cell(lanes.at(static_cast<size_t>(s.lane)).name)
            .cell(s.name)
            .cell(s.category)
            .cell(s.start * 1e6, 4)
            .cell(s.duration * 1e6, 4)
            .cell(s.microbatch)
            .cell(s.layer)
            .cell(s.step)
            .cell(s.flops, 0)
            .cell(s.dramBytes(), 0)
            .cell(s.overhead * 1e6, 3)
            .cell(s.bound);
        t.endRow();
    }
    std::ostringstream os;
    t.printCsv(os);
    return os.str();
}

Table
categorySummaryTable(const TraceSession &session)
{
    std::map<std::string, double> totals = session.categoryTotals();
    std::map<std::string, long long> counts;
    for (const TraceSpan &s : session.spans())
        ++counts[s.category];
    double grand = 0.0;
    for (const auto &kv : totals)
        grand += kv.second;

    Table t({"category", "time (s)", "% of time", "spans"});
    for (const auto &kv : totals) {
        t.beginRow()
            .cell(kv.first)
            .cell(kv.second, 6)
            .cell(grand > 0.0 ? 100.0 * kv.second / grand : 0.0, 1)
            .cell(counts[kv.first]);
        t.endRow();
    }
    return t;
}

Table
counterSummaryTable(const TraceSession &session)
{
    Table t({"counter", "value"});
    for (const auto &kv : session.counters()) {
        t.beginRow().cell(kv.first).cell(kv.second, 6);
        t.endRow();
    }
    return t;
}

std::string
summaryText(const TraceSession &session)
{
    std::ostringstream os;
    os << session.spans().size() << " spans on "
       << session.lanes().size() << " lanes, virtual makespan "
       << session.makespan() << " s\n";
    if (!session.spans().empty()) {
        os << "\n";
        categorySummaryTable(session).print(os);
    }
    if (!session.counters().empty()) {
        os << "\n";
        counterSummaryTable(session).print(os);
    }
    return os.str();
}

} // namespace optimus
