/**
 * @file
 * Trace exporters: Chrome trace-event JSON (opens directly in
 * Perfetto / chrome://tracing), a per-kernel CSV, and an aggregated
 * text summary.
 *
 * Chrome trace-event mapping: pids 0 (timeline) and 1 (counters) are
 * named via "M" process_name metadata events; every lane becomes a
 * thread (tid) of pid 0 named via "M" thread_name metadata; spans become
 * complete ("X") events with microsecond timestamps; counter samples
 * become counter ("C") events on pid 1, sequenced by sample index.
 */

#ifndef OPTIMUS_TRACE_EXPORT_H
#define OPTIMUS_TRACE_EXPORT_H

#include <string>

#include "trace/trace.h"
#include "util/json.h"
#include "util/table.h"

namespace optimus {

/** Serialize @p session as a Chrome trace-event JSON document. */
JsonValue chromeTraceJson(const TraceSession &session);

/**
 * Per-kernel CSV: one row per span carrying kernel detail (name,
 * category, lane, start/duration, microbatch/layer/step, FLOPs, DRAM
 * bytes, launch overhead, bound type).
 */
std::string kernelCsv(const TraceSession &session);

/** Per-category totals (category, seconds, % of total, spans). */
Table categorySummaryTable(const TraceSession &session);

/** Final counter values (counter, value). */
Table counterSummaryTable(const TraceSession &session);

/**
 * Aggregated human-readable summary: span/lane statistics, the
 * category table and the counter table.
 */
std::string summaryText(const TraceSession &session);

} // namespace optimus

#endif // OPTIMUS_TRACE_EXPORT_H
