#include "trace/trace.h"

#include <algorithm>

namespace optimus {

TraceSession::TraceSession(TraceSession &&other) noexcept
{
    std::lock_guard<std::mutex> lock(other.mu_);
    enabled_ = other.enabled_;
    lanes_ = std::move(other.lanes_);
    spans_ = std::move(other.spans_);
    samples_ = std::move(other.samples_);
    counters_ = std::move(other.counters_);
    laneIndex_ = std::move(other.laneIndex_);
}

TraceSession &
TraceSession::operator=(TraceSession &&other) noexcept
{
    if (this != &other) {
        std::scoped_lock lock(mu_, other.mu_);
        enabled_ = other.enabled_;
        lanes_ = std::move(other.lanes_);
        spans_ = std::move(other.spans_);
        samples_ = std::move(other.samples_);
        counters_ = std::move(other.counters_);
        laneIndex_ = std::move(other.laneIndex_);
    }
    return *this;
}

int
TraceSession::laneLocked(const std::string &name)
{
    auto it = laneIndex_.find(name);
    if (it != laneIndex_.end())
        return it->second;
    int id = static_cast<int>(lanes_.size());
    lanes_.push_back(TraceLane{name, 0.0});
    laneIndex_[name] = id;
    return id;
}

int
TraceSession::lane(const std::string &name)
{
    if (!enabled_)
        return 0;
    std::lock_guard<std::mutex> lock(mu_);
    return laneLocked(name);
}

double
TraceSession::emit(int lane_id, TraceSpan span)
{
    if (!enabled_)
        return 0.0;
    std::lock_guard<std::mutex> lock(mu_);
    if (lanes_.empty())
        laneLocked("default");
    lane_id = std::clamp(lane_id, 0,
                         static_cast<int>(lanes_.size()) - 1);
    TraceLane &l = lanes_[static_cast<size_t>(lane_id)];
    span.lane = lane_id;
    span.start = l.cursor;
    l.cursor += span.duration;
    spans_.push_back(std::move(span));
    return spans_.back().start;
}

double
TraceSession::emit(int lane_id, const std::string &name,
                   const std::string &category, double duration)
{
    TraceSpan s;
    s.name = name;
    s.category = category;
    s.duration = duration;
    return emit(lane_id, std::move(s));
}

void
TraceSession::counterAdd(const std::string &name, double delta)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    double v = counters_[name] + delta;
    counters_[name] = v;
    samples_.push_back(CounterSample{name, v});
}

void
TraceSession::counterSet(const std::string &name, double value)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] = value;
    samples_.push_back(CounterSample{name, value});
}

double
TraceSession::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

void
TraceSession::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    samples_.clear();
    counters_.clear();
    for (TraceLane &l : lanes_)
        l.cursor = 0.0;
}

void
TraceSession::absorb(TraceSession &&worker)
{
    if (!enabled_ || !worker.enabled_)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    // Map each worker lane to the same-named lane here, remembering
    // this session's cursor as the splice offset (the lane boundary).
    std::vector<int> lane_map(worker.lanes_.size(), 0);
    std::vector<double> base(worker.lanes_.size(), 0.0);
    for (size_t i = 0; i < worker.lanes_.size(); ++i) {
        int id = laneLocked(worker.lanes_[i].name);
        lane_map[i] = id;
        base[i] = lanes_[static_cast<size_t>(id)].cursor;
        lanes_[static_cast<size_t>(id)].cursor +=
            worker.lanes_[i].cursor;
    }
    for (TraceSpan &s : worker.spans_) {
        size_t wl = static_cast<size_t>(s.lane);
        if (wl < lane_map.size()) {
            s.start += base[wl];
            s.lane = lane_map[wl];
        }
        spans_.push_back(std::move(s));
    }
    for (const auto &[name, value] : worker.counters_)
        counters_[name] += value;
    for (CounterSample &s : worker.samples_)
        samples_.push_back(std::move(s));

    worker.spans_.clear();
    worker.samples_.clear();
    worker.counters_.clear();
    for (TraceLane &l : worker.lanes_)
        l.cursor = 0.0;
}

std::map<std::string, double>
TraceSession::categoryTotals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, double> totals;
    for (const TraceSpan &s : spans_)
        totals[s.category] += s.duration;
    return totals;
}

double
TraceSession::makespan() const
{
    std::lock_guard<std::mutex> lock(mu_);
    double end = 0.0;
    for (const TraceLane &l : lanes_)
        end = std::max(end, l.cursor);
    return end;
}

TraceSpan
kernelSpan(const Device &dev, const std::string &name,
           const std::string &category, const KernelEstimate &est)
{
    TraceSpan s;
    s.name = name;
    s.category = category;
    s.duration = est.time;
    s.flops = est.flops;
    s.bytesPerLevel = est.bytesPerLevel;
    s.overhead = est.overhead;
    s.bound = boundLevelName(dev, est.boundLevel);
    return s;
}

} // namespace optimus
