#include "trace/trace.h"

#include <algorithm>

namespace optimus {

int
TraceSession::lane(const std::string &name)
{
    if (!enabled_)
        return 0;
    auto it = laneIndex_.find(name);
    if (it != laneIndex_.end())
        return it->second;
    int id = static_cast<int>(lanes_.size());
    lanes_.push_back(TraceLane{name, 0.0});
    laneIndex_[name] = id;
    return id;
}

double
TraceSession::emit(int lane_id, TraceSpan span)
{
    if (!enabled_)
        return 0.0;
    if (lanes_.empty())
        lane("default");
    lane_id = std::clamp(lane_id, 0,
                         static_cast<int>(lanes_.size()) - 1);
    TraceLane &l = lanes_[static_cast<size_t>(lane_id)];
    span.lane = lane_id;
    span.start = l.cursor;
    l.cursor += span.duration;
    spans_.push_back(std::move(span));
    return spans_.back().start;
}

double
TraceSession::emit(int lane_id, const std::string &name,
                   const std::string &category, double duration)
{
    TraceSpan s;
    s.name = name;
    s.category = category;
    s.duration = duration;
    return emit(lane_id, std::move(s));
}

void
TraceSession::counterAdd(const std::string &name, double delta)
{
    if (!enabled_)
        return;
    double v = counters_[name] + delta;
    counters_[name] = v;
    samples_.push_back(CounterSample{name, v});
}

void
TraceSession::counterSet(const std::string &name, double value)
{
    if (!enabled_)
        return;
    counters_[name] = value;
    samples_.push_back(CounterSample{name, value});
}

double
TraceSession::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

void
TraceSession::reset()
{
    spans_.clear();
    samples_.clear();
    counters_.clear();
    for (TraceLane &l : lanes_)
        l.cursor = 0.0;
}

std::map<std::string, double>
TraceSession::categoryTotals() const
{
    std::map<std::string, double> totals;
    for (const TraceSpan &s : spans_)
        totals[s.category] += s.duration;
    return totals;
}

double
TraceSession::makespan() const
{
    double end = 0.0;
    for (const TraceLane &l : lanes_)
        end = std::max(end, l.cursor);
    return end;
}

TraceSpan
kernelSpan(const Device &dev, const std::string &name,
           const std::string &category, const KernelEstimate &est)
{
    TraceSpan s;
    s.name = name;
    s.category = category;
    s.duration = est.time;
    s.flops = est.flops;
    s.bytesPerLevel = est.bytesPerLevel;
    s.overhead = est.overhead;
    s.bound = boundLevelName(dev, est.boundLevel);
    return s;
}

} // namespace optimus
