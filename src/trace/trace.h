/**
 * @file
 * Kernel-level trace and metrics layer.
 *
 * The paper's deliverable is workload *analysis* — per-kernel bound
 * types (Table 4), time breakdowns (Figs. 5-7), phase anatomy
 * (Fig. 8) — yet an aggregate struct hides which modeled event
 * produced which seconds. A TraceSession records a span for every
 * modeled event (kernels, collectives, p2p hops, bubbles, optimizer
 * steps) laid out on virtual lanes, plus a counter registry for
 * search/analysis statistics (DSE evaluations, planner prunes, ...).
 *
 * Time is *virtual*: the model predicts durations, so each lane keeps
 * a cursor and spans are appended back to back. The key invariant of
 * every instrumented evaluator is that summing span durations per
 * category exactly reproduces the aggregate report (TrainingBreakdown
 * / PhaseReport) — the trace is a verified decomposition of the
 * model, not a parallel implementation.
 *
 * Tracing is opt-in and zero-overhead when off: evaluators take a
 * nullable TraceSession pointer (the null sink), and a disabled
 * session drops every record. Exporters live in trace/export.h.
 */

#ifndef OPTIMUS_TRACE_TRACE_H
#define OPTIMUS_TRACE_TRACE_H

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "roofline/estimate.h"

namespace optimus {

/** One modeled event placed on a virtual lane. */
struct TraceSpan
{
    std::string name;      ///< event label, e.g. "layer-fwd", "qk^T"
    std::string category;  ///< aggregation bucket, e.g. "forward"
    int lane = 0;          ///< index into TraceSession::lanes()
    double start = 0.0;    ///< virtual seconds since run start
    double duration = 0.0; ///< modeled seconds

    // Optional workload coordinates (-1 = not applicable).
    long long microbatch = -1;
    long long layer = -1;
    long long step = -1;   ///< decode token index

    // Optional kernel detail (filled by kernelSpan()).
    double flops = 0.0;
    std::vector<double> bytesPerLevel; ///< traffic per memory level
    double overhead = 0.0;             ///< kernel-launch overhead
    std::string bound;                 ///< canonical binding resource

    /** DRAM traffic (level 0), 0 when unknown. */
    double dramBytes() const
    {
        return bytesPerLevel.empty() ? 0.0 : bytesPerLevel[0];
    }

    /** True when the span carries per-kernel detail. */
    bool isKernel() const { return !bound.empty(); }
};

/** A virtual timeline row (pipeline stage x phase). */
struct TraceLane
{
    std::string name;
    double cursor = 0.0;   ///< end of the last span on this lane
};

/** One sample of a named counter series, in record order. */
struct CounterSample
{
    std::string name;
    double value = 0.0;
};

/**
 * Recording sink for spans and counters.
 *
 * Construct with enabled=false for an explicit null sink that records
 * nothing (evaluators also accept a nullptr session, which costs one
 * branch per instrumented section).
 *
 * Thread safety: every mutating operation (lane, emit, counterAdd,
 * counterSet, reset, absorb) and every scalar read (counter,
 * categoryTotals, makespan) is internally synchronized, so sweeps
 * fanned out through the exec layer may share one session — counter
 * *totals* are deterministic across thread counts (sums commute),
 * while the per-sample record order is scheduling-dependent at
 * threads > 1. The reference-returning inspectors (spans, lanes,
 * counters, counterSamples) are safe only once concurrent recording
 * has quiesced. For parallel span recording, prefer a worker-local
 * session per task merged via absorb() at the join point.
 */
class TraceSession
{
  public:
    TraceSession() = default;
    explicit TraceSession(bool enabled) : enabled_(enabled) {}

    // Movable (the source must be quiescent); not copyable, since
    // concurrent recorders hold pointers to a live session.
    TraceSession(TraceSession &&other) noexcept;
    TraceSession &operator=(TraceSession &&other) noexcept;

    bool enabled() const { return enabled_; }

    /** Get-or-create the lane named @p name; returns its index. */
    int lane(const std::string &name);

    /**
     * Append @p span (its duration already set) at the cursor of lane
     * @p lane_id and advance the cursor. Returns the span's start
     * time (0 when disabled).
     */
    double emit(int lane_id, TraceSpan span);

    /** Convenience emit with name/category/duration only. */
    double emit(int lane_id, const std::string &name,
                const std::string &category, double duration);

    // ---- Counter registry -------------------------------------------

    /** Increment counter @p name by @p delta (default 1). */
    void counterAdd(const std::string &name, double delta = 1.0);

    /** Record a new sample of gauge @p name (e.g. best objective). */
    void counterSet(const std::string &name, double value);

    /** Final value of counter @p name (0 when never touched). */
    double counter(const std::string &name) const;

    /** Clear spans, counters, samples and lane cursors. */
    void reset();

    /**
     * Merge a worker-thread session recorded against the same logical
     * timeline: each worker lane is appended at the current cursor of
     * the same-named lane here (the lane boundary), counters are
     * summed into this session's totals and the worker's sample
     * history is appended. @p worker is left cleared. This is the
     * join-point primitive for per-thread span buffers: workers
     * record into private sessions with zero contention, and the
     * coordinator absorbs them in a deterministic (slot) order.
     */
    void absorb(TraceSession &&worker);

    // ---- Inspection --------------------------------------------------

    const std::vector<TraceSpan> &spans() const { return spans_; }
    const std::vector<TraceLane> &lanes() const { return lanes_; }
    /** Every counterAdd/counterSet sample in record order. */
    const std::vector<CounterSample> &counterSamples() const
    {
        return samples_;
    }
    /** Final value per counter name. */
    const std::map<std::string, double> &counters() const
    {
        return counters_;
    }

    /** Sum of span durations per category. */
    std::map<std::string, double> categoryTotals() const;

    /** End of the busiest lane (the virtual makespan). */
    double makespan() const;

  private:
    /** lane() body; caller must hold mu_. */
    int laneLocked(const std::string &name);

    bool enabled_ = true;
    mutable std::mutex mu_;
    std::vector<TraceLane> lanes_;
    std::vector<TraceSpan> spans_;
    std::vector<CounterSample> samples_;
    std::map<std::string, double> counters_;
    std::map<std::string, int> laneIndex_;
};

/** True when @p t is a live (non-null, enabled) session. */
inline bool
tracing(const TraceSession *t)
{
    return t != nullptr && t->enabled();
}

/**
 * Build a span carrying the full kernel detail of @p est: duration,
 * FLOPs, per-level traffic, launch overhead and the canonical bound
 * name (boundLevelName, shared with Table 4 / roofline reports).
 */
TraceSpan kernelSpan(const Device &dev, const std::string &name,
                     const std::string &category,
                     const KernelEstimate &est);

} // namespace optimus

#endif // OPTIMUS_TRACE_TRACE_H
