#include "training/trainer.h"

#include <algorithm>

#include "parallel/pipeline.h"
#include "roofline/stream.h"
#include "trace/trace.h"
#include "util/error.h"
#include "workload/graph.h"

namespace optimus {

double
TrainingBreakdown::compute() const
{
    return forward + backward + recompute + embedding;
}

double
TrainingBreakdown::communication() const
{
    return tpComm + cpComm + epComm + ppComm + dpComm;
}

double
TrainingBreakdown::other() const
{
    return bubble + optimizer;
}

double
TrainingBreakdown::total() const
{
    return compute() + communication() + other();
}

namespace {

/** Model FLOPs for one batch (fwd + bwd, no recompute). */
double
modelFlopsPerBatch(const TransformerConfig &cfg, long long global_batch,
                   long long seq, Precision precision)
{
    LayerGraphParams gp;
    gp.batch = global_batch;
    gp.seq = seq;
    gp.tensorParallel = 1;
    gp.training = true;
    gp.precision = precision;

    double layer_fwd = 0.0;
    for (const Op &op : layerForwardOps(cfg, gp))
        layer_fwd += opFlops(op);

    double head_fwd = 0.0;
    for (const Op &op : headOps(cfg, global_batch * seq, 1, precision))
        head_fwd += opFlops(op);

    // Backward is twice the forward work.
    return 3.0 * (layer_fwd * double(cfg.numLayers) + head_fwd);
}

} // namespace

TrainingReport
evaluateTraining(const TransformerConfig &cfg, const System &sys,
                 const ParallelConfig &par, long long global_batch,
                 const TrainingOptions &opts)
{
    cfg.validate();
    sys.validate();
    par.validate(cfg, sys, global_batch);
    checkPositive(opts.seqLength, "seqLength");

    const Device &dev = sys.device;
    const long long tp = par.tensorParallel;
    const long long pp = par.pipelineParallel;
    const long long layers_local = cfg.numLayers / pp;
    const long long m = par.microbatches(global_batch);
    const double act_bytes = opts.memory.activationBytes;

    TrainingReport rep;
    rep.microbatches = m;

    // Trace lanes model the critical (worst) pipeline stage — the one
    // whose per-device time the analytical model predicts. Categories
    // are named after TrainingBreakdown fields so per-category span
    // sums reproduce the breakdown exactly.
    TraceSession *tr = opts.trace;
    const bool tron = tracing(tr);
    int lane_fwd = 0, lane_bwd = 0, lane_rec = 0, lane_comm = 0,
        lane_other = 0;
    if (tron) {
        lane_fwd = tr->lane("stage0/fwd");
        lane_bwd = tr->lane("stage0/bwd");
        lane_rec = tr->lane("stage0/recompute");
        lane_comm = tr->lane("stage0/comm");
        lane_other = tr->lane("stage0/other");
        tr->counterAdd("train/microbatches", double(m));
        tr->counterAdd("train/layers-per-stage",
                       double(layers_local));
    }

    // ---- Per-layer per-microbatch device times ----------------------
    LayerGraphParams gp;
    gp.batch = par.microbatchSize;
    gp.seq = opts.seqLength;
    gp.tensorParallel = tp;
    gp.sequenceParallel = par.sequenceParallel;
    gp.precision = opts.precision;
    gp.training = true;
    gp.flashAttention = opts.flashAttention;
    gp.expertParallel = par.expertParallel;
    gp.contextParallel = par.contextParallel;
    checkConfig(opts.seqLength % par.contextParallel == 0,
                "sequence length must divide by the CP degree");

    rep.layerForward = evaluateOps(dev, layerForwardOps(cfg, gp),
                                   "layer-fwd");
    rep.layerBackward = evaluateOps(dev, layerBackwardOps(cfg, gp),
                                    "layer-bwd");

    ActivationParams ap;
    ap.microbatch = par.microbatchSize;
    ap.seq = opts.seqLength;
    ap.tensorParallel = tp;
    ap.sequenceParallel = par.sequenceParallel;
    ap.activationBytes = act_bytes;
    ap.flashAttention = opts.flashAttention;
    const double recompute_frac =
        recomputeForwardFraction(cfg, ap, opts.recompute);

    TrainingBreakdown &t = rep.time;
    const double layers_mb = double(layers_local) * double(m);
    t.forward = rep.layerForward.time * layers_mb;
    t.backward = rep.layerBackward.time * layers_mb;
    t.recompute = rep.layerForward.time * recompute_frac * layers_mb;

    if (tron) {
        // Per-kernel detail of one representative (microbatch 0,
        // local layer 0) forward/backward pass. Category "kernel"
        // keeps these out of the breakdown-matching categories.
        int lane_kf = tr->lane("kernels/fwd");
        int lane_kb = tr->lane("kernels/bwd");
        for (const Op &op : layerForwardOps(cfg, gp)) {
            TraceSpan s = kernelSpan(dev, op.name, "kernel",
                                     evaluateOp(dev, op));
            s.microbatch = 0;
            s.layer = 0;
            tr->emit(lane_kf, std::move(s));
        }
        for (const Op &op : layerBackwardOps(cfg, gp)) {
            TraceSpan s = kernelSpan(dev, op.name, "kernel",
                                     evaluateOp(dev, op));
            s.microbatch = 0;
            s.layer = 0;
            tr->emit(lane_kb, std::move(s));
        }

        for (long long mb = 0; mb < m; ++mb) {
            for (long long l = 0; l < layers_local; ++l) {
                TraceSpan f;
                f.name = "layer-fwd";
                f.category = "forward";
                f.duration = rep.layerForward.time;
                f.microbatch = mb;
                f.layer = l;
                tr->emit(lane_fwd, std::move(f));

                TraceSpan b;
                b.name = "layer-bwd";
                b.category = "backward";
                b.duration = rep.layerBackward.time;
                b.microbatch = mb;
                b.layer = l;
                tr->emit(lane_bwd, std::move(b));

                if (recompute_frac > 0.0) {
                    TraceSpan r;
                    r.name = "layer-recompute";
                    r.category = "recompute";
                    r.duration =
                        rep.layerForward.time * recompute_frac;
                    r.microbatch = mb;
                    r.layer = l;
                    tr->emit(lane_rec, std::move(r));
                }
            }
        }
    }

    // ---- Embedding + LM head (worst stage carries both) -------------
    const long long mb_tokens = par.microbatchSize * opts.seqLength;
    KernelEstimate head =
        evaluateOps(dev, headOps(cfg, mb_tokens, tp, opts.precision),
                    "head");
    KernelEstimate embed = estimateStream(
        dev, "embedding",
        2.0 * double(mb_tokens) * cfg.hiddenSize * act_bytes, 0.0,
        opts.precision);
    // Forward + backward (2x) for the head GEMM; embedding backward is
    // a scatter of comparable traffic. With pipeline parallelism the
    // embedding and the head live on different stages, so the critical
    // (worst) stage carries only the larger of the two.
    double head_time = head.time * 3.0;
    double embed_time = embed.time * 2.0;
    double worst_extra = (pp > 1) ? std::max(head_time, embed_time)
                                  : head_time + embed_time;
    t.embedding = worst_extra * double(m);
    if (tron)
        for (long long mb = 0; mb < m; ++mb) {
            TraceSpan s;
            s.name = "embed+head";
            s.category = "embedding";
            s.duration = worst_extra;
            s.microbatch = mb;
            tr->emit(lane_fwd, std::move(s));
        }

    // ---- Tensor/sequence-parallel collectives ------------------------
    if (tp > 1) {
        const double tp_volume =
            double(par.microbatchSize) * opts.seqLength *
            cfg.hiddenSize * act_bytes;
        // Two collectives per block pair (attention, MLP) in forward,
        // two in backward; full recomputation repeats the forward
        // ones. Selective recomputation's region has no collective.
        double ops_per_layer =
            4.0 + (opts.recompute == Recompute::Full ? 2.0 : 0.0);
        CollectiveResult ar = systemCollective(
            sys, CollectiveKind::AllReduce, tp_volume, tp,
            GroupScope::IntraNode, opts.collectiveAlgorithm);
        t.tpComm = ar.time * ops_per_layer * layers_mb *
                   (1.0 - opts.tpOverlapFraction);
        if (tron) {
            double per_layer = ar.time * ops_per_layer *
                               (1.0 - opts.tpOverlapFraction);
            for (long long mb = 0; mb < m; ++mb)
                for (long long l = 0; l < layers_local; ++l) {
                    TraceSpan s;
                    s.name = "tp-allreduce";
                    s.category = "tp-comm";
                    s.duration = per_layer;
                    s.microbatch = mb;
                    s.layer = l;
                    tr->emit(lane_comm, std::move(s));
                }
        }
    }

    // ---- Context-parallel ring-attention KV exchange --------------------
    if (par.contextParallel > 1) {
        // Each device's K/V shard circulates around the CP ring: an
        // all-gather's worth of wire traffic per layer in forward,
        // twice in backward (KV again plus their gradients), plus the
        // recompute replay.
        double kv_heads_local = std::max(
            1.0, double(cfg.numKvHeads) / double(tp));
        double kv_volume = 2.0 * double(par.microbatchSize) *
                           opts.seqLength * kv_heads_local *
                           double(cfg.headDim()) * act_bytes;
        double ops_per_layer =
            3.0 + (opts.recompute == Recompute::Full ? 1.0 : 0.0);
        GroupScope scope =
            (par.contextParallel * tp <= sys.devicesPerNode)
                ? GroupScope::IntraNode
                : GroupScope::InterNode;
        CollectiveResult ag = systemCollective(
            sys, CollectiveKind::AllGather, kv_volume,
            par.contextParallel, scope, opts.collectiveAlgorithm);
        t.cpComm = ag.time * ops_per_layer * layers_mb;
        if (tron) {
            double per_layer = ag.time * ops_per_layer;
            for (long long mb = 0; mb < m; ++mb)
                for (long long l = 0; l < layers_local; ++l) {
                    TraceSpan s;
                    s.name = "cp-ring-exchange";
                    s.category = "cp-comm";
                    s.duration = per_layer;
                    s.microbatch = mb;
                    s.layer = l;
                    tr->emit(lane_comm, std::move(s));
                }
        }
    }

    // ---- MoE expert-parallel all-to-all --------------------------------
    if (cfg.isMoe() && par.expertParallel > 1) {
        // Dispatch + combine per layer in forward, again in backward,
        // and once more when full recomputation replays the forward.
        double ep_volume = double(par.microbatchSize) *
                           opts.seqLength * cfg.topK *
                           cfg.hiddenSize * act_bytes;
        double ops_per_layer =
            4.0 + (opts.recompute == Recompute::Full ? 2.0 : 0.0);
        GroupScope scope = (tp * pp >= sys.devicesPerNode)
                               ? GroupScope::InterNode
                               : GroupScope::IntraNode;
        CollectiveResult a2a = systemCollective(
            sys, CollectiveKind::AllToAll, ep_volume,
            par.expertParallel, scope, opts.collectiveAlgorithm);
        t.epComm = a2a.time * ops_per_layer * layers_mb;
        if (tron) {
            double per_layer = a2a.time * ops_per_layer;
            for (long long mb = 0; mb < m; ++mb)
                for (long long l = 0; l < layers_local; ++l) {
                    TraceSpan s;
                    s.name = "ep-alltoall";
                    s.category = "ep-comm";
                    s.duration = per_layer;
                    s.microbatch = mb;
                    s.layer = l;
                    tr->emit(lane_comm, std::move(s));
                }
        }
    }

    // ---- Pipeline schedule -------------------------------------------
    PipelineCost pc = pipelineCost(par.schedule, pp, m,
                                   par.interleavedStages);
    rep.bubbleFraction = pc.bubbleFraction;
    if (pp > 1) {
        double p2p_volume = double(par.microbatchSize) *
                            opts.seqLength * cfg.hiddenSize * act_bytes;
        if (par.sequenceParallel)
            p2p_volume /= double(tp);
        GroupScope scope = (tp * pp > sys.devicesPerNode)
                               ? GroupScope::InterNode
                               : GroupScope::IntraNode;
        CollectiveResult p2p = systemCollective(
            sys, CollectiveKind::PointToPoint, p2p_volume, 2, scope,
            opts.collectiveAlgorithm);
        t.ppComm = p2p.time * pc.p2pPerMicrobatch * double(m);
        if (tron)
            for (long long mb = 0; mb < m; ++mb) {
                TraceSpan s;
                s.name = "pp-p2p";
                s.category = "pp-comm";
                s.duration = p2p.time * pc.p2pPerMicrobatch;
                s.microbatch = mb;
                tr->emit(lane_comm, std::move(s));
            }
    }

    // Bubble applies to the busy time of one pipeline iteration.
    double busy = t.forward + t.backward + t.recompute + t.embedding +
                  t.tpComm + t.cpComm + t.epComm + t.ppComm;
    t.bubble = busy * pc.bubbleFraction;
    if (tron && t.bubble > 0.0)
        tr->emit(lane_other, "pipeline-bubble", "bubble", t.bubble);

    // ---- Data-parallel gradient communication --------------------------
    if (par.dataParallel > 1) {
        double grad_volume = parametersPerDevice(cfg, par) *
                             opts.memory.gradientBytes;
        GroupScope scope =
            (par.totalDevices() > sys.devicesPerNode)
                ? GroupScope::InterNode
                : GroupScope::IntraNode;
        // Plain DP all-reduces gradients. ZeRO stages reduce-scatter
        // the gradients and all-gather the updated weights — the same
        // total volume as one all-reduce; stage 3 additionally
        // re-gathers the sharded weights around the forward and
        // backward passes.
        CollectiveResult ar = systemCollective(
            sys, CollectiveKind::AllReduce, grad_volume,
            par.dataParallel, scope, opts.collectiveAlgorithm);
        t.dpComm = ar.time * (1.0 - opts.dpOverlapFraction);
        if (tron)
            tr->emit(lane_comm, "dp-grad-allreduce", "dp-comm",
                     ar.time * (1.0 - opts.dpOverlapFraction));
        if (opts.memory.zeroStage >= 3) {
            double weight_volume = parametersPerDevice(cfg, par) *
                                   opts.memory.weightBytes;
            CollectiveResult ag = systemCollective(
                sys, CollectiveKind::AllGather, weight_volume,
                par.dataParallel, scope, opts.collectiveAlgorithm);
            t.dpComm += 2.0 * ag.time;
            if (tron) {
                tr->emit(lane_comm, "zero3-weight-allgather",
                         "dp-comm", ag.time);
                tr->emit(lane_comm, "zero3-weight-allgather",
                         "dp-comm", ag.time);
            }
        }
    }

    // ---- Optimizer step ------------------------------------------------
    // Adam mixed precision: read fp32 master+momentum+variance and the
    // fp16 gradient, write the three fp32 states and the fp16 weight.
    // ZeRO shards the update over the data-parallel group.
    double params = parametersPerDevice(cfg, par);
    if (opts.memory.zeroStage >= 1)
        params /= double(par.dataParallel);
    double opt_bytes = params * (3.0 * 4.0 + 2.0 + 3.0 * 4.0 + 2.0);
    t.optimizer =
        opt_bytes / (dev.dram().bandwidth * dev.dram().utilization);
    if (tron)
        tr->emit(lane_other, "optimizer-step", "optimizer",
                 t.optimizer);

    rep.timePerBatch = t.total();

    // ---- Memory + MFU --------------------------------------------------
    rep.memory = trainingMemoryPerDevice(cfg, par, global_batch,
                                         opts.seqLength, opts.recompute,
                                         opts.memory);
    rep.modelFlops = modelFlopsPerBatch(cfg, global_batch,
                                        opts.seqLength, opts.precision);
    double system_peak = dev.matrixFlops(opts.precision) *
                         double(sys.totalDevices());
    rep.mfu = rep.modelFlops / (rep.timePerBatch * system_peak);
    if (tron) {
        tr->counterSet("train/time-per-batch-s", rep.timePerBatch);
        tr->counterSet("train/mfu", rep.mfu);
    }

    return rep;
}

} // namespace optimus
