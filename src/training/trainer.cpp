#include "training/trainer.h"

#include "plan/plan.h"

namespace optimus {

double
TrainingBreakdown::compute() const
{
    return forward + backward + recompute + embedding;
}

double
TrainingBreakdown::communication() const
{
    return tpComm + cpComm + epComm + ppComm + dpComm;
}

double
TrainingBreakdown::other() const
{
    return bubble + optimizer;
}

double
TrainingBreakdown::total() const
{
    return compute() + communication() + other();
}

// The whole evaluation lives in the plan pipeline (plan/plan.h):
// lowerTraining builds the step list, evaluatePlan runs the roofline
// and collective models, foldTraining produces the breakdown and the
// trace spans, and runTraining adds the memory / model-FLOPs / MFU
// tail. This function is only the historical entry point.
TrainingReport
evaluateTraining(const TransformerConfig &cfg, const System &sys,
                 const ParallelConfig &par, long long global_batch,
                 const TrainingOptions &opts)
{
    return plan::runTraining(cfg, sys, par, global_batch, opts).report;
}

} // namespace optimus
