/**
 * @file
 * End-to-end distributed training time model (paper Secs. 3-5).
 *
 * Combines the hierarchical roofline per-kernel estimates with the
 * Megatron mapping: per-microbatch layer time (forward, backward,
 * recomputation), TP/SP collectives, pipeline bubbles and p2p
 * transfers, the data-parallel gradient all-reduce, and the optimizer
 * step. Produces the per-batch training time validated in Table 1 and
 * the breakdowns behind Figs. 5-7.
 */

#ifndef OPTIMUS_TRAINING_TRAINER_H
#define OPTIMUS_TRAINING_TRAINER_H

#include "comm/collective.h"
#include "hw/system.h"
#include "memory/footprint.h"
#include "parallel/config.h"
#include "roofline/estimate.h"
#include "workload/activation.h"
#include "workload/model_config.h"

namespace optimus {

class TraceSession;
namespace plan { class EvalCache; }

/** Tunables of the training evaluation. */
struct TrainingOptions
{
    Precision precision = Precision::FP16;
    Recompute recompute = Recompute::Full;
    long long seqLength = 2048;
    CollectiveAlgorithm collectiveAlgorithm = CollectiveAlgorithm::Auto;
    /** Fraction of the DP gradient all-reduce hidden under backward. */
    double dpOverlapFraction = 0.0;
    /**
     * Fraction of the TP/SP collectives overlapped with compute
     * (async tensor parallelism / comm-gemm overlap).
     */
    double tpOverlapFraction = 0.0;
    /** IO-aware fused attention kernels (paper's [6,7]). */
    bool flashAttention = false;
    MemoryOptions memory;

    /**
     * Optional trace sink (trace/trace.h). When set to an enabled
     * session, the evaluator records a span for every modeled event
     * (per-microbatch per-layer compute, collectives, p2p hops,
     * bubble, optimizer) whose per-category sums exactly reproduce
     * the returned TrainingBreakdown, plus per-kernel detail spans.
     * Null (the default) costs nothing.
     */
    TraceSession *trace = nullptr;

    /**
     * Optional shared memo of op-list roofline evaluations
     * (plan/plan.h). Candidate mappings that lower to identical op
     * lists (e.g. planner candidates differing only in DP degree)
     * reuse each other's estimates. Entries are keyed by device name
     * plus op signature, so share one cache only across evaluations
     * against the same System. Runtime-only; never serialized.
     */
    plan::EvalCache *evalCache = nullptr;
};

/** Time breakdown per global batch, seconds. */
struct TrainingBreakdown
{
    double forward = 0.0;
    double backward = 0.0;
    double recompute = 0.0;
    double embedding = 0.0;  ///< input embedding + LM head + loss
    double tpComm = 0.0;     ///< tensor/sequence-parallel collectives
    double cpComm = 0.0;     ///< ring-attention KV exchange
    double epComm = 0.0;     ///< MoE all-to-all dispatch/combine
    double ppComm = 0.0;     ///< pipeline p2p transfers
    double dpComm = 0.0;     ///< gradient all-reduce (exposed part)
    double bubble = 0.0;     ///< pipeline idle time
    double optimizer = 0.0;  ///< weight update

    /** Pure device-compute time. */
    double compute() const;
    /** All network time. */
    double communication() const;
    /** The paper's "Other": weight update + bubble. */
    double other() const;
    /** Per-batch total. */
    double total() const;
};

/** Full result of a training evaluation. */
struct TrainingReport
{
    TrainingBreakdown time;
    double timePerBatch = 0.0;
    TrainingMemory memory;
    long long microbatches = 0;
    double bubbleFraction = 0.0;

    /** Model FLOPs per batch (fwd+bwd, no recompute), whole system. */
    double modelFlops = 0.0;
    /** Model FLOP utilization against the system matrix peak. */
    double mfu = 0.0;

    /** Per-layer per-microbatch device estimates, for inspection. */
    KernelEstimate layerForward;
    KernelEstimate layerBackward;
};

/**
 * Evaluate training of @p cfg on @p sys under @p par.
 *
 * @param global_batch  sequences per optimizer step
 */
TrainingReport evaluateTraining(const TransformerConfig &cfg,
                                const System &sys,
                                const ParallelConfig &par,
                                long long global_batch,
                                const TrainingOptions &opts = {});

} // namespace optimus

#endif // OPTIMUS_TRAINING_TRAINER_H
