#include "util/error.h"

namespace optimus {

void
checkConfig(bool condition, const std::string &message)
{
    if (!condition)
        throw ConfigError(message);
}

void
checkPositive(double value, const std::string &name)
{
    if (!(value > 0.0))
        throw ConfigError(name + " must be positive, got " +
                          std::to_string(value));
}

void
checkPositive(long long value, const std::string &name)
{
    if (value <= 0)
        throw ConfigError(name + " must be positive, got " +
                          std::to_string(value));
}

} // namespace optimus
