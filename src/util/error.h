/**
 * @file
 * Error types and checking helpers.
 *
 * Following the gem5 fatal()/panic() distinction:
 *  - ConfigError is thrown for conditions that are the caller's fault
 *    (invalid model/system/parallelism configuration).
 *  - ModelError is thrown when the performance model itself reaches an
 *    inconsistent state (an internal bug surfaced to the caller).
 */

#ifndef OPTIMUS_UTIL_ERROR_H
#define OPTIMUS_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace optimus {

/** Raised when a user-supplied configuration is invalid. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error("config error: " + what)
    {}
};

/** Raised when the model reaches an internally inconsistent state. */
class ModelError : public std::logic_error
{
  public:
    explicit ModelError(const std::string &what)
        : std::logic_error("model error: " + what)
    {}
};

/** Throw ConfigError with @p message unless @p condition holds. */
void checkConfig(bool condition, const std::string &message);

/** Throw ConfigError unless @p value is strictly positive. */
void checkPositive(double value, const std::string &name);

/** Throw ConfigError unless @p value is a positive integer. */
void checkPositive(long long value, const std::string &name);

} // namespace optimus

#endif // OPTIMUS_UTIL_ERROR_H
