#include "util/flags.h"

#include <cstdlib>

#include "util/error.h"

namespace optimus {

Flags
Flags::parse(const std::vector<std::string> &args)
{
    Flags out;
    size_t i = 0;
    if (i < args.size() && args[i].rfind("--", 0) != 0)
        out.command_ = args[i++];

    while (i < args.size()) {
        const std::string &arg = args[i];
        if (arg.rfind("--", 0) != 0) {
            // Bare token between flags: a positional operand
            // (e.g. the config path of "lint <config.json>").
            out.positionals_.push_back(arg);
            i += 1;
            continue;
        }
        checkConfig(arg.size() > 2,
                    "expected a --flag, got \"" + arg + "\"");
        std::string name = arg.substr(2);
        // A flag consumes the next token as its value unless that
        // token is itself a flag (bare switch).
        if (i + 1 < args.size() &&
            args[i + 1].rfind("--", 0) != 0) {
            out.flags_[name] = args[i + 1];
            i += 2;
        } else {
            out.flags_[name] = "";
            i += 1;
        }
    }
    return out;
}

Flags
Flags::parse(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return parse(args);
}

bool
Flags::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
Flags::get(const std::string &name, const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

long long
Flags::getInt(const std::string &name, long long fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 10);
    checkConfig(end != it->second.c_str() && *end == '\0',
                "flag --" + name + " expects an integer, got \"" +
                    it->second + "\"");
    return v;
}

double
Flags::getNumber(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    checkConfig(end != it->second.c_str() && *end == '\0',
                "flag --" + name + " expects a number, got \"" +
                    it->second + "\"");
    return v;
}

} // namespace optimus
