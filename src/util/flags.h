/**
 * @file
 * Tiny command-line flag parser shared by the CLI tool and any
 * embedding application. Flags are GNU-style "--name value" pairs;
 * a flag followed by another flag (or end of input) is a bare switch.
 */

#ifndef OPTIMUS_UTIL_FLAGS_H
#define OPTIMUS_UTIL_FLAGS_H

#include <map>
#include <string>
#include <vector>

namespace optimus {

/** Parsed command line: a command word plus --flag values. */
class Flags
{
  public:
    /** Parse argv-style input; throws ConfigError on malformed args. */
    static Flags parse(int argc, const char *const *argv);

    /** Parse from a token vector (testing convenience). */
    static Flags parse(const std::vector<std::string> &args);

    /** The first positional token ("train", "infer", ...). */
    const std::string &command() const { return command_; }

    /** Positional tokens after the command (e.g. a config path). */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** True if --name was given (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value of --name; throws ConfigError on bad input. */
    long long getInt(const std::string &name, long long fallback) const;

    /** Floating-point value of --name. */
    double getNumber(const std::string &name, double fallback) const;

    /** All parsed flags (for diagnostics). */
    const std::map<std::string, std::string> &all() const
    {
        return flags_;
    }

  private:
    std::string command_;
    std::vector<std::string> positionals_;
    std::map<std::string, std::string> flags_;
};

} // namespace optimus

#endif // OPTIMUS_UTIL_FLAGS_H
