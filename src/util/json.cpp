#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace optimus {

JsonValue
JsonValue::boolean(bool v)
{
    JsonValue j;
    j.type_ = Type::Bool;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::number(double v)
{
    JsonValue j;
    j.type_ = Type::Number;
    j.number_ = v;
    return j;
}

JsonValue
JsonValue::string(std::string v)
{
    JsonValue j;
    j.type_ = Type::String;
    j.string_ = std::move(v);
    return j;
}

JsonValue
JsonValue::array()
{
    JsonValue j;
    j.type_ = Type::Array;
    return j;
}

JsonValue
JsonValue::object()
{
    JsonValue j;
    j.type_ = Type::Object;
    return j;
}

bool
JsonValue::asBool() const
{
    checkConfig(type_ == Type::Bool, "json: expected a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    checkConfig(type_ == Type::Number, "json: expected a number");
    return number_;
}

long long
JsonValue::asInt() const
{
    double v = asNumber();
    long long i = static_cast<long long>(v);
    checkConfig(double(i) == v, "json: expected an integer");
    return i;
}

const std::string &
JsonValue::asString() const
{
    checkConfig(type_ == Type::String, "json: expected a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    checkConfig(type_ == Type::Array, "json: expected an array");
    return array_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::asObject() const
{
    checkConfig(type_ == Type::Object, "json: expected an object");
    return object_;
}

bool
JsonValue::has(const std::string &key) const
{
    for (const auto &[k, v] : asObject())
        if (k == key)
            return true;
    return false;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    for (const auto &[k, v] : asObject())
        if (k == key)
            return v;
    throw ConfigError("json: missing member \"" + key + "\"");
}

double
JsonValue::getNumber(const std::string &key, double fallback) const
{
    return has(key) ? at(key).asNumber() : fallback;
}

long long
JsonValue::getInt(const std::string &key, long long fallback) const
{
    return has(key) ? at(key).asInt() : fallback;
}

bool
JsonValue::getBool(const std::string &key, bool fallback) const
{
    return has(key) ? at(key).asBool() : fallback;
}

std::string
JsonValue::getString(const std::string &key, std::string fallback) const
{
    return has(key) ? at(key).asString() : std::move(fallback);
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    checkConfig(type_ == Type::Object, "json: set() needs an object");
    for (auto &[k, v] : object_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(value));
    return *this;
}

JsonValue &
JsonValue::push(JsonValue value)
{
    checkConfig(type_ == Type::Array, "json: push() needs an array");
    array_.push_back(std::move(value));
    return *this;
}

size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    throw ConfigError("json: size() needs an array or object");
}

// ---- Parser ----------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    run()
    {
        JsonValue v = value();
        skipWhitespace();
        checkConfig(pos_ == text_.size(),
                    "json: trailing characters at offset " +
                        std::to_string(pos_));
        return v;
    }

  private:
    const std::string &text_;
    size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &what)
    {
        throw ConfigError("json: " + what + " at offset " +
                          std::to_string(pos_));
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal, expected \"") + word +
                     "\"");
            ++pos_;
        }
    }

    JsonValue
    value()
    {
        skipWhitespace();
        switch (peek()) {
          case '{': return objectValue();
          case '[': return arrayValue();
          case '"': return JsonValue::string(stringValue());
          case 't': literal("true"); return JsonValue::boolean(true);
          case 'f': literal("false"); return JsonValue::boolean(false);
          case 'n': literal("null"); return JsonValue();
          default: return numberValue();
        }
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        skipWhitespace();
        if (consume('}'))
            return obj;
        while (true) {
            skipWhitespace();
            std::string key = stringValue();
            skipWhitespace();
            expect(':');
            obj.set(key, value());
            skipWhitespace();
            if (consume('}'))
                return obj;
            expect(',');
        }
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        skipWhitespace();
        if (consume(']'))
            return arr;
        while (true) {
            arr.push(value());
            skipWhitespace();
            if (consume(']'))
                return arr;
            expect(',');
        }
    }

    std::string
    stringValue()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += h - 'A' + 10;
                    else
                        fail("bad \\u escape");
                }
                // Encode as UTF-8 (basic multilingual plane only).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    numberValue()
    {
        size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        char *end = nullptr;
        std::string token = text_.substr(start, pos_ - start);
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fail("malformed number \"" + token + "\"");
        return JsonValue::number(v);
    }
};

void
escapeInto(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
numberInto(std::string &out, double v)
{
    if (v == static_cast<long long>(v) && std::fabs(v) < 1e15) {
        out += std::to_string(static_cast<long long>(v));
        return;
    }
    // Shortest representation that parses back to the same double:
    // ledger round trips (RunRecord serialize -> parse) must be
    // lossless, but "0.1" should not print as "0.1000000000000000056".
    char buf[40];
    for (int prec : {12, 15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out += buf;
}

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).run();
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out.push_back('\n');
            out.append(static_cast<size_t>(indent) * d, ' ');
        }
    };

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        numberInto(out, number_);
        break;
      case Type::String:
        escapeInto(out, string_);
        break;
      case Type::Array:
        out.push_back('[');
        for (size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            newline(depth);
        out.push_back(']');
        break;
      case Type::Object:
        out.push_back('{');
        for (size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            escapeInto(out, object_[i].first);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace optimus
