/**
 * @file
 * Minimal JSON value type, parser and writer.
 *
 * Supports the full JSON grammar (objects, arrays, strings with
 * escapes, numbers, booleans, null). Used by the config layer
 * (config/serialize.h) to load system/model/mapping descriptions and
 * to emit machine-readable reports, and by the CLI. Object member
 * order is preserved for stable output.
 */

#ifndef OPTIMUS_UTIL_JSON_H
#define OPTIMUS_UTIL_JSON_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace optimus {

/** A JSON document node. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /** Construct null. */
    JsonValue() = default;
    /** Construct a boolean. */
    static JsonValue boolean(bool v);
    /** Construct a number. */
    static JsonValue number(double v);
    /** Construct a string. */
    static JsonValue string(std::string v);
    /** Construct an empty array. */
    static JsonValue array();
    /** Construct an empty object. */
    static JsonValue object();

    /** Parse a JSON document; throws ConfigError on malformed input. */
    static JsonValue parse(const std::string &text);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; throw ConfigError on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    long long asInt() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::vector<std::pair<std::string, JsonValue>> &
    asObject() const;

    // ---- Object helpers ----
    /** True if this object has member @p key. */
    bool has(const std::string &key) const;
    /** Member access; throws ConfigError when absent. */
    const JsonValue &at(const std::string &key) const;
    /** Member access with fallback when absent. */
    double getNumber(const std::string &key, double fallback) const;
    long long getInt(const std::string &key, long long fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          std::string fallback) const;
    /** Set (or replace) a member; this must be an object. */
    JsonValue &set(const std::string &key, JsonValue value);

    // ---- Array helpers ----
    /** Append an element; this must be an array. */
    JsonValue &push(JsonValue value);
    /** Element count of an array or object. */
    size_t size() const;

    /**
     * Serialize. @p indent 0 emits compact one-line JSON; a positive
     * value pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = 0) const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;

    void dumpTo(std::string &out, int indent, int depth) const;
};

} // namespace optimus

#endif // OPTIMUS_UTIL_JSON_H
