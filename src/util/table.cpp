#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"

namespace optimus {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    checkConfig(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    checkConfig(cells.size() == headers_.size(),
                "row has " + std::to_string(cells.size()) +
                " cells, table has " + std::to_string(headers_.size()) +
                " columns");
    rows_.push_back(std::move(cells));
}

Table &
Table::beginRow()
{
    checkConfig(!building_, "beginRow called twice without endRow");
    building_ = true;
    pending_.clear();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    checkConfig(building_, "cell called outside beginRow/endRow");
    pending_.push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return cell(std::string(buf));
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

void
Table::endRow()
{
    checkConfig(building_, "endRow without beginRow");
    building_ = false;
    addRow(pending_);
    pending_.clear();
}

const std::string &
Table::at(size_t row, size_t col) const
{
    checkConfig(row < rows_.size(), "row index out of range");
    checkConfig(col < headers_.size(), "column index out of range");
    return rows_[row][col];
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            const std::string &cell = row[c];
            // RFC 4180: a field containing a separator, a quote or a
            // line break is quoted, with embedded quotes doubled —
            // kernel/category names like `attn "qk^T", fp16` must not
            // corrupt the row structure.
            bool quote =
                cell.find_first_of(",\"\n\r") != std::string::npos;
            if (quote) {
                os << '"';
                for (char ch : cell) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cell;
            }
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace optimus
