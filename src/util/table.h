/**
 * @file
 * Lightweight aligned-text table used by benches and examples to print
 * the rows of the paper's tables and figure series. Also emits CSV so
 * figure data can be post-processed.
 */

#ifndef OPTIMUS_UTIL_TABLE_H
#define OPTIMUS_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace optimus {

/**
 * A simple column-aligned table.
 *
 * Cells are strings; numeric helpers format with a fixed precision.
 * Column widths are computed on print.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a fully formed row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Begin building a row cell by cell. */
    Table &beginRow();
    /** Append a string cell to the row under construction. */
    Table &cell(const std::string &value);
    /** Append a numeric cell with @p precision decimal digits. */
    Table &cell(double value, int precision = 2);
    /** Append an integer cell. */
    Table &cell(long long value);
    /** Finish the row under construction. */
    void endRow();

    /** Number of data rows. */
    size_t rowCount() const { return rows_.size(); }
    /** Number of columns. */
    size_t columnCount() const { return headers_.size(); }

    /** Raw access to a cell (row-major), for tests. */
    const std::string &at(size_t row, size_t col) const;

    /** Print with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /**
     * Emit RFC-4180 CSV: cells containing commas, quotes or line
     * breaks are quoted, embedded quotes doubled.
     */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool building_ = false;
};

} // namespace optimus

#endif // OPTIMUS_UTIL_TABLE_H
