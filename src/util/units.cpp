#include "util/units.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace optimus {

namespace {

std::string
formatScaled(double value, const char *const *suffixes, int count,
             double base)
{
    int idx = 0;
    double v = value;
    while (std::fabs(v) >= base && idx < count - 1) {
        v /= base;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    return formatScaled(bytes, suffixes, 5, 1024.0);
}

std::string
formatTime(double seconds)
{
    char buf[64];
    double abs = std::fabs(seconds);
    if (abs >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    else if (abs >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    else if (abs >= 1e-6)
        std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.3f ns", seconds * 1e9);
    return buf;
}

std::string
formatFlops(double flops_per_s)
{
    static const char *suffixes[] = {"FLOPS", "KFLOPS", "MFLOPS",
                                     "GFLOPS", "TFLOPS", "PFLOPS"};
    return formatScaled(flops_per_s, suffixes, 6, 1000.0);
}

std::string
formatBandwidth(double bytes_per_s)
{
    static const char *suffixes[] = {"B/s", "KB/s", "MB/s", "GB/s",
                                     "TB/s"};
    return formatScaled(bytes_per_s, suffixes, 5, 1000.0);
}

double
relativeErrorPct(double predicted, double reference)
{
    if (reference == 0.0) {
        // No reference to be relative to. Zero-vs-zero is exact;
        // anything else is undefined — NaN, so a silent 0% cannot
        // mask a real misprediction.
        return predicted == 0.0
                   ? 0.0
                   : std::numeric_limits<double>::quiet_NaN();
    }
    return std::fabs(predicted - reference) / std::fabs(reference) * 100.0;
}

std::string
formatErrorPct(double error_pct)
{
    if (std::isnan(error_pct))
        return "n/a";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", error_pct);
    return buf;
}

} // namespace optimus
