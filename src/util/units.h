/**
 * @file
 * Unit helpers for the quantities the performance model works in.
 *
 * The library stores every physical quantity in base SI units:
 * bytes, seconds, FLOP/s, bytes/s, watts, mm^2. These helpers make
 * configuration values readable ("80 * GiB", "1.9 * TBps") and
 * formatting consistent everywhere.
 */

#ifndef OPTIMUS_UTIL_UNITS_H
#define OPTIMUS_UTIL_UNITS_H

#include <cstdint>
#include <string>

namespace optimus {

// Decimal byte / rate multipliers (vendors quote bandwidth decimal).
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;
constexpr double TB = 1e12;

// Binary capacity multipliers (DRAM / cache capacities).
constexpr double KiB = 1024.0;
constexpr double MiB = 1024.0 * KiB;
constexpr double GiB = 1024.0 * MiB;

// Bandwidth, bytes per second.
constexpr double GBps = 1e9;
constexpr double TBps = 1e12;

// Bit-rate helpers, also bytes per second: vendors quote network
// links in bits/s ("400G InfiniBand" = 400 * Gbps = 50 GB/s).
constexpr double Mbps = 1e6 / 8.0;
constexpr double Gbps = 1e9 / 8.0;
constexpr double Tbps = 1e12 / 8.0;

// Compute throughput, FLOP per second.
constexpr double GFLOPS = 1e9;
constexpr double TFLOPS = 1e12;
constexpr double PFLOPS = 1e15;

// Time, seconds.
constexpr double nsec = 1e-9;
constexpr double usec = 1e-6;
constexpr double msec = 1e-3;

/** Format a byte count with a binary suffix, e.g. "80.0 GiB". */
std::string formatBytes(double bytes);

/** Format a time in seconds with an adaptive suffix, e.g. "41.3 us". */
std::string formatTime(double seconds);

/** Format a FLOP/s rate with an adaptive suffix, e.g. "312.0 TFLOPS". */
std::string formatFlops(double flops_per_s);

/** Format a bandwidth with an adaptive suffix, e.g. "1.9 TB/s". */
std::string formatBandwidth(double bytes_per_s);

/**
 * Relative error in percent between a prediction and a reference.
 * Returns |pred - ref| / ref * 100. A reference of zero has no
 * defined relative error: the result is NaN (unless the prediction
 * is also zero, which is exact). Print through formatErrorPct().
 */
double relativeErrorPct(double predicted, double reference);

/** Format a relative error: "12.3" (one decimal), or "n/a" for NaN. */
std::string formatErrorPct(double error_pct);

} // namespace optimus

#endif // OPTIMUS_UTIL_UNITS_H
