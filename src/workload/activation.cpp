#include "workload/activation.h"

#include <cmath>

#include "util/error.h"
#include "workload/graph.h"

namespace optimus {

const char *
recomputeName(Recompute r)
{
    switch (r) {
      case Recompute::None: return "none";
      case Recompute::Selective: return "selective";
      case Recompute::Full: return "full";
    }
    throw ModelError("unknown recompute strategy");
}

double
ActivationBreakdown::total() const
{
    return attentionLinear + scores + mlp + norms;
}

ActivationBreakdown
layerActivations(const TransformerConfig &cfg, const ActivationParams &p)
{
    cfg.validate();
    checkPositive(p.microbatch, "microbatch");
    checkPositive(p.seq, "seq");
    checkPositive(p.tensorParallel, "tensorParallel");
    checkPositive(p.activationBytes, "activationBytes");

    const double B = p.activationBytes;
    const double s = double(p.seq);
    const double b = double(p.microbatch);
    const double h = double(cfg.hiddenSize);
    const double f = double(cfg.ffnHidden);
    const double a = double(cfg.numHeads);
    const double kvh = double(cfg.numKvHeads);
    const double hd = double(cfg.headDim());
    const double t = double(p.tensorParallel);
    // Fraction kept by the parts TP does not shard; SP shards them too.
    const double sp = p.sequenceParallel ? 1.0 / t : 1.0;

    ActivationBreakdown out;

    // Two layer-norm inputs (the first is the layer input itself).
    out.norms = 2.0 * B * s * b * h * sp;
    out.input = B * s * b * h * sp;

    // Attention: QKV input + out-proj dropout mask are unsharded by
    // TP; Q, K, V and the context output Z shard across heads.
    double qkv_outputs = B * s * b * (h + 2.0 * kvh * hd) / t;
    double z = B * s * b * h / t;
    out.attentionLinear =
        (B * s * b * h + 1.0 * s * b * h) * sp + qkv_outputs + z;

    // Softmax output + dropout mask (1 byte) + dropout output: the
    // region selective recomputation drops (Eq. 2), sharded by heads.
    // FlashAttention never materializes it; only fp32 row statistics
    // (running max + normalizer) survive to the backward pass.
    if (p.flashAttention)
        out.scores = 2.0 * 4.0 * a * s * b / t;
    else
        out.scores = (2.0 * B + 1.0) * a * s * s * b / t;

    // MLP: fc1 input + output dropout mask unsharded; the f-wide
    // activations shard. SwiGLU stores gate, up and their product.
    // MoE processes (and stores) topK expert activations per token.
    double f_tensors = (cfg.mlp == MlpKind::SwiGlu) ? 3.0 : 2.0;
    double routed = double(cfg.topK);
    out.mlp = (B * s * b * h + 1.0 * s * b * h) * sp +
              routed * f_tensors * B * s * b * f / t;

    return out;
}

double
activationMemory(const TransformerConfig &cfg, const ActivationParams &p,
                 long long layers, Recompute strategy,
                 long long checkpoints)
{
    checkPositive(layers, "layers");
    ActivationBreakdown br = layerActivations(cfg, p);
    const double a_tot = br.total();
    const double a_inp = br.input;
    const double L = double(layers);

    switch (strategy) {
      case Recompute::None:
        return L * a_tot;
      case Recompute::Selective:
        // Eq. 2.
        return L * (a_tot - br.scores);
      case Recompute::Full: {
        // Eq. 1. Default: checkpoint every layer (Megatron's full
        // recomputation), i.e. N_ckp = L.
        long long n_ckp = checkpoints > 0 ? checkpoints : layers;
        checkConfig(n_ckp <= layers,
                    "checkpoints cannot exceed resident layers");
        return double(n_ckp) * a_inp +
               L / double(n_ckp) * (a_tot - a_inp);
      }
    }
    throw ModelError("unknown recompute strategy");
}

double
recomputeForwardFraction(const TransformerConfig &cfg,
                         const ActivationParams &p, Recompute strategy)
{
    switch (strategy) {
      case Recompute::None:
        return 0.0;
      case Recompute::Full:
        return 1.0;
      case Recompute::Selective: {
        // Recompute only the attention-score region: QK^T, softmax,
        // dropout, and the attention-over-V contraction.
        LayerGraphParams gp;
        gp.batch = p.microbatch;
        gp.seq = p.seq;
        gp.tensorParallel = p.tensorParallel;
        gp.sequenceParallel = p.sequenceParallel;
        gp.flashAttention = p.flashAttention;
        gp.training = true;
        std::vector<Op> ops = layerForwardOps(cfg, gp);
        double total = 0.0;
        double region = 0.0;
        for (const Op &op : ops) {
            double fl = opFlops(op);
            total += fl;
            if (op.name == "qk^T" || op.name == "attn-softmax" ||
                op.name == "attn-dropout" || op.name == "attn-v") {
                region += fl;
            }
        }
        checkConfig(total > 0.0, "layer has no forward work");
        return region / total;
      }
    }
    throw ModelError("unknown recompute strategy");
}

} // namespace optimus
