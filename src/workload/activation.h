/**
 * @file
 * Activation-memory accounting for training (paper Sec. 3.3).
 *
 * Implements the per-layer activation breakdown of Korthikanti et al.
 * ("Reducing activation recomputation in large transformer models",
 * the paper's [14]) and the two recomputation equations:
 *
 *   Eq. 1 (full):      A_full = N_ckp A_inp + L/N_ckp (A_tot - A_inp)
 *   Eq. 2 (selective): A_sel  = L (A_tot - (A_sm + A_do_mask + A_do_out))
 *
 * All sizes are bytes per device for one microbatch in flight.
 */

#ifndef OPTIMUS_WORKLOAD_ACTIVATION_H
#define OPTIMUS_WORKLOAD_ACTIVATION_H

#include "workload/model_config.h"

namespace optimus {

/** Activation recomputation strategy (Sec. 3.3). */
enum class Recompute {
    None,       ///< store everything
    Selective,  ///< recompute softmax/dropout region (Eq. 2)
    Full,       ///< checkpoint layer inputs, replay forward (Eq. 1)
};

/** Human-readable name ("none", "selective", "full"). */
const char *recomputeName(Recompute r);

/** Inputs to the activation accounting. */
struct ActivationParams
{
    long long microbatch = 1;
    long long seq = 2048;
    long long tensorParallel = 1;
    bool sequenceParallel = false;
    double activationBytes = 2.0;  ///< fp16 mixed-precision training

    /**
     * Fused IO-aware attention: the s x s score region is never
     * materialized, so the Eq. 2 terms shrink to the per-row softmax
     * statistics FlashAttention keeps for the backward pass.
     */
    bool flashAttention = false;
};

/**
 * Component breakdown of one layer's stored activations on one
 * device. The "scores" component is the softmax input + dropout mask
 * + dropout output removed by selective recomputation.
 */
struct ActivationBreakdown
{
    double attentionLinear = 0.0;  ///< QKV/out-proj inputs and outputs
    double scores = 0.0;           ///< 5 a s^2 b region (Eq. 2 terms)
    double mlp = 0.0;              ///< FFN activations
    double norms = 0.0;            ///< layer-norm inputs + dropouts
    double input = 0.0;            ///< layer input (checkpoint unit)

    /** Total stored bytes for the layer. */
    double total() const;
};

/** Per-layer activation breakdown under TP/SP sharding. */
ActivationBreakdown layerActivations(const TransformerConfig &cfg,
                                     const ActivationParams &p);

/**
 * Stored activation bytes for @p layers layers under @p strategy.
 *
 * @param layers      layers resident on this device (L in Eqs. 1-2)
 * @param checkpoints N_ckp in Eq. 1; clamped to [1, layers]; a value
 *                    of 0 selects sqrt(L) checkpointing
 */
double activationMemory(const TransformerConfig &cfg,
                        const ActivationParams &p, long long layers,
                        Recompute strategy, long long checkpoints = 0);

/**
 * Extra forward work factor caused by recomputation: 1.0 for full
 * (the whole forward pass runs again), ~0 for none. Selective
 * recomputes only the cheap softmax/dropout region; we charge the
 * fraction of forward FLOPs in that region.
 */
double recomputeForwardFraction(const TransformerConfig &cfg,
                                const ActivationParams &p,
                                Recompute strategy);

} // namespace optimus

#endif // OPTIMUS_WORKLOAD_ACTIVATION_H
