#include "workload/graph.h"

#include <cmath>

#include "roofline/stream.h"
#include "util/error.h"

namespace optimus {

namespace {

Op
gemmOp(const std::string &name, long long m, long long n, long long k,
       Precision prec, long long count = 1)
{
    Op op;
    op.name = name;
    op.kind = OpKind::Gemm;
    op.gemm = {m, n, k, prec};
    op.count = count;
    return op;
}

Op
softmaxOp(const std::string &name, double rows, double cols)
{
    Op op;
    op.name = name;
    op.kind = OpKind::Softmax;
    op.rows = rows;
    op.cols = cols;
    return op;
}

Op
layerNormOp(const std::string &name, double rows, double cols)
{
    Op op;
    op.name = name;
    op.kind = OpKind::LayerNorm;
    op.rows = rows;
    op.cols = cols;
    return op;
}

Op
elementwiseOp(const std::string &name, double elements,
              double flops_per_elem, bool fused = false)
{
    Op op;
    op.name = name;
    op.kind = OpKind::Elementwise;
    op.elements = elements;
    op.flopsPerElement = flops_per_elem;
    op.fused = fused;
    return op;
}

/**
 * FFN ops for @p tokens device-local tokens: the dense MLP, or the
 * router plus the sharded expert FFNs for MoE (each token activates
 * topK of the numExperts experts; experts shard over expertParallel
 * devices and the expert width over tensorParallel).
 */
void
appendFfnOps(std::vector<Op> &ops, const TransformerConfig &cfg,
             long long tokens, long long t, long long ep,
             Precision prec, bool training)
{
    const long long h = cfg.hiddenSize;
    const long long f_local = cfg.ffnHidden / t;

    if (!cfg.isMoe()) {
        if (cfg.mlp == MlpKind::SwiGlu) {
            ops.push_back(gemmOp("mlp-gate-up", tokens, f_local, h,
                                 prec, 2));
            ops.push_back(elementwiseOp("swiglu",
                                        double(tokens) * f_local,
                                        2.0));
        } else {
            ops.push_back(gemmOp("mlp-fc1", tokens, f_local, h,
                                 prec));
            ops.push_back(elementwiseOp("gelu",
                                        double(tokens) * f_local,
                                        4.0));
        }
        ops.push_back(gemmOp("mlp-fc2", tokens, h, f_local, prec));
        return;
    }

    // Router: score every token against every expert, pick top-k.
    ops.push_back(gemmOp("moe-router", tokens, cfg.numExperts, h,
                         prec));
    ops.push_back(softmaxOp("router-softmax", double(tokens),
                            double(cfg.numExperts)));

    // Balanced routing: after the all-to-all each of the ep shards
    // processes tokens*topK expert-token units across its local
    // experts; with few tokens (decode) only the activated experts'
    // weights are touched.
    const long long experts_local =
        std::max<long long>(1, cfg.numExperts / ep);
    const long long expert_tokens = tokens * cfg.topK;
    const long long active =
        std::min<long long>(experts_local, expert_tokens);
    const long long m_e = (expert_tokens + active - 1) / active;

    if (cfg.mlp == MlpKind::SwiGlu) {
        ops.push_back(gemmOp("moe-gate-up", m_e, f_local, h, prec,
                             2 * active));
        ops.push_back(elementwiseOp("swiglu",
                                    double(expert_tokens) * f_local,
                                    2.0));
    } else {
        ops.push_back(gemmOp("moe-fc1", m_e, f_local, h, prec,
                             active));
        ops.push_back(elementwiseOp("gelu",
                                    double(expert_tokens) * f_local,
                                    4.0));
    }
    ops.push_back(gemmOp("moe-fc2", m_e, h, f_local, prec, active));
    // Weighted combine of the top-k expert outputs per token.
    ops.push_back(elementwiseOp("moe-combine",
                                double(expert_tokens) * h, 1.0,
                                !training));
}

} // namespace

std::vector<Op>
layerForwardOps(const TransformerConfig &cfg, const LayerGraphParams &p)
{
    cfg.validate();
    checkPositive(p.batch, "batch");
    checkPositive(p.seq, "seq");
    checkPositive(p.tensorParallel, "tensorParallel");
    checkPositive(p.contextParallel, "contextParallel");
    checkConfig(cfg.numHeads % p.tensorParallel == 0,
                cfg.name + ": heads must divide by TP degree");
    checkConfig(p.seq % p.contextParallel == 0,
                "sequence must divide by the CP degree");
    checkConfig(p.contextParallel == 1 || p.flashAttention,
                "context parallelism (ring attention) requires "
                "flashAttention");

    const long long t = p.tensorParallel;
    const long long h = cfg.hiddenSize;
    const long long hd = cfg.headDim();
    const long long heads_local = cfg.numHeads / t;
    const long long kv_local =
        std::max<long long>(1, cfg.numKvHeads / t);
    // Context parallelism shards the sequence itself across devices.
    const long long seq_local = p.seq / p.contextParallel;
    const long long tokens = p.batch * seq_local;
    // With sequence parallelism the norm/dropout rows are sharded.
    const double norm_tokens =
        p.sequenceParallel ? double(tokens) / t : double(tokens);

    std::vector<Op> ops;

    ops.push_back(layerNormOp("ln1", norm_tokens, double(h)));

    // Merged-head QKV projection: X[T,h] x W[h, (q + 2 kv) local].
    const long long qkv_cols = heads_local * hd + 2 * kv_local * hd;
    ops.push_back(gemmOp("qkv-proj", tokens, qkv_cols, h, p.precision));

    if (p.flashAttention) {
        // IO-aware fused attention: the same 4*b*a*s^2*hd FLOPs, but
        // only Q, K, V, O cross DRAM; K/V tiles are re-streamed from
        // L2 once per query block (block size ~128 rows).
        const double elem = precisionBytes(p.precision);
        Op fa;
        fa.name = "flash-attention";
        fa.kind = OpKind::FusedAttention;
        fa.fusedPrecision = p.precision;
        // Local queries attend over the FULL sequence (the KV set
        // circulates around the CP ring).
        fa.fusedFlops = 4.0 * double(p.batch) * heads_local *
                        double(seq_local) * double(p.seq) *
                        double(hd);
        fa.fusedDramBytes =
            (2.0 * heads_local * seq_local +
             2.0 * kv_local * p.seq) *
            double(p.batch) * double(hd) * elem;
        fa.fusedOnChipBytes =
            2.0 * double(p.batch) * heads_local *
            std::ceil(double(seq_local) / 128.0) * double(p.seq) *
            double(hd) * elem;
        ops.push_back(fa);
    } else {
        // Attention scores: Q[s,hd] x K^T[hd,s]. With grouped-query
        // attention the group's query heads share one K head, so the
        // batched GEMM runs per KV head with the group's queries
        // stacked (K streams once per group). Training uses fused
        // batched kernels (one launch); inference prefill launches
        // per head, the paper's Table 4 accounting.
        const long long group = heads_local / kv_local;
        Op qkt = gemmOp("qk^T", group * p.seq, p.seq, hd, p.precision,
                        p.batch * kv_local);
        if (!p.training)
            qkt.launchCount = heads_local;
        ops.push_back(qkt);

        ops.push_back(softmaxOp("attn-softmax",
                                double(p.batch) * heads_local * p.seq,
                                double(p.seq)));
        if (p.training) {
            ops.push_back(elementwiseOp(
                "attn-dropout",
                double(p.batch) * heads_local * p.seq * p.seq, 1.0));
        }

        // Weighted values: softmax(R)[s,s] x V[s,hd]; V is likewise
        // shared across each query-head group.
        Op av = gemmOp("attn-v", group * p.seq, hd, p.seq,
                       p.precision, p.batch * kv_local);
        if (!p.training)
            av.launchCount = heads_local;
        ops.push_back(av);
    }

    // Output projection: Z[T, h/t] x W[h/t, h] (row-parallel).
    ops.push_back(gemmOp("attn-out", tokens, h, heads_local * hd,
                         p.precision));
    if (p.training) {
        ops.push_back(elementwiseOp("attn-res-dropout",
                                    norm_tokens * h, 1.0));
    }
    ops.push_back(elementwiseOp("attn-residual", norm_tokens * h, 1.0,
                                true));

    ops.push_back(layerNormOp("ln2", norm_tokens, double(h)));

    // FFN block (column-parallel then row-parallel; MoE routes over
    // sharded experts).
    appendFfnOps(ops, cfg, tokens, t, p.expertParallel, p.precision,
                 p.training);
    if (p.training) {
        ops.push_back(elementwiseOp("mlp-res-dropout",
                                    norm_tokens * h, 1.0));
    }
    ops.push_back(elementwiseOp("mlp-residual", norm_tokens * h, 1.0,
                                true));

    return ops;
}

std::vector<Op>
layerBackwardOps(const TransformerConfig &cfg, const LayerGraphParams &p)
{
    std::vector<Op> fwd = layerForwardOps(cfg, p);
    std::vector<Op> bwd;
    bwd.reserve(fwd.size() * 2);

    for (auto it = fwd.rbegin(); it != fwd.rend(); ++it) {
        const Op &op = *it;
        if (op.kind == OpKind::Gemm) {
            // C[m,n] = A[m,k] B[k,n]:
            //   dA[m,k] = dC[m,n] B^T[n,k]   (data gradient)
            //   dB[k,n] = A^T[k,m] dC[m,n]   (weight gradient)
            const GemmShape &g = op.gemm;
            Op dgrad = gemmOp(op.name + "-dgrad", g.m, g.k, g.n,
                              g.precision, op.count);
            Op wgrad = gemmOp(op.name + "-wgrad", g.k, g.n, g.m,
                              g.precision, op.count);
            bwd.push_back(dgrad);
            bwd.push_back(wgrad);
        } else if (op.kind == OpKind::FusedAttention) {
            // FlashAttention backward recomputes the score tiles:
            // ~2.5x the forward FLOPs, ~2x the DRAM traffic (dQ, dK,
            // dV plus the forward operands again).
            Op back = op;
            back.name = op.name + "-bwd";
            back.fusedFlops = op.fusedFlops * 2.5;
            back.fusedDramBytes = op.fusedDramBytes * 2.0;
            back.fusedOnChipBytes = op.fusedOnChipBytes * 2.5;
            bwd.push_back(back);
        } else {
            // Stream ops stream roughly the same bytes again on the
            // way back (dropout applies its mask, norms need two
            // passes worth of traffic).
            Op back = op;
            back.name = op.name + "-bwd";
            bwd.push_back(back);
        }
    }
    return bwd;
}

std::vector<Op>
decodeLayerOps(const TransformerConfig &cfg, long long batch,
               long long context, long long tensor_parallel,
               Precision precision)
{
    return decodeLayerOps(cfg, batch, context, tensor_parallel,
                          precision, precision);
}

std::vector<Op>
decodeLayerOps(const TransformerConfig &cfg, long long batch,
               long long context, long long tensor_parallel,
               Precision precision, Precision kv_precision)
{
    cfg.validate();
    checkPositive(batch, "batch");
    checkPositive(context, "context");
    checkPositive(tensor_parallel, "tensorParallel");

    const long long t = tensor_parallel;
    const long long h = cfg.hiddenSize;
    const long long hd = cfg.headDim();
    const long long heads_local = cfg.numHeads / t;
    const long long kv_local =
        std::max<long long>(1, cfg.numKvHeads / t);
    // Sliding-window attention bounds the readable cache.
    const long long span = cfg.attentionSpan(context);

    std::vector<Op> ops;

    ops.push_back(layerNormOp("ln1", double(batch), double(h)));

    const long long qkv_cols = heads_local * hd + 2 * kv_local * hd;
    ops.push_back(gemmOp("qkv-proj", batch, qkv_cols, h, precision));

    // KV-cache append: write this token's K and V.
    ops.push_back(elementwiseOp("kv-append",
                                double(batch) * 2.0 * kv_local * hd,
                                0.0, true));

    // Attention over the cache: the group's queries [g, hd] hit the
    // shared K^T[hd, ctx] per KV head (the cache streams once per
    // group, the GQA bandwidth saving).
    const long long group = heads_local / kv_local;
    ops.push_back(gemmOp("qk^T", group, span, hd, kv_precision,
                         batch * kv_local));
    ops.push_back(softmaxOp("attn-softmax",
                            double(batch) * heads_local,
                            double(span)));
    ops.push_back(gemmOp("attn-v", group, hd, span, kv_precision,
                         batch * kv_local));

    ops.push_back(gemmOp("attn-out", batch, h, heads_local * hd,
                         precision));
    ops.push_back(elementwiseOp("attn-residual", double(batch) * h,
                                1.0, true));

    ops.push_back(layerNormOp("ln2", double(batch), double(h)));

    appendFfnOps(ops, cfg, batch, t, /*ep=*/1, precision,
                 /*training=*/false);
    ops.push_back(elementwiseOp("mlp-residual", double(batch) * h, 1.0,
                                true));

    return ops;
}

std::vector<Op>
headOps(const TransformerConfig &cfg, long long tokens,
        long long tensor_parallel, Precision precision)
{
    cfg.validate();
    checkPositive(tokens, "tokens");
    const long long v_local = cfg.vocabSize / tensor_parallel;

    std::vector<Op> ops;
    ops.push_back(layerNormOp("final-ln", double(tokens),
                              double(cfg.hiddenSize)));
    ops.push_back(gemmOp("lm-head", tokens, v_local, cfg.hiddenSize,
                         precision));
    ops.push_back(softmaxOp("logits-softmax", double(tokens),
                            double(v_local)));
    return ops;
}

double
opFlops(const Op &op)
{
    switch (op.kind) {
      case OpKind::Gemm:
        return 2.0 * double(op.gemm.m) * double(op.gemm.n) *
               double(op.gemm.k) * double(op.count);
      case OpKind::Softmax:
      case OpKind::LayerNorm:
        return 5.0 * op.rows * op.cols;
      case OpKind::Elementwise:
        return op.elements * op.flopsPerElement;
      case OpKind::FusedAttention:
        return op.fusedFlops;
      case OpKind::Stream:
        return op.streamFlops;
    }
    throw ModelError("unknown op kind");
}

KernelEstimate
evaluateOp(const Device &dev, const Op &op)
{
    switch (op.kind) {
      case OpKind::Gemm: {
        GemmOptions opts;
        opts.launchOverhead = false;
        KernelEstimate est = estimateGemm(dev, op.gemm, op.name, opts);
        // Preserve the roofline bound classification computed by
        // estimateGemm; scaling by the batch count does not change it.
        int bound = est.boundLevel;
        if (op.count > 1) {
            est.flops *= op.count;
            est.computeTime *= op.count;
            for (size_t i = 0; i < est.bytesPerLevel.size(); ++i) {
                est.bytesPerLevel[i] *= op.count;
                est.memTimePerLevel[i] *= op.count;
            }
        }
        est.overhead = double(op.launchCount) *
                       dev.kernelLaunchOverhead;
        finalizeEstimate(est);
        est.boundLevel = bound;
        return est;
      }
      case OpKind::Softmax:
        return estimateSoftmax(dev, op.rows, op.cols,
                               Precision::FP16);
      case OpKind::LayerNorm:
        return estimateLayerNorm(dev, op.rows, op.cols,
                                 Precision::FP16);
      case OpKind::Elementwise:
        return estimateElementwise(dev, op.name, op.elements,
                                   op.flopsPerElement, Precision::FP16,
                                   !op.fused);
      case OpKind::FusedAttention: {
        // Fraction of the matrix-engine ceiling a fused attention
        // kernel sustains: the two chained per-tile matmuls amortize
        // the softmax interleaving (measured FlashAttention-2 reaches
        // ~half of device peak for long sequences).
        constexpr double kFlashEfficiency = 0.5;
        KernelEstimate est;
        est.kernel = op.name;
        est.flops = op.fusedFlops;
        double peak = dev.supportsMatrix(op.fusedPrecision)
                          ? dev.matrixFlops(op.fusedPrecision) *
                                dev.matrixMaxEfficiency *
                                kFlashEfficiency
                          : dev.vectorFlops(op.fusedPrecision);
        est.computeTime = est.flops / peak;
        est.bytesPerLevel.assign(dev.mem.size(), 0.0);
        est.memTimePerLevel.assign(dev.mem.size(), 0.0);
        est.bytesPerLevel[0] = op.fusedDramBytes;
        est.memTimePerLevel[0] =
            op.fusedDramBytes /
            (dev.dram().bandwidth * dev.dram().utilization);
        if (dev.mem.size() > 1) {
            est.bytesPerLevel[1] = op.fusedOnChipBytes;
            est.memTimePerLevel[1] =
                op.fusedOnChipBytes /
                (dev.mem[1].bandwidth * dev.mem[1].utilization);
        }
        est.overhead = double(op.launchCount) *
                       dev.kernelLaunchOverhead;
        finalizeEstimate(est);
        return est;
      }
      case OpKind::Stream:
        return estimateStream(dev, op.name, op.streamBytes,
                              op.streamFlops, op.streamPrecision,
                              !op.fused);
    }
    throw ModelError("unknown op kind");
}

KernelEstimate
evaluateOps(const Device &dev, const std::vector<Op> &ops,
            const std::string &label)
{
    KernelEstimate total;
    total.kernel = label;
    total.bytesPerLevel.assign(dev.mem.size(), 0.0);
    total.memTimePerLevel.assign(dev.mem.size(), 0.0);
    for (const Op &op : ops)
        total = combineEstimates(label, total, evaluateOp(dev, op));
    return total;
}

} // namespace optimus
