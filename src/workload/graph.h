/**
 * @file
 * Per-layer operator graphs for transformer forward, backward, prefill
 * and decode phases, already sharded for Megatron-style tensor
 * parallelism (Sec. 3.2) and optional sequence parallelism.
 *
 * The graph is a flat op list per layer: the transformer data flow is
 * sequential at this abstraction level (Sec. 1.1: "structural
 * regularity and almost static nature of the data flow ... allow
 * analytical modeling").
 */

#ifndef OPTIMUS_WORKLOAD_GRAPH_H
#define OPTIMUS_WORKLOAD_GRAPH_H

#include <string>
#include <vector>

#include "hw/device.h"
#include "roofline/estimate.h"
#include "roofline/gemm.h"
#include "workload/model_config.h"

namespace optimus {

/** Operator categories the estimator distinguishes. */
enum class OpKind {
    Gemm,            ///< tensor contraction (matrix engine)
    Softmax,         ///< row-wise softmax
    LayerNorm,       ///< row-wise normalization
    Elementwise,     ///< GELU / dropout / residual / bias
    FusedAttention,  ///< IO-aware fused attention (FlashAttention)
    Stream,          ///< raw byte/FLOP stream (embedding lookups, ...)
};

/** One operator of a layer graph, sized for a single device shard. */
struct Op
{
    std::string name;
    OpKind kind = OpKind::Gemm;

    // Gemm parameters.
    GemmShape gemm;
    long long count = 1;  ///< batched identical instances

    /**
     * Kernel launches charged for the op: 1 for a fully batched
     * kernel, numHeads for the per-head attention kernels of the
     * inference prefill phase (the paper's Table 4 accounting).
     */
    long long launchCount = 1;

    // Softmax / LayerNorm parameters.
    double rows = 0.0;
    double cols = 0.0;

    // Elementwise parameters.
    double elements = 0.0;
    double flopsPerElement = 1.0;

    // FusedAttention parameters: explicit work/traffic accounting
    // (the kernel keeps the s x s score matrix on chip).
    double fusedFlops = 0.0;
    double fusedDramBytes = 0.0;
    double fusedOnChipBytes = 0.0;  ///< L2-level traffic
    Precision fusedPrecision = Precision::FP16;

    // Stream parameters: explicit DRAM byte / FLOP totals.
    double streamBytes = 0.0;
    double streamFlops = 0.0;
    Precision streamPrecision = Precision::FP16;

    bool fused = false;   ///< fused into neighbour: no launch overhead
};

/** Parameters shared by the layer-graph builders. */
struct LayerGraphParams
{
    long long batch = 1;          ///< local (micro)batch size
    long long seq = 2048;         ///< tokens per sequence
    long long tensorParallel = 1; ///< TP degree
    /** Expert-parallel degree for MoE FFNs (experts sharded). */
    long long expertParallel = 1;
    /**
     * Context-parallel degree (ring attention): the sequence shards
     * across cp devices; each computes its queries against the full
     * key/value set, which circulates around the ring. Requires
     * flashAttention (ring attention is an IO-aware kernel).
     */
    long long contextParallel = 1;
    bool sequenceParallel = false;
    Precision precision = Precision::FP16;
    bool training = true;         ///< include dropout ops

    /**
     * Use IO-aware fused attention (FlashAttention, the paper's [6,7])
     * instead of the unfused QK^T / softmax / dropout / AV chain: the
     * quadratic score matrix never touches DRAM, trading extra FLOPs
     * in the backward pass for O(s^2) less memory traffic.
     */
    bool flashAttention = false;
};

/** Forward op list for one transformer layer (one device's shard). */
std::vector<Op> layerForwardOps(const TransformerConfig &cfg,
                                const LayerGraphParams &p);

/**
 * Backward op list derived from the forward graph: each GEMM yields a
 * data-gradient GEMM and a weight-gradient GEMM; stream ops move
 * roughly the same bytes again.
 */
std::vector<Op> layerBackwardOps(const TransformerConfig &cfg,
                                 const LayerGraphParams &p);

/**
 * Decode-phase op list for one layer generating one token per
 * sequence, attending over @p context cached tokens (KV cache,
 * Sec. 3.5). @p kv_precision sets the storage format of the cache
 * (KV-cache quantization serves fp16 models with fp8/int8 caches).
 */
std::vector<Op> decodeLayerOps(const TransformerConfig &cfg,
                               long long batch, long long context,
                               long long tensor_parallel,
                               Precision precision);
std::vector<Op> decodeLayerOps(const TransformerConfig &cfg,
                               long long batch, long long context,
                               long long tensor_parallel,
                               Precision precision,
                               Precision kv_precision);

/** LM head (logits GEMM + softmax) ops for @p tokens positions. */
std::vector<Op> headOps(const TransformerConfig &cfg, long long tokens,
                        long long tensor_parallel, Precision precision);

/** Evaluate one op on a device via the roofline engines. */
KernelEstimate evaluateOp(const Device &dev, const Op &op);

/** Sum of evaluateOp over a list, preserving per-level accounting. */
KernelEstimate evaluateOps(const Device &dev, const std::vector<Op> &ops,
                           const std::string &label);

/** Arithmetic work of one op (FLOPs across all counts). */
double opFlops(const Op &op);

} // namespace optimus

#endif // OPTIMUS_WORKLOAD_GRAPH_H
