#include "workload/model_config.h"

#include <algorithm>

#include "lint/lint.h"
#include "util/error.h"

namespace optimus {

long long
TransformerConfig::headDim() const
{
    return hiddenSize / numHeads;
}

long long
TransformerConfig::attentionSpan(long long context) const
{
    if (slidingWindow <= 0)
        return context;
    return std::min(context, slidingWindow);
}

double
TransformerConfig::attentionParameterCount() const
{
    const double h = double(hiddenSize);
    const double hd = double(headDim());
    const double kvh = double(numKvHeads);
    // Attention: Q is h x h; K and V are h x (kvh * hd); output h x h;
    // plus the two layer-norms (gain + bias) and, for MoE, the router.
    double attn = h * h + 2.0 * h * kvh * hd + h * h + 4.0 * h;
    if (isMoe())
        attn += h * double(numExperts);
    return attn;
}

double
TransformerConfig::expertParameterCount() const
{
    const double h = double(hiddenSize);
    const double f = double(ffnHidden);
    return (mlp == MlpKind::SwiGlu) ? 3.0 * h * f : 2.0 * h * f;
}

double
TransformerConfig::layerParameterCount() const
{
    return attentionParameterCount() +
           double(numExperts) * expertParameterCount();
}

double
TransformerConfig::embeddingParameterCount() const
{
    return double(vocabSize) * double(hiddenSize) +
           double(maxSeqLength) * double(hiddenSize);
}

double
TransformerConfig::parameterCount() const
{
    return double(numLayers) * layerParameterCount() +
           embeddingParameterCount() + 2.0 * double(hiddenSize);
}

void
TransformerConfig::validate() const
{
    lint::enforce(lint::lintModel(*this));
}

} // namespace optimus
