/**
 * @file
 * Transformer (decoder-only LLM) architecture description.
 *
 * Enough structure to derive parameter counts, per-layer op graphs,
 * activation sizes, and KV-cache sizes for GPT-class and Llama-class
 * models (Sec. 1.1 of the paper).
 */

#ifndef OPTIMUS_WORKLOAD_MODEL_CONFIG_H
#define OPTIMUS_WORKLOAD_MODEL_CONFIG_H

#include <string>

namespace optimus {

/** Feed-forward block flavour. */
enum class MlpKind {
    GeluTwoLayer,  ///< GPT style: h -> f (GELU) -> h
    SwiGlu,        ///< Llama style: gate+up (h -> f twice), down (f -> h)
};

/** Decoder-only transformer architecture. */
struct TransformerConfig
{
    std::string name;
    long long numLayers = 0;
    long long hiddenSize = 0;
    long long numHeads = 0;
    long long numKvHeads = 0;   ///< < numHeads for GQA (Llama2-70B)
    long long ffnHidden = 0;
    long long vocabSize = 0;
    long long maxSeqLength = 2048;
    MlpKind mlp = MlpKind::GeluTwoLayer;

    /**
     * Mixture-of-experts: number of expert FFNs per layer (1 = dense)
     * and how many each token is routed to.
     */
    long long numExperts = 1;
    long long topK = 1;

    /**
     * Sliding-window attention (Mistral-style): each token attends to
     * at most this many preceding tokens, bounding both the KV cache
     * and the decode read traffic. 0 = full attention.
     */
    long long slidingWindow = 0;

    /** Attention span for a given context length. */
    long long attentionSpan(long long context) const;

    /** Per-head dimension. */
    long long headDim() const;

    /** True for a mixture-of-experts FFN. */
    bool isMoe() const { return numExperts > 1; }

    /** Total trainable parameters (embeddings shared with LM head). */
    double parameterCount() const;

    /** Parameters in one transformer layer. */
    double layerParameterCount() const;

    /** Attention + norm parameters of one layer (expert-independent). */
    double attentionParameterCount() const;

    /** FFN parameters of ONE expert (dense: the single FFN). */
    double expertParameterCount() const;

    /** Parameters in the (tied) embedding table. */
    double embeddingParameterCount() const;

    /** Validate invariants; throws ConfigError on violation. */
    void validate() const;
};

} // namespace optimus

#endif // OPTIMUS_WORKLOAD_MODEL_CONFIG_H
