#include "workload/presets.h"

namespace optimus {
namespace models {

namespace {

TransformerConfig
gpt(const std::string &name, long long layers, long long hidden,
    long long heads)
{
    TransformerConfig c;
    c.name = name;
    c.numLayers = layers;
    c.hiddenSize = hidden;
    c.numHeads = heads;
    c.numKvHeads = heads;
    c.ffnHidden = 4 * hidden;
    c.vocabSize = 51200;
    c.maxSeqLength = 2048;
    c.mlp = MlpKind::GeluTwoLayer;
    c.validate();
    return c;
}

TransformerConfig
llama2(const std::string &name, long long layers, long long hidden,
       long long heads, long long kv_heads, long long ffn)
{
    TransformerConfig c;
    c.name = name;
    c.numLayers = layers;
    c.hiddenSize = hidden;
    c.numHeads = heads;
    c.numKvHeads = kv_heads;
    c.ffnHidden = ffn;
    c.vocabSize = 32000;
    c.maxSeqLength = 4096;
    c.mlp = MlpKind::SwiGlu;
    c.validate();
    return c;
}

} // namespace

TransformerConfig gpt7b() { return gpt("GPT-7B", 32, 4096, 32); }
TransformerConfig gpt22b() { return gpt("GPT-22B", 48, 6144, 64); }
TransformerConfig gpt175b() { return gpt("GPT-175B", 96, 12288, 96); }
TransformerConfig gpt310b() { return gpt("GPT-310B", 96, 16384, 128); }
TransformerConfig gpt530b() { return gpt("GPT-530B", 105, 20480, 128); }
TransformerConfig gpt1008b() { return gpt("GPT-1008B", 128, 25600, 160); }

TransformerConfig
llama2_7b()
{
    return llama2("Llama2-7B", 32, 4096, 32, 32, 11008);
}

TransformerConfig
llama2_13b()
{
    return llama2("Llama2-13B", 40, 5120, 40, 40, 13824);
}

TransformerConfig
llama2_70b()
{
    return llama2("Llama2-70B", 80, 8192, 64, 8, 28672);
}

namespace {

TransformerConfig
llama3(const std::string &name, long long layers, long long hidden,
       long long heads, long long ffn)
{
    TransformerConfig c;
    c.name = name;
    c.numLayers = layers;
    c.hiddenSize = hidden;
    c.numHeads = heads;
    c.numKvHeads = 8;
    c.ffnHidden = ffn;
    c.vocabSize = 128256;
    c.maxSeqLength = 8192;
    c.mlp = MlpKind::SwiGlu;
    c.validate();
    return c;
}

} // namespace

TransformerConfig
llama3_8b()
{
    return llama3("Llama3-8B", 32, 4096, 32, 14336);
}

TransformerConfig
llama3_70b()
{
    return llama3("Llama3-70B", 80, 8192, 64, 28672);
}

TransformerConfig
llama3_405b()
{
    return llama3("Llama3-405B", 126, 16384, 128, 53248);
}

TransformerConfig
mixtral8x7b()
{
    TransformerConfig c = llama2("Mixtral-8x7B", 32, 4096, 32, 8,
                                 14336);
    c.numExperts = 8;
    c.topK = 2;
    c.maxSeqLength = 32768;
    c.validate();
    return c;
}

} // namespace models
} // namespace optimus
