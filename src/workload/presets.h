/**
 * @file
 * Model presets matching the paper's workloads: the GPT family used in
 * the Megatron/Korthikanti validation (Table 1) and case studies
 * (Table 3), and the Llama-2 family used for inference (Tables 2/4,
 * Figs. 8/9). Dimensions follow the cited papers.
 */

#ifndef OPTIMUS_WORKLOAD_PRESETS_H
#define OPTIMUS_WORKLOAD_PRESETS_H

#include "workload/model_config.h"

namespace optimus {
namespace models {

/** GPT 7B: 32 layers, hidden 4096, 32 heads. */
TransformerConfig gpt7b();
/** GPT 22B: 48 layers, hidden 6144, 64 heads. */
TransformerConfig gpt22b();
/** GPT-3 175B: 96 layers, hidden 12288, 96 heads. */
TransformerConfig gpt175b();
/** GPT 310B: 96 layers, hidden 16384, 128 heads. */
TransformerConfig gpt310b();
/** GPT 530B (MT-NLG): 105 layers, hidden 20480, 128 heads. */
TransformerConfig gpt530b();
/** GPT 1008B: 128 layers, hidden 25600, 160 heads. */
TransformerConfig gpt1008b();

/** Llama-2 7B: 32 layers, hidden 4096, SwiGLU FFN 11008. */
TransformerConfig llama2_7b();
/** Llama-2 13B: 40 layers, hidden 5120, SwiGLU FFN 13824. */
TransformerConfig llama2_13b();
/** Llama-2 70B: 80 layers, hidden 8192, GQA (8 KV heads). */
TransformerConfig llama2_70b();

/** Mixtral 8x7B: 8 experts, top-2 routing, SwiGLU FFN 14336. */
TransformerConfig mixtral8x7b();

/** Llama-3 8B: 32 layers, hidden 4096, GQA (8 KV heads), vocab 128k. */
TransformerConfig llama3_8b();
/** Llama-3 70B: 80 layers, hidden 8192, GQA (8 KV heads). */
TransformerConfig llama3_70b();
/** Llama-3.1 405B: 126 layers, hidden 16384, GQA (8 KV heads). */
TransformerConfig llama3_405b();

} // namespace models
} // namespace optimus

#endif // OPTIMUS_WORKLOAD_PRESETS_H
