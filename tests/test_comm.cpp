/**
 * @file
 * Unit tests for the collective communication models: Eq. 3 (ring)
 * and Eq. 4 (double binary tree), auto selection, system mapping.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "comm/collective.h"
#include "hw/presets.h"
#include "util/error.h"
#include "util/units.h"

namespace optimus {
namespace {

NetworkLink
idealLink(double bw, double latency, double overhead = 0.0)
{
    NetworkLink l;
    l.name = "ideal";
    l.bandwidth = bw;
    l.latency = latency;
    l.halfUtilVolume = 0.0;  // utilization = max for all sizes
    l.maxUtilization = 1.0;
    l.collectiveOverhead = overhead;
    return l;
}

TEST(Collective, RingMatchesEquationThree)
{
    // T = 2K(N-1)/(N BW) + 2 l (N-1).
    NetworkLink l = idealLink(100 * GBps, 3 * usec);
    const double K = 64 * MB;
    const double N = 8;
    CollectiveResult r =
        collectiveTime(CollectiveKind::AllReduce, K, 8, l,
                       CollectiveAlgorithm::Ring);
    EXPECT_NEAR(r.bandwidthTime, 2.0 * K * (N - 1) / (N * 100 * GBps),
                1e-12);
    EXPECT_NEAR(r.latencyTime, 2.0 * 3 * usec * (N - 1), 1e-12);
    EXPECT_NEAR(r.time, r.bandwidthTime + r.latencyTime, 1e-12);
}

TEST(Collective, TreeMatchesEquationFour)
{
    // T = 2K(N-1)/(N BW) + 2 l log2(N).
    NetworkLink l = idealLink(100 * GBps, 3 * usec);
    const double K = 64 * MB;
    const double N = 8;
    CollectiveResult r =
        collectiveTime(CollectiveKind::AllReduce, K, 8, l,
                       CollectiveAlgorithm::DoubleBinaryTree);
    EXPECT_NEAR(r.bandwidthTime, 2.0 * K * (N - 1) / (N * 100 * GBps),
                1e-12);
    EXPECT_NEAR(r.latencyTime, 2.0 * 3 * usec * 3.0, 1e-12);
}

TEST(Collective, AutoPicksTheFaster)
{
    NetworkLink l = idealLink(100 * GBps, 3 * usec);
    CollectiveResult ring = collectiveTime(
        CollectiveKind::AllReduce, 1 * KB, 16, l,
        CollectiveAlgorithm::Ring);
    CollectiveResult tree = collectiveTime(
        CollectiveKind::AllReduce, 1 * KB, 16, l,
        CollectiveAlgorithm::DoubleBinaryTree);
    CollectiveResult aut = collectiveTime(
        CollectiveKind::AllReduce, 1 * KB, 16, l,
        CollectiveAlgorithm::Auto);
    EXPECT_DOUBLE_EQ(aut.time, std::min(ring.time, tree.time));
    // Small message: tree wins on latency.
    EXPECT_LT(tree.time, ring.time);
}

TEST(Collective, RingAndTreeShareBandwidthTerm)
{
    NetworkLink l = presets::nvlink3();
    for (double vol : {1 * MB, 100 * MB}) {
        CollectiveResult ring = collectiveTime(
            CollectiveKind::AllReduce, vol, 8, l,
            CollectiveAlgorithm::Ring);
        CollectiveResult tree = collectiveTime(
            CollectiveKind::AllReduce, vol, 8, l,
            CollectiveAlgorithm::DoubleBinaryTree);
        EXPECT_DOUBLE_EQ(ring.bandwidthTime, tree.bandwidthTime);
    }
}

TEST(Collective, AllGatherIsHalfAnAllReduce)
{
    NetworkLink l = idealLink(50 * GBps, 0.0);
    const double K = 10 * MB;
    double ar = collectiveTime(CollectiveKind::AllReduce, K, 4, l,
                               CollectiveAlgorithm::Ring)
                    .bandwidthTime;
    double ag = collectiveTime(CollectiveKind::AllGather, K, 4, l,
                               CollectiveAlgorithm::Ring)
                    .bandwidthTime;
    double rs = collectiveTime(CollectiveKind::ReduceScatter, K, 4, l,
                               CollectiveAlgorithm::Ring)
                    .bandwidthTime;
    EXPECT_NEAR(ag, ar / 2.0, 1e-12);
    EXPECT_NEAR(rs, ar / 2.0, 1e-12);
}

TEST(Collective, PointToPoint)
{
    NetworkLink l = idealLink(100 * GBps, 2 * usec, 5 * usec);
    CollectiveResult r = collectiveTime(CollectiveKind::PointToPoint,
                                        100 * MB, 2, l);
    EXPECT_NEAR(r.bandwidthTime, 1e8 / (100 * GBps), 1e-12);
    EXPECT_NEAR(r.latencyTime, 7 * usec, 1e-12);
}

TEST(Collective, BroadcastCost)
{
    NetworkLink l = idealLink(100 * GBps, 2 * usec);
    CollectiveResult r = collectiveTime(CollectiveKind::Broadcast,
                                        1 * GB, 8, l,
                                        CollectiveAlgorithm::Ring);
    EXPECT_NEAR(r.bandwidthTime, 1 * GB / (100 * GBps), 1e-9);
    EXPECT_NEAR(r.latencyTime, 2 * usec * 7.0, 1e-12);
}

TEST(Collective, AllToAllMatchesAllGatherWireVolume)
{
    NetworkLink l = presets::ndrInfiniBand();
    double a2a = collectiveTime(CollectiveKind::AllToAll, 64 * MB, 8,
                                l, CollectiveAlgorithm::Ring)
                     .bandwidthTime;
    double ag = collectiveTime(CollectiveKind::AllGather, 64 * MB, 8,
                               l, CollectiveAlgorithm::Ring)
                    .bandwidthTime;
    EXPECT_DOUBLE_EQ(a2a, ag);
}

TEST(Collective, SingleMemberGroupIsFree)
{
    NetworkLink l = presets::nvlink3();
    CollectiveResult r =
        collectiveTime(CollectiveKind::AllReduce, 1 * GB, 1, l);
    EXPECT_DOUBLE_EQ(r.time, 0.0);
}

TEST(Collective, CollectiveOverheadDominatesTinyMessages)
{
    NetworkLink l = presets::nvlink3();
    CollectiveResult r =
        collectiveTime(CollectiveKind::AllReduce, 1 * KB, 8, l);
    EXPECT_GE(r.latencyTime, l.collectiveOverhead);
    EXPECT_GT(r.latencyTime, r.bandwidthTime * 0.1);
}

TEST(Collective, RejectsBadInputs)
{
    NetworkLink l = presets::nvlink3();
    EXPECT_THROW(
        collectiveTime(CollectiveKind::AllReduce, -1.0, 8, l),
        ConfigError);
    EXPECT_THROW(collectiveTime(CollectiveKind::AllReduce, 1.0, 0, l),
                 ConfigError);
}

TEST(SystemCollective, IntraNodeUsesNvlink)
{
    System sys = presets::dgxA100(4);
    CollectiveResult intra = systemCollective(
        sys, CollectiveKind::AllReduce, 64 * MB, 8,
        GroupScope::IntraNode);
    CollectiveResult inter = systemCollective(
        sys, CollectiveKind::AllReduce, 64 * MB, 4,
        GroupScope::InterNode);
    // NVLink is far faster than a 1/8 share of HDR IB.
    EXPECT_LT(intra.bandwidthTime, inter.bandwidthTime);
}

TEST(SystemCollective, InterNodeSharesPerNodeBandwidth)
{
    System sys = presets::dgxA100(4);
    CollectiveResult r = systemCollective(
        sys, CollectiveKind::AllReduce, 800 * MB, 4,
        GroupScope::InterNode);
    // Effective per-group bandwidth is interLink / devicesPerNode.
    double share = sys.interLink.bandwidth / 8.0;
    double util = sys.interLink.utilization(800 * MB);
    EXPECT_NEAR(r.bandwidthTime,
                2.0 * 800 * MB * 3.0 / (4.0 * share * util), 1e-9);
}

TEST(SystemCollective, RejectsOversizedIntraNodeGroup)
{
    System sys = presets::dgxA100(4);
    EXPECT_THROW(systemCollective(sys, CollectiveKind::AllReduce,
                                  1 * MB, 16, GroupScope::IntraNode),
                 ConfigError);
}

TEST(Collective, Names)
{
    EXPECT_STREQ(collectiveName(CollectiveKind::AllReduce),
                 "all-reduce");
    EXPECT_STREQ(collectiveName(CollectiveKind::PointToPoint), "p2p");
}

// Property sweep: all-reduce time is monotone in volume and (for the
// bandwidth term) independent of N in the large-N limit.
class AllReduceVolumeTest : public ::testing::TestWithParam<double>
{};

TEST_P(AllReduceVolumeTest, MonotoneInVolume)
{
    NetworkLink l = presets::ndrInfiniBand();
    double v = GetParam();
    double t1 = collectiveTime(CollectiveKind::AllReduce, v, 8, l).time;
    double t2 =
        collectiveTime(CollectiveKind::AllReduce, 2.0 * v, 8, l).time;
    EXPECT_GT(t2, t1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllReduceVolumeTest,
                         ::testing::Values(1 * KB, 1 * MB, 100 * MB,
                                           1 * GB));

} // namespace
} // namespace optimus
