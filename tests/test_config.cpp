/**
 * @file
 * Unit tests for the config (de)serialization layer and the preset
 * registries.
 */

#include <gtest/gtest.h>

#include "config/serialize.h"
#include "hw/presets.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TEST(Registry, KnowsAllPresets)
{
    EXPECT_EQ(config::devicePresetNames().size(), 7u);
    EXPECT_EQ(config::systemPresetNames().size(), 8u);
    EXPECT_EQ(config::modelPresetNames().size(), 13u);
    EXPECT_EQ(config::devicePreset("a100-80gb").name, "A100-80GB");
    EXPECT_EQ(config::modelPreset("llama2-70b").numKvHeads, 8);
    EXPECT_EQ(config::systemPreset("dgx-h100", 4).totalDevices(), 32);
    EXPECT_THROW(config::devicePreset("tpu-v9"), ConfigError);
    EXPECT_THROW(config::modelPreset("gpt-5"), ConfigError);
    EXPECT_THROW(config::systemPreset("dgx-x", 1), ConfigError);
}

TEST(Serialize, DeviceRoundTrips)
{
    Device d = presets::h100_sxm();
    Device back = config::deviceFromJson(config::toJson(d));
    EXPECT_EQ(back.name, d.name);
    EXPECT_DOUBLE_EQ(back.matrixFlops(Precision::FP8),
                     d.matrixFlops(Precision::FP8));
    ASSERT_EQ(back.mem.size(), d.mem.size());
    for (size_t i = 0; i < d.mem.size(); ++i) {
        EXPECT_DOUBLE_EQ(back.mem[i].bandwidth, d.mem[i].bandwidth);
        EXPECT_DOUBLE_EQ(back.mem[i].capacity, d.mem[i].capacity);
    }
    EXPECT_DOUBLE_EQ(back.gemmKHalf, d.gemmKHalf);
}

TEST(Serialize, ModelRoundTrips)
{
    TransformerConfig m = models::llama2_70b();
    TransformerConfig back = config::modelFromJson(config::toJson(m));
    EXPECT_EQ(back.name, m.name);
    EXPECT_EQ(back.numLayers, m.numLayers);
    EXPECT_EQ(back.numKvHeads, 8);
    EXPECT_EQ(back.mlp, MlpKind::SwiGlu);
    EXPECT_DOUBLE_EQ(back.parameterCount(), m.parameterCount());
}

TEST(Serialize, SystemRoundTrips)
{
    System s = presets::dgxB200Nvs(16);
    System back = config::systemFromJson(config::toJson(s));
    EXPECT_EQ(back.totalDevices(), s.totalDevices());
    EXPECT_DOUBLE_EQ(back.interLink.bandwidth,
                     s.interLink.bandwidth);
    EXPECT_DOUBLE_EQ(back.device.dram().bandwidth,
                     s.device.dram().bandwidth);
}

TEST(Serialize, ParallelRoundTrips)
{
    ParallelConfig p;
    p.dataParallel = 4;
    p.tensorParallel = 8;
    p.pipelineParallel = 2;
    p.sequenceParallel = true;
    p.schedule = PipelineSchedule::Interleaved1F1B;
    p.interleavedStages = 6;
    ParallelConfig back =
        config::parallelFromJson(config::toJson(p));
    EXPECT_EQ(back.label(), p.label());
    EXPECT_EQ(back.schedule, p.schedule);
    EXPECT_EQ(back.interleavedStages, 6);
}

TEST(Deserialize, PresetReference)
{
    JsonValue j = JsonValue::parse(R"({"preset": "a100-80gb"})");
    Device d = config::deviceFromJson(j);
    EXPECT_EQ(d.name, "A100-80GB");
}

TEST(Deserialize, PresetWithOverride)
{
    // Start from the A100 and swap the DRAM bandwidth: the Fig. 9
    // style technology swap expressed as a config file.
    JsonValue j = JsonValue::parse(R"({
        "preset": "a100-80gb",
        "name": "A100-HBM3E",
        "mem": [
            {"name": "DRAM", "capacity": 1.51e11,
             "bandwidth": 4.8e12, "utilization": 0.85},
            {"name": "L2", "capacity": 4.19e7, "bandwidth": 5.5e12},
            {"name": "SMEM", "capacity": 2.1e7, "bandwidth": 1.9e13}
        ]
    })");
    Device d = config::deviceFromJson(j);
    EXPECT_EQ(d.name, "A100-HBM3E");
    EXPECT_DOUBLE_EQ(d.dram().bandwidth, 4.8e12);
    // Non-overridden fields keep the preset values.
    EXPECT_DOUBLE_EQ(d.matrixFlops(Precision::FP16), 312 * TFLOPS);
}

TEST(Deserialize, FullSystemFromScratch)
{
    JsonValue j = JsonValue::parse(R"({
        "device": {"preset": "h100-sxm"},
        "devicesPerNode": 4,
        "numNodes": 2,
        "intraLink": {"preset": "nvlink4"},
        "interLink": {"preset": "ndr-ib", "bandwidth": 2.0e11}
    })");
    System sys = config::systemFromJson(j);
    EXPECT_EQ(sys.totalDevices(), 8);
    EXPECT_DOUBLE_EQ(sys.interLink.bandwidth, 2.0e11);
    EXPECT_EQ(sys.intraLink.name, "NVLink4");
}

TEST(Deserialize, OptionsFromJson)
{
    TrainingOptions t = config::trainingOptionsFromJson(
        JsonValue::parse(R"({"precision": "fp8",
                             "recompute": "selective",
                             "seqLength": 4096,
                             "flashAttention": true,
                             "zeroStage": 2})"));
    EXPECT_EQ(t.precision, Precision::FP8);
    EXPECT_EQ(t.recompute, Recompute::Selective);
    EXPECT_EQ(t.seqLength, 4096);
    EXPECT_TRUE(t.flashAttention);
    EXPECT_EQ(t.memory.zeroStage, 2);
    EXPECT_DOUBLE_EQ(t.memory.activationBytes, 1.0);

    InferenceOptions i = config::inferenceOptionsFromJson(
        JsonValue::parse(R"({"tensorParallel": 4, "batch": 16,
                             "promptLength": 512,
                             "generateLength": 64})"));
    EXPECT_EQ(i.tensorParallel, 4);
    EXPECT_EQ(i.batch, 16);
    EXPECT_EQ(i.promptLength, 512);
    EXPECT_EQ(i.generateLength, 64);
}

TEST(Deserialize, RejectsUnknownEnumValues)
{
    EXPECT_THROW(config::trainingOptionsFromJson(JsonValue::parse(
                     R"({"recompute": "sometimes"})")),
                 ConfigError);
    EXPECT_THROW(config::parallelFromJson(JsonValue::parse(
                     R"({"schedule": "zigzag"})")),
                 ConfigError);
    EXPECT_THROW(config::modelFromJson(JsonValue::parse(
                     R"({"preset": "gpt-7b", "mlp": "relu6"})")),
                 ConfigError);
    EXPECT_THROW(config::linkFromJson(JsonValue::parse(
                     R"({"preset": "carrier-pigeon"})")),
                 ConfigError);
}

TEST(Serialize, ReportsAreWellFormed)
{
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    TrainingReport rep =
        evaluateTraining(models::gpt175b(), sys, par, 64, {});
    JsonValue j = config::toJson(rep);
    // Re-parse the dump to prove it is valid JSON with the expected
    // members.
    JsonValue back = JsonValue::parse(j.dump(2));
    EXPECT_NEAR(back.at("timePerBatch").asNumber(), rep.timePerBatch,
                1e-9);
    EXPECT_NEAR(back.at("time").at("forward").asNumber(),
                rep.time.forward, 1e-9);
    EXPECT_NEAR(back.at("memory").at("total").asNumber(),
                rep.memory.total(), 1.0);

    InferenceOptions iopts;
    InferenceReport irep =
        evaluateInference(models::llama2_13b(), sys, iopts);
    JsonValue ij = config::toJson(irep);
    JsonValue iback = JsonValue::parse(ij.dump());
    EXPECT_NEAR(iback.at("totalLatency").asNumber(),
                irep.totalLatency, 1e-9);
    EXPECT_TRUE(iback.at("fitsDeviceMemory").asBool());
}

} // namespace
} // namespace optimus
