/**
 * @file
 * Tests for context parallelism (ring attention over the sequence).
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "memory/footprint.h"
#include "training/trainer.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/graph.h"
#include "workload/presets.h"

namespace optimus {
namespace {

LayerGraphParams
cpParams(long long cp, long long seq = 8192)
{
    LayerGraphParams p;
    p.batch = 1;
    p.seq = seq;
    p.tensorParallel = 4;
    p.sequenceParallel = true;
    p.flashAttention = true;
    p.contextParallel = cp;
    return p;
}

TEST(ContextParallel, ShardsWorkButKeepsFullKvReads)
{
    TransformerConfig cfg = models::gpt7b();
    std::vector<Op> one = layerForwardOps(cfg, cpParams(1));
    std::vector<Op> four = layerForwardOps(cfg, cpParams(4));

    double flops1 = 0.0, flops4 = 0.0;
    for (const Op &op : one)
        flops1 += opFlops(op);
    for (const Op &op : four)
        flops4 += opFlops(op);
    // Per-device work shards ~4x (attention exactly, linears by
    // their token count).
    EXPECT_NEAR(flops4, flops1 / 4.0, flops1 * 0.01);

    // The fused attention still reads the FULL K/V set.
    auto fa = [](const std::vector<Op> &ops) {
        for (const Op &op : ops)
            if (op.kind == OpKind::FusedAttention)
                return op;
        throw ModelError("no fused attention op");
    };
    double q_share = 2.0 / 4.0;  // Q and O shard, K and V do not
    EXPECT_GT(fa(four).fusedDramBytes,
              fa(one).fusedDramBytes * q_share);
    EXPECT_NEAR(fa(four).fusedFlops, fa(one).fusedFlops / 4.0, 1.0);
}

TEST(ContextParallel, RequiresFlashAttention)
{
    TransformerConfig cfg = models::gpt7b();
    LayerGraphParams p = cpParams(4);
    p.flashAttention = false;
    EXPECT_THROW(layerForwardOps(cfg, p), ConfigError);
    // Sequence must divide by cp.
    p = cpParams(3, 8192);
    EXPECT_THROW(layerForwardOps(cfg, p), ConfigError);
}

TEST(ContextParallel, MultipliesDeviceCount)
{
    ParallelConfig par;
    par.dataParallel = 2;
    par.contextParallel = 4;
    par.tensorParallel = 4;
    par.pipelineParallel = 2;
    EXPECT_EQ(par.totalDevices(), 64);
}

TEST(ContextParallel, EnablesLongContextTraining)
{
    // GPT-7B at 32k context on 64 A100s: CP8 shards the activations
    // into range and pays a ring-exchange communication cost.
    TransformerConfig cfg = models::gpt7b();
    System sys = presets::dgxA100(8);

    ParallelConfig cp8;
    cp8.dataParallel = 2;
    cp8.contextParallel = 8;
    cp8.tensorParallel = 4;
    cp8.pipelineParallel = 1;

    TrainingOptions opts;
    opts.seqLength = 32768;
    opts.recompute = Recompute::Selective;
    opts.flashAttention = true;
    opts.memory.flashAttention = true;

    TrainingReport rep = evaluateTraining(cfg, sys, cp8, 16, opts);
    EXPECT_GT(rep.time.cpComm, 0.0);
    EXPECT_LT(rep.memory.total(), 80 * GiB);

    // The same budget without CP (DP instead) overflows.
    ParallelConfig no_cp = cp8;
    no_cp.contextParallel = 1;
    no_cp.dataParallel = 16;
    TrainingMemory mem = trainingMemoryPerDevice(
        cfg, no_cp, 16, 32768, Recompute::Selective, opts.memory);
    EXPECT_GT(mem.total(), 80 * GiB);
}

TEST(ContextParallel, SeqMustDivide)
{
    TransformerConfig cfg = models::gpt7b();
    System sys = presets::dgxA100(4);
    ParallelConfig par;
    par.contextParallel = 4;
    par.tensorParallel = 8;
    TrainingOptions opts;
    opts.seqLength = 2050;  // not divisible by 4
    opts.flashAttention = true;
    EXPECT_THROW(evaluateTraining(cfg, sys, par, 8, opts),
                 ConfigError);
}

} // namespace
} // namespace optimus
