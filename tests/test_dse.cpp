/**
 * @file
 * Unit tests for the design-space exploration engine.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "dse/search.h"
#include "roofline/gemm.h"
#include "util/error.h"
#include "workload/graph.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TechConfig
corner(const char *node, DramTech dram)
{
    TechConfig tech;
    tech.node = logicNode(node);
    tech.dram = std::move(dram);
    return tech;
}

TEST(Dse, FindsAtLeastGridOptimum)
{
    TechConfig tech = corner("N5", dram::hbm3_26());
    auto objective = [](const Device &dev) {
        return estimateGemm(dev, {4096, 4096, 4096, Precision::FP16})
            .time;
    };
    DseResult r = optimizeAllocation(tech, objective);

    // The result must beat (or tie) a few hand-picked allocations.
    for (double area : {0.2, 0.5, 0.8}) {
        for (double power : {0.3, 0.6, 0.9}) {
            Device d = buildDevice(tech, {area, power});
            EXPECT_LE(r.objective, objective(d) * (1.0 + 1e-9));
        }
    }
    EXPECT_GT(r.evaluations, 10);
}

TEST(Dse, RespectsFractionBounds)
{
    TechConfig tech = corner("N3", dram::hbm2());
    DseOptions opts;
    opts.minFraction = 0.2;
    opts.maxFraction = 0.8;
    DseResult r = optimizeAllocation(
        tech,
        [](const Device &dev) {
            return estimateGemm(dev,
                                {8192, 8192, 8192, Precision::FP16})
                .time;
        },
        opts);
    EXPECT_GE(r.allocation.computeAreaFraction, 0.2);
    EXPECT_LE(r.allocation.computeAreaFraction, 0.8);
    EXPECT_GE(r.allocation.computePowerFraction, 0.2);
    EXPECT_LE(r.allocation.computePowerFraction, 0.8);
}

TEST(Dse, ComputeHeavyObjectiveWantsComputeArea)
{
    TechConfig tech = corner("N7", dram::hbm3_26());

    // Compute-bound objective: a huge fat GEMM.
    DseResult fat = optimizeAllocation(tech, [](const Device &dev) {
        return estimateGemm(dev, {16384, 16384, 16384,
                                  Precision::FP16})
            .time;
    });

    // Cache-sensitive objective: penalize DRAM traffic directly so
    // the optimum wants on-chip capacity.
    DseResult cachey = optimizeAllocation(tech, [](const Device &dev) {
        KernelEstimate est = estimateGemm(
            dev, {8192, 8192, 8192, Precision::FP16});
        return est.bytesPerLevel[0];
    });

    EXPECT_GT(fat.allocation.computeAreaFraction,
              cachey.allocation.computeAreaFraction);
}

TEST(Dse, DeviceMatchesReportedAllocation)
{
    TechConfig tech = corner("N2", dram::hbm4());
    DseResult r = optimizeAllocation(tech, [](const Device &dev) {
        return estimateGemm(dev, {2048, 2048, 2048, Precision::FP16})
            .time;
    });
    Device rebuilt = buildDevice(tech, r.allocation);
    EXPECT_DOUBLE_EQ(rebuilt.matrixFlops(Precision::FP16),
                     r.device.matrixFlops(Precision::FP16));
    EXPECT_DOUBLE_EQ(rebuilt.level("L2").capacity,
                     r.device.level("L2").capacity);
}

TEST(Dse, RequiresObjective)
{
    TechConfig tech = corner("N5", dram::hbm2e());
    EXPECT_THROW(optimizeAllocation(tech, DeviceObjective{}),
                 ConfigError);
}

TEST(Dse, DeterministicForFixedInputs)
{
    TechConfig tech = corner("N5", dram::hbm2e());
    auto objective = [](const Device &dev) {
        return estimateGemm(dev, {4096, 4096, 4096, Precision::FP16})
            .time;
    };
    DseResult a = optimizeAllocation(tech, objective);
    DseResult b = optimizeAllocation(tech, objective);
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
    EXPECT_DOUBLE_EQ(a.allocation.computeAreaFraction,
                     b.allocation.computeAreaFraction);
}

// Property: a better technology corner never worsens the optimized
// objective (more density/efficiency strictly helps a GEMM).
class CornerSweepTest : public ::testing::TestWithParam<int>
{};

TEST_P(CornerSweepTest, BetterNodesGiveBetterOptima)
{
    const auto &nodes = logicNodes();
    int i = GetParam();
    auto objective = [](const Device &dev) {
        return estimateGemm(dev, {4096, 4096, 4096, Precision::FP16})
            .time;
    };
    TechConfig a, b;
    a.node = nodes[i];
    b.node = nodes[i + 1];
    a.dram = b.dram = dram::hbm3_26();
    EXPECT_GE(optimizeAllocation(a, objective).objective,
              optimizeAllocation(b, objective).objective * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CornerSweepTest,
                         ::testing::Range(0, 6));

} // namespace
} // namespace optimus
