/**
 * @file
 * Unit tests for the energy/TCO extension module.
 */

#include <gtest/gtest.h>

#include "energy/energy.h"
#include "hw/presets.h"
#include "util/error.h"
#include "workload/presets.h"

namespace optimus {
namespace {

struct Fixture
{
    TransformerConfig cfg = models::gpt175b();
    System sys = presets::dgxA100(8);
    ParallelConfig par;
    TrainingReport rep;

    Fixture()
    {
        par.tensorParallel = 8;
        par.pipelineParallel = 8;
        rep = evaluateTraining(cfg, sys, par, 64, {});
    }
};

TEST(Energy, ComponentsArePositiveAndSum)
{
    Fixture f;
    EnergyReport e =
        trainingEnergyPerBatch(f.cfg, f.sys, f.par, 64, f.rep);
    EXPECT_GT(e.compute, 0.0);
    EXPECT_GT(e.dram, 0.0);
    EXPECT_GT(e.network, 0.0);
    EXPECT_GT(e.idle, 0.0);
    EXPECT_DOUBLE_EQ(e.total(),
                     e.compute + e.dram + e.network + e.idle);
}

TEST(Energy, AveragePowerIsWithinFleetTdp)
{
    Fixture f;
    EnergyReport e =
        trainingEnergyPerBatch(f.cfg, f.sys, f.par, 64, f.rep);
    double watts = e.averagePower(f.rep.timePerBatch);
    double fleet_tdp = 400.0 * 64.0;
    EXPECT_GT(watts, 0.1 * fleet_tdp);
    EXPECT_LT(watts, 1.5 * fleet_tdp);
}

TEST(Energy, ScaledModelTracksTechnology)
{
    EnergyModel base;
    EnergyModel better = base.scaled(2.0, 10e-12);
    EXPECT_DOUBLE_EQ(better.flopEnergy, base.flopEnergy / 2.0);
    EXPECT_DOUBLE_EQ(better.dramEnergyPerByte, 10e-12);
    EXPECT_THROW(base.scaled(0.0, 1e-12), ConfigError);
}

TEST(Energy, MoreEfficientLogicCutsComputeEnergy)
{
    Fixture f;
    EnergyModel eff = EnergyModel{}.scaled(2.0, 28e-12);
    EnergyReport a =
        trainingEnergyPerBatch(f.cfg, f.sys, f.par, 64, f.rep);
    EnergyReport b =
        trainingEnergyPerBatch(f.cfg, f.sys, f.par, 64, f.rep, eff);
    EXPECT_NEAR(b.compute, a.compute / 2.0, a.compute * 1e-9);
    EXPECT_DOUBLE_EQ(b.dram, a.dram);
}

TEST(Tco, CapexAmortizesOverRunTime)
{
    Fixture f;
    EnergyReport e =
        trainingEnergyPerBatch(f.cfg, f.sys, f.par, 64, f.rep);
    TcoReport one = trainingCost(f.sys, f.rep.timePerBatch, 1000, e);
    TcoReport two = trainingCost(f.sys, f.rep.timePerBatch, 2000, e);
    EXPECT_NEAR(two.capexUsd, one.capexUsd * 2.0, one.capexUsd * 1e-9);
    EXPECT_NEAR(two.energyUsd, one.energyUsd * 2.0,
                one.energyUsd * 1e-9);
    EXPECT_DOUBLE_EQ(one.totalUsd, one.capexUsd + one.energyUsd);
}

TEST(Tco, Gpt3ScaleTrainingCostsMillions)
{
    // Order-of-magnitude check against the ~$10M full-training quote
    // the paper's introduction cites for GPT-3: ~300B tokens at batch
    // 64 x 2048 tokens -> ~2.3M batches on 64 GPUs.
    Fixture f;
    EnergyReport e =
        trainingEnergyPerBatch(f.cfg, f.sys, f.par, 64, f.rep);
    TcoReport tco =
        trainingCost(f.sys, f.rep.timePerBatch, 2'300'000, e);
    EXPECT_GT(tco.totalUsd, 3e5);
    EXPECT_LT(tco.totalUsd, 1e8);
}

TEST(Tco, RejectsBadInputs)
{
    Fixture f;
    EnergyReport e;
    EXPECT_THROW(trainingCost(f.sys, 0.0, 10, e), ConfigError);
    EXPECT_THROW(trainingCost(f.sys, 1.0, 0, e), ConfigError);
    EXPECT_THROW(e.averagePower(0.0), ConfigError);
}

} // namespace
} // namespace optimus
