/**
 * @file
 * Tests for the deterministic parallel execution layer (src/exec) and
 * the memoized tile-search cache it feeds: slot-ordered outputs must
 * be bit-identical to serial at every thread count, exceptions must
 * propagate deterministically, and the planner / DSE engines routed
 * through the layer must return byte-identical results at 1 vs 8
 * threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dse/search.h"
#include "exec/exec.h"
#include "hw/presets.h"
#include "planner/planner.h"
#include "roofline/gemm.h"
#include "tech/dram.h"
#include "tech/logic_node.h"
#include "trace/trace.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TEST(ResolveThreads, ExplicitRequestWins)
{
    setenv("OPTIMUS_THREADS", "7", 1);
    EXPECT_EQ(resolveThreads(3), 3);
    unsetenv("OPTIMUS_THREADS");
}

TEST(ResolveThreads, EnvFallbackAndDefault)
{
    unsetenv("OPTIMUS_THREADS");
    EXPECT_EQ(resolveThreads(), 1);
    EXPECT_EQ(resolveThreads(0), 1);
    EXPECT_EQ(resolveThreads(-4), 1);

    setenv("OPTIMUS_THREADS", "5", 1);
    EXPECT_EQ(resolveThreads(), 5);
    setenv("OPTIMUS_THREADS", "garbage", 1);
    EXPECT_EQ(resolveThreads(), 1);
    setenv("OPTIMUS_THREADS", "-2", 1);
    EXPECT_EQ(resolveThreads(), 1);
    unsetenv("OPTIMUS_THREADS");
}

TEST(ResolveThreads, CapsAbsurdRequests)
{
    EXPECT_LE(resolveThreads(1 << 30), 1024);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        const long long n = 1000;
        std::vector<std::atomic<int>> visits(n);
        exec::parallelFor(n, threads, [&](long long i) {
            visits[static_cast<size_t>(i)].fetch_add(1);
        });
        for (long long i = 0; i < n; ++i)
            EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1)
                << "index " << i << " at " << threads << " threads";
    }
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges)
{
    std::atomic<int> count{0};
    exec::parallelFor(0, 8, [&](long long) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0);
    exec::parallelFor(-3, 8, [&](long long) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0);
    exec::parallelFor(1, 8, [&](long long) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, RethrowsLowestIndexException)
{
    for (int threads : {1, 2, 8}) {
        try {
            exec::parallelFor(100, threads, [&](long long i) {
                if (i == 17 || i == 63)
                    throw std::runtime_error(
                        "boom@" + std::to_string(i));
            });
            FAIL() << "expected exception at " << threads
                   << " threads";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom@17");
        }
    }
}

TEST(ParallelMap, MatchesSerialAtEveryThreadCount)
{
    const long long n = 4097;
    auto fn = [](long long i) { return double(i) * 1.5 + 3.0; };
    std::vector<double> serial = exec::parallelMap(n, 1, fn);
    for (int threads : {2, 8}) {
        std::vector<double> par = exec::parallelMap(n, threads, fn);
        ASSERT_EQ(par.size(), serial.size());
        for (long long i = 0; i < n; ++i)
            EXPECT_EQ(par[static_cast<size_t>(i)],
                      serial[static_cast<size_t>(i)]);
    }
}

TEST(TileCache, CountsHitsAndMisses)
{
    tileCacheClear();
    TileCacheStats s0 = tileCacheStats();
    EXPECT_EQ(s0.entries, 0u);

    GemmShape shape{4096, 4096, 4096, Precision::FP16};
    TileChoice first = searchTile(shape, 40 * MiB);
    TileCacheStats s1 = tileCacheStats();
    EXPECT_EQ(s1.misses, s0.misses + 1);
    EXPECT_EQ(s1.entries, 1u);

    TileChoice again = searchTile(shape, 40 * MiB);
    TileCacheStats s2 = tileCacheStats();
    EXPECT_EQ(s2.hits, s1.hits + 1);
    EXPECT_EQ(s2.entries, 1u);
    EXPECT_EQ(again.tm, first.tm);
    EXPECT_EQ(again.tn, first.tn);
    EXPECT_EQ(again.tk, first.tk);
    EXPECT_DOUBLE_EQ(again.traffic, first.traffic);

    // A different capacity is a different key.
    searchTile(shape, 20 * MiB);
    EXPECT_EQ(tileCacheStats().entries, 2u);
    EXPECT_GT(s2.hitRate(), 0.0);
}

TEST(TileCache, DisabledBypassesButStaysCorrect)
{
    tileCacheClear();
    GemmShape shape{2048, 2048, 2048, Precision::FP16};
    TileChoice cached = searchTile(shape, 40 * MiB);

    tileCacheSetEnabled(false);
    EXPECT_FALSE(tileCacheEnabled());
    TileCacheStats before = tileCacheStats();
    TileChoice raw = searchTile(shape, 40 * MiB);
    TileCacheStats after = tileCacheStats();
    tileCacheSetEnabled(true);
    EXPECT_TRUE(tileCacheEnabled());

    // No counter movement while disabled, identical answer.
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_EQ(raw.tm, cached.tm);
    EXPECT_EQ(raw.tn, cached.tn);
    EXPECT_EQ(raw.tk, cached.tk);
    EXPECT_DOUBLE_EQ(raw.traffic, cached.traffic);
}

TEST(TileCache, ConcurrentLookupsAgree)
{
    tileCacheClear();
    GemmShape shape{8192, 8192, 8192, Precision::FP16};
    TileChoice serial = searchTile(shape, 40 * MiB);
    std::vector<TileChoice> tiles =
        exec::parallelMap(64, 8, [&](long long) {
            return searchTile(shape, 40 * MiB);
        });
    for (const TileChoice &t : tiles) {
        EXPECT_EQ(t.tm, serial.tm);
        EXPECT_EQ(t.tn, serial.tn);
        EXPECT_EQ(t.tk, serial.tk);
        EXPECT_DOUBLE_EQ(t.traffic, serial.traffic);
    }
    EXPECT_EQ(tileCacheStats().entries, 1u);
}

std::vector<TrainingPlan>
planAt(int threads)
{
    TrainingPlannerOptions opts;
    opts.keep = 50;
    opts.microbatchSizes = {1, 2};
    opts.zeroStages = {0, 1};
    opts.threads = threads;
    return planTraining(models::gpt175b(), presets::dgxA100(16), 128,
                        opts);
}

TEST(DeterministicParallelism, PlannerIsByteIdenticalAcrossThreads)
{
    std::vector<TrainingPlan> serial = planAt(1);
    ASSERT_FALSE(serial.empty());
    for (int threads : {2, 8}) {
        std::vector<TrainingPlan> par = planAt(threads);
        ASSERT_EQ(par.size(), serial.size())
            << "at " << threads << " threads";
        for (size_t i = 0; i < serial.size(); ++i) {
            const TrainingPlan &a = serial[i];
            const TrainingPlan &b = par[i];
            EXPECT_EQ(a.parallel.dataParallel,
                      b.parallel.dataParallel);
            EXPECT_EQ(a.parallel.tensorParallel,
                      b.parallel.tensorParallel);
            EXPECT_EQ(a.parallel.pipelineParallel,
                      b.parallel.pipelineParallel);
            EXPECT_EQ(a.parallel.microbatchSize,
                      b.parallel.microbatchSize);
            EXPECT_EQ(a.parallel.interleavedStages,
                      b.parallel.interleavedStages);
            EXPECT_EQ(a.parallel.sequenceParallel,
                      b.parallel.sequenceParallel);
            EXPECT_EQ(a.options.recompute, b.options.recompute);
            EXPECT_EQ(a.options.memory.zeroStage,
                      b.options.memory.zeroStage);
            // Bit-identical, not approximately equal.
            EXPECT_EQ(a.report.timePerBatch, b.report.timePerBatch);
            EXPECT_EQ(a.report.mfu, b.report.mfu);
            EXPECT_EQ(a.report.memory.total(),
                      b.report.memory.total());
        }
    }
}

TEST(DeterministicParallelism, PlannerTraceCountersMatchAcrossThreads)
{
    TraceSession ser, par;
    TrainingPlannerOptions opts;
    opts.keep = 20;
    opts.threads = 1;
    opts.trace = &ser;
    planTraining(models::gpt175b(), presets::dgxA100(16), 128, opts);
    opts.threads = 8;
    opts.trace = &par;
    planTraining(models::gpt175b(), presets::dgxA100(16), 128, opts);
    for (const char *c : {"planner/mappings-enumerated",
                          "planner/pruned-illegal",
                          "planner/pruned-memory",
                          "planner/plans-evaluated"})
        EXPECT_EQ(ser.counter(c), par.counter(c)) << c;
}

DseResult
dseAt(int threads)
{
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm3_26();
    DseOptions opts;
    opts.gridSteps = 4;
    opts.refineRounds = 16;
    opts.threads = threads;
    return optimizeAllocation(
        tech,
        [](const Device &dev) {
            return estimateGemm(dev,
                                {4096, 4096, 4096, Precision::FP16})
                .time;
        },
        opts);
}

TEST(DeterministicParallelism, DseIsByteIdenticalAcrossThreads)
{
    DseResult serial = dseAt(1);
    for (int threads : {2, 8}) {
        DseResult par = dseAt(threads);
        EXPECT_EQ(par.allocation.computeAreaFraction,
                  serial.allocation.computeAreaFraction);
        EXPECT_EQ(par.allocation.computePowerFraction,
                  serial.allocation.computePowerFraction);
        EXPECT_EQ(par.objective, serial.objective);
        EXPECT_EQ(par.evaluations, serial.evaluations);
    }
}

TEST(TraceThreadSafety, ConcurrentCounterAddsSumExactly)
{
    TraceSession session;
    exec::parallelFor(1000, 8, [&](long long) {
        session.counterAdd("hits", 1);
    });
    EXPECT_EQ(session.counter("hits"), 1000.0);
}

TEST(TraceThreadSafety, AbsorbMergesWorkerSessionsAtLaneBoundary)
{
    TraceSession main;
    int lane = main.lane("work");
    main.emit(lane, "before", "compute", 1.0);
    main.counterAdd("evals", 2);

    TraceSession worker;
    int wlane = worker.lane("work");
    worker.emit(wlane, "w0", "compute", 0.5);
    worker.emit(wlane, "w1", "memory", 0.25);
    worker.counterAdd("evals", 3);

    main.absorb(std::move(worker));

    EXPECT_EQ(main.counter("evals"), 5.0);
    ASSERT_EQ(main.spans().size(), 3u);
    // Worker spans land after the lane's existing cursor: no overlap,
    // monotone start times within the lane.
    double prev_end = 0.0;
    for (const TraceSpan &s : main.spans()) {
        EXPECT_GE(s.start, prev_end);
        prev_end = s.start + s.duration;
    }
    EXPECT_NEAR(main.makespan(), 1.75, 1e-12);
}

} // namespace
} // namespace optimus
