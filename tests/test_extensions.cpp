/**
 * @file
 * Tests for the extension features beyond the paper's core model:
 * FlashAttention (IO-aware fused attention) and ZeRO-style optimizer
 * sharding.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "inference/engine.h"
#include "training/trainer.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/graph.h"
#include "workload/presets.h"

namespace optimus {
namespace {

// ---- FlashAttention ---------------------------------------------------

TEST(FlashAttention, ReplacesUnfusedChain)
{
    TransformerConfig cfg = models::gpt175b();
    LayerGraphParams p;
    p.flashAttention = true;
    bool found_fused = false;
    for (const Op &op : layerForwardOps(cfg, p)) {
        EXPECT_NE(op.name, "qk^T");
        EXPECT_NE(op.name, "attn-softmax");
        EXPECT_NE(op.name, "attn-v");
        if (op.kind == OpKind::FusedAttention)
            found_fused = true;
    }
    EXPECT_TRUE(found_fused);
}

TEST(FlashAttention, SameFlopsNoQuadraticDram)
{
    TransformerConfig cfg = models::gpt175b();
    LayerGraphParams p;
    p.batch = 1;
    p.seq = 8192;
    p.tensorParallel = 8;

    auto attention_stats = [&](bool flash) {
        p.flashAttention = flash;
        double flops = 0.0, dram = 0.0;
        Device dev = presets::a100_80gb();
        for (const Op &op : layerForwardOps(cfg, p)) {
            bool attn = op.kind == OpKind::FusedAttention ||
                        op.name == "qk^T" || op.name == "attn-v" ||
                        op.name == "attn-softmax" ||
                        op.name == "attn-dropout";
            if (!attn)
                continue;
            flops += opFlops(op);
            dram += evaluateOp(dev, op).bytesPerLevel[0];
        }
        return std::pair{flops, dram};
    };

    auto [f_flops, f_dram] = attention_stats(true);
    auto [u_flops, u_dram] = attention_stats(false);
    // Matmul FLOPs identical (softmax/dropout vector work aside).
    EXPECT_NEAR(f_flops, u_flops, u_flops * 0.02);
    // DRAM traffic collapses: the s x s matrices stay on chip.
    EXPECT_LT(f_dram, u_dram / 20.0);
}

TEST(FlashAttention, SpeedsUpLongSequences)
{
    TransformerConfig cfg = models::gpt7b();
    System sys = presets::dgxA100(4);
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 4;
    par.sequenceParallel = true;

    TrainingOptions base;
    base.seqLength = 16384;
    base.recompute = Recompute::None;
    TrainingOptions flash = base;
    flash.flashAttention = true;
    flash.memory.flashAttention = true;

    TrainingReport slow = evaluateTraining(cfg, sys, par, 32, base);
    TrainingReport fast = evaluateTraining(cfg, sys, par, 32, flash);
    EXPECT_LT(fast.timePerBatch, slow.timePerBatch);
    // Activation memory shrinks dramatically (no 5 a s^2 b term).
    EXPECT_LT(fast.memory.activations,
              slow.memory.activations * 0.6);
}

TEST(FlashAttention, ActivationScoresBecomeStatistics)
{
    TransformerConfig cfg = models::gpt175b();
    ActivationParams p;
    p.seq = 4096;
    ActivationBreakdown unfused = layerActivations(cfg, p);
    p.flashAttention = true;
    ActivationBreakdown flash = layerActivations(cfg, p);
    EXPECT_LT(flash.scores, unfused.scores / 100.0);
    EXPECT_DOUBLE_EQ(flash.mlp, unfused.mlp);
}

TEST(FlashAttention, BackwardCarriesRecomputeFactor)
{
    TransformerConfig cfg = models::gpt7b();
    LayerGraphParams p;
    p.flashAttention = true;
    double fwd = 0.0, bwd = 0.0;
    for (const Op &op : layerForwardOps(cfg, p))
        if (op.kind == OpKind::FusedAttention)
            fwd = op.fusedFlops;
    for (const Op &op : layerBackwardOps(cfg, p))
        if (op.kind == OpKind::FusedAttention)
            bwd = op.fusedFlops;
    EXPECT_DOUBLE_EQ(bwd, fwd * 2.5);
}

TEST(FlashAttention, PrefillPhaseSupportsIt)
{
    System sys = presets::dgxA100(1);
    InferenceOptions opts;
    opts.promptLength = 2048;
    opts.generateLength = 8;
    InferenceReport unfused =
        evaluateInference(models::llama2_13b(), sys, opts);
    opts.flashAttention = true;
    InferenceReport flash =
        evaluateInference(models::llama2_13b(), sys, opts);
    EXPECT_LT(flash.prefill.time, unfused.prefill.time);
}

// ---- ZeRO optimizer sharding -------------------------------------------

TEST(Zero, Stage1ShardsOptimizerStates)
{
    TransformerConfig cfg = models::gpt175b();
    ParallelConfig par;
    par.dataParallel = 8;
    par.tensorParallel = 8;
    par.pipelineParallel = 2;

    MemoryOptions plain;
    MemoryOptions z1;
    z1.zeroStage = 1;
    TrainingMemory a = trainingMemoryPerDevice(cfg, par, 64, 2048,
                                               Recompute::Selective,
                                               plain);
    TrainingMemory b = trainingMemoryPerDevice(cfg, par, 64, 2048,
                                               Recompute::Selective,
                                               z1);
    EXPECT_NEAR(b.optimizer, a.optimizer / 8.0, 1.0);
    EXPECT_DOUBLE_EQ(b.weights, a.weights);
    EXPECT_DOUBLE_EQ(b.gradients, a.gradients);
}

TEST(Zero, StagesShardProgressively)
{
    TransformerConfig cfg = models::gpt175b();
    ParallelConfig par;
    par.dataParallel = 8;
    par.tensorParallel = 8;
    par.pipelineParallel = 2;
    double prev = 1e30;
    for (int stage : {0, 1, 2, 3}) {
        MemoryOptions opts;
        opts.zeroStage = stage;
        double total = trainingMemoryPerDevice(cfg, par, 64, 2048,
                                               Recompute::Selective,
                                               opts)
                           .total();
        EXPECT_LT(total, prev);
        prev = total;
    }
    MemoryOptions bad;
    bad.zeroStage = 4;
    EXPECT_THROW(trainingMemoryPerDevice(cfg, par, 64, 2048,
                                         Recompute::Selective, bad),
                 ConfigError);
}

TEST(Zero, Stage1SpeedsUpOptimizerStep)
{
    TransformerConfig cfg = models::gpt175b();
    System sys = presets::dgxA100(16);
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;

    TrainingOptions plain;
    TrainingOptions z1;
    z1.memory.zeroStage = 1;
    double t0 = evaluateTraining(cfg, sys, par, 64, plain)
                    .time.optimizer;
    double t1 = evaluateTraining(cfg, sys, par, 64, z1)
                    .time.optimizer;
    EXPECT_NEAR(t1, t0 / 2.0, t0 * 1e-9);
}

TEST(Zero, Stage3AddsWeightGatherComm)
{
    TransformerConfig cfg = models::gpt175b();
    System sys = presets::dgxA100(16);
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;

    TrainingOptions z1;
    z1.memory.zeroStage = 1;
    TrainingOptions z3;
    z3.memory.zeroStage = 3;
    double c1 = evaluateTraining(cfg, sys, par, 64, z1).time.dpComm;
    double c3 = evaluateTraining(cfg, sys, par, 64, z3).time.dpComm;
    EXPECT_GT(c3, c1 * 1.5);
}

TEST(Zero, EnablesOtherwiseOverflowingConfig)
{
    // GPT-175B with TP8 PP2 stores ~21 GiB of optimizer states per
    // GPU; ZeRO-2 over DP8 makes an otherwise overflowing no-SP
    // config fit.
    TransformerConfig cfg = models::gpt175b();
    ParallelConfig par;
    par.dataParallel = 8;
    par.tensorParallel = 8;
    par.pipelineParallel = 4;

    MemoryOptions plain;
    MemoryOptions z2;
    z2.zeroStage = 2;
    double before = trainingMemoryPerDevice(cfg, par, 64, 2048,
                                            Recompute::Full, plain)
                        .total();
    double after = trainingMemoryPerDevice(cfg, par, 64, 2048,
                                           Recompute::Full, z2)
                       .total();
    EXPECT_GT(before, 80 * GiB);
    EXPECT_LT(after, 80 * GiB);
}

} // namespace
} // namespace optimus
