/**
 * @file
 * Unit tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/flags.h"

namespace optimus {
namespace {

TEST(Flags, ParsesCommandAndValues)
{
    Flags f = Flags::parse({"train", "--model", "gpt-175b", "--batch",
                            "64", "--sp"});
    EXPECT_EQ(f.command(), "train");
    EXPECT_EQ(f.get("model", ""), "gpt-175b");
    EXPECT_EQ(f.getInt("batch", 0), 64);
    EXPECT_TRUE(f.has("sp"));
    EXPECT_FALSE(f.has("pp"));
}

TEST(Flags, BareSwitchBeforeAnotherFlag)
{
    Flags f = Flags::parse({"train", "--sp", "--tp", "8"});
    EXPECT_TRUE(f.has("sp"));
    EXPECT_EQ(f.get("sp", "x"), "");
    EXPECT_EQ(f.getInt("tp", 0), 8);
}

TEST(Flags, TrailingSwitch)
{
    Flags f = Flags::parse({"infer", "--json"});
    EXPECT_TRUE(f.has("json"));
}

TEST(Flags, EmptyInput)
{
    Flags f = Flags::parse(std::vector<std::string>{});
    EXPECT_EQ(f.command(), "");
    EXPECT_TRUE(f.all().empty());
}

TEST(Flags, Fallbacks)
{
    Flags f = Flags::parse({"x"});
    EXPECT_EQ(f.get("missing", "dflt"), "dflt");
    EXPECT_EQ(f.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(f.getNumber("missing", 2.5), 2.5);
}

TEST(Flags, NumberParsing)
{
    Flags f = Flags::parse({"x", "--rate", "0.85", "--count", "12"});
    EXPECT_DOUBLE_EQ(f.getNumber("rate", 0.0), 0.85);
    EXPECT_EQ(f.getInt("count", 0), 12);
    EXPECT_THROW(f.getInt("rate", 0), ConfigError);
}

TEST(Flags, CollectsPositionals)
{
    // Bare tokens after the command are positional operands
    // ("lint <config.json>"), even when mixed with flags.
    Flags f = Flags::parse({"lint", "cfg.json", "--json"});
    EXPECT_EQ(f.command(), "lint");
    ASSERT_EQ(f.positionals().size(), 1u);
    EXPECT_EQ(f.positionals()[0], "cfg.json");
    EXPECT_TRUE(f.has("json"));

    // A token after a "--flag value" pair is positional, not a
    // second value.
    Flags g = Flags::parse({"cmd", "--ok", "v", "stray", "x"});
    EXPECT_EQ(g.get("ok", ""), "v");
    ASSERT_EQ(g.positionals().size(), 2u);
    EXPECT_EQ(g.positionals()[0], "stray");
    EXPECT_EQ(g.positionals()[1], "x");
}

TEST(Flags, RejectsMalformedInput)
{
    // Bare "--" is not a flag.
    EXPECT_THROW(Flags::parse({"cmd", "--"}), ConfigError);
    // Non-numeric value for an integer flag.
    Flags f = Flags::parse({"cmd", "--n", "abc"});
    EXPECT_THROW(f.getInt("n", 0), ConfigError);
}

TEST(Flags, ArgvOverload)
{
    const char *argv[] = {"prog", "serve", "--tp", "4"};
    Flags f = Flags::parse(4, argv);
    EXPECT_EQ(f.command(), "serve");
    EXPECT_EQ(f.getInt("tp", 0), 4);
}

} // namespace
} // namespace optimus
