/**
 * @file
 * Unit tests for the hardware abstraction: precisions, devices,
 * networks, systems and vendor presets.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "util/error.h"
#include "util/units.h"

namespace optimus {
namespace {

TEST(Precision, Bytes)
{
    EXPECT_DOUBLE_EQ(precisionBytes(Precision::FP32), 4.0);
    EXPECT_DOUBLE_EQ(precisionBytes(Precision::TF32), 4.0);
    EXPECT_DOUBLE_EQ(precisionBytes(Precision::FP16), 2.0);
    EXPECT_DOUBLE_EQ(precisionBytes(Precision::BF16), 2.0);
    EXPECT_DOUBLE_EQ(precisionBytes(Precision::FP8), 1.0);
    EXPECT_DOUBLE_EQ(precisionBytes(Precision::FP4), 0.5);
    EXPECT_DOUBLE_EQ(precisionBytes(Precision::INT8), 1.0);
}

TEST(Precision, ParseRoundTrip)
{
    for (Precision p : {Precision::FP32, Precision::TF32,
                        Precision::FP16, Precision::BF16,
                        Precision::FP8, Precision::FP4,
                        Precision::INT8}) {
        EXPECT_EQ(parsePrecision(precisionName(p)), p);
    }
    EXPECT_EQ(parsePrecision("HALF"), Precision::FP16);
    EXPECT_THROW(parsePrecision("fp12"), ConfigError);
}

TEST(Device, A100PresetNumbers)
{
    Device d = presets::a100_80gb();
    EXPECT_DOUBLE_EQ(d.matrixFlops(Precision::FP16), 312 * TFLOPS);
    EXPECT_DOUBLE_EQ(d.dram().bandwidth, 1.9 * TBps);
    EXPECT_DOUBLE_EQ(d.dram().capacity, 80 * GiB);
    EXPECT_EQ(d.mem.size(), 3u);
    EXPECT_EQ(d.level("L2").name, "L2");
    EXPECT_THROW(d.level("L3"), ConfigError);
}

TEST(Device, UnsupportedPrecisionThrows)
{
    Device d = presets::a100_80gb();
    EXPECT_FALSE(d.supportsMatrix(Precision::FP8));
    EXPECT_THROW(d.matrixFlops(Precision::FP8), ConfigError);
    // Vector fallback: unknown precision falls back to fp32.
    EXPECT_DOUBLE_EQ(d.vectorFlops(Precision::FP8),
                     d.vectorFlops(Precision::FP32));
}

TEST(Device, ValidateRejectsBrokenHierarchy)
{
    Device d = presets::a100_80gb();
    d.mem[1].capacity = d.mem[0].capacity * 2;  // L2 bigger than DRAM
    EXPECT_THROW(d.validate(), ConfigError);

    d = presets::a100_80gb();
    d.mem[0].bandwidth = 0.0;
    EXPECT_THROW(d.validate(), ConfigError);

    d = presets::a100_80gb();
    d.matrixMaxEfficiency = 1.5;
    EXPECT_THROW(d.validate(), ConfigError);
}

TEST(Device, DramMayOutrunCache)
{
    // Fig. 9 regime: HBMX DRAM faster than the A100 L2 must validate.
    Device d = presets::withDram(presets::a100_80gb(), "HBMX",
                                 6.8 * TBps, 192 * GiB);
    EXPECT_NO_THROW(d.validate());
    EXPECT_GT(d.dram().bandwidth, d.level("L2").bandwidth);
}

TEST(Device, GenerationOrdering)
{
    double a100 = presets::a100_80gb().matrixFlops(Precision::FP16);
    double h100 = presets::h100_sxm().matrixFlops(Precision::FP16);
    double b200 = presets::b200().matrixFlops(Precision::FP16);
    EXPECT_LT(a100, h100);
    EXPECT_LT(h100, b200);
    EXPECT_TRUE(presets::b200().supportsMatrix(Precision::FP4));
    EXPECT_FALSE(presets::h100_sxm().supportsMatrix(Precision::FP4));
}

TEST(Network, UtilizationCurveSaturates)
{
    NetworkLink l = presets::nvlink3();
    double small = l.utilization(1 * KB);
    double large = l.utilization(1 * GB);
    EXPECT_LT(small, 0.05);
    EXPECT_GT(large, 0.75);
    EXPECT_LE(large, l.maxUtilization);
    EXPECT_LT(l.effectiveBandwidth(1 * KB),
              l.effectiveBandwidth(1 * GB));
}

TEST(Network, ZeroVolumeGetsCeiling)
{
    NetworkLink l = presets::ndrInfiniBand();
    EXPECT_DOUBLE_EQ(l.utilization(0.0), l.maxUtilization);
    EXPECT_THROW(l.utilization(-1.0), ConfigError);
}

TEST(Network, ValidateRejectsBadFields)
{
    NetworkLink l = presets::nvlink4();
    l.bandwidth = -1.0;
    EXPECT_THROW(l.validate(), ConfigError);
    l = presets::nvlink4();
    l.maxUtilization = 0.0;
    EXPECT_THROW(l.validate(), ConfigError);
}

TEST(System, TotalsAndLinkSelection)
{
    System sys = presets::dgxA100(4);
    EXPECT_EQ(sys.totalDevices(), 32);
    EXPECT_EQ(sys.linkForGroup(8).name, "NVLink3");
    EXPECT_EQ(sys.linkForGroup(9).name, "HDR-IB");
    EXPECT_THROW(sys.linkForGroup(0), ConfigError);
}

TEST(System, NvsMatchesIntraNodeRate)
{
    System sys = presets::dgxB200Nvs(8);
    EXPECT_DOUBLE_EQ(sys.interLink.bandwidth,
                     sys.intraLink.bandwidth * 8);
}

TEST(System, MakeSystemValidates)
{
    EXPECT_THROW(makeSystem(presets::a100_80gb(), 0, 1,
                            presets::nvlink3(),
                            presets::hdrInfiniBand()),
                 ConfigError);
}

} // namespace
} // namespace optimus
