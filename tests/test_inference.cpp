/**
 * @file
 * Unit tests for the inference engine: phase accounting, KV-cache
 * behaviour, TP scaling, bound classification.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "inference/engine.h"
#include "memory/kv_cache.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

InferenceReport
run(const TransformerConfig &cfg, const System &sys, int tp,
    long long batch = 1, long long prompt = 200, long long gen = 200)
{
    InferenceOptions opts;
    opts.tensorParallel = tp;
    opts.batch = batch;
    opts.promptLength = prompt;
    opts.generateLength = gen;
    return evaluateInference(cfg, sys, opts);
}

TEST(Inference, TotalsAreConsistent)
{
    InferenceReport rep = run(models::llama2_13b(),
                              presets::dgxA100(1), 1);
    EXPECT_NEAR(rep.totalLatency, rep.prefill.time + rep.decode.time,
                1e-12);
    EXPECT_GT(rep.decode.time, rep.prefill.time);
    EXPECT_GT(rep.kvCacheBytes, 0.0);
    EXPECT_GT(rep.weightBytes, 20 * GiB);
    EXPECT_TRUE(rep.fitsDeviceMemory);
}

TEST(Inference, DecodeIsCompletelyMemoryBound)
{
    for (const System &sys :
         {presets::dgxA100(1), presets::dgxH100(1)}) {
        InferenceReport rep = run(models::llama2_13b(), sys, 1);
        EXPECT_DOUBLE_EQ(rep.decode.computeBoundGemmTime, 0.0)
            << sys.device.name;
        EXPECT_GT(rep.decode.memoryBoundGemmTime, 0.0);
    }
}

TEST(Inference, DecodeDominatedByWeightTraffic)
{
    // B=1 decode step time ~ weights / (DRAM bw * util) per token.
    TransformerConfig cfg = models::llama2_13b();
    System sys = presets::dgxA100(1);
    InferenceReport rep = run(cfg, sys, 1);
    double per_token = rep.decode.memoryTime / 200.0;
    double ideal = modelWeightBytes(cfg, Precision::FP16) /
                   (sys.device.dram().bandwidth *
                    sys.device.gemvDramUtilization);
    EXPECT_GT(per_token, ideal * 0.95);
    EXPECT_LT(per_token, ideal * 1.35);  // + KV reads and head
}

TEST(Inference, H100BeatsA100)
{
    double a = run(models::llama2_13b(), presets::dgxA100(1), 1)
                   .totalLatency;
    double h = run(models::llama2_13b(), presets::dgxH100(1), 1)
                   .totalLatency;
    // Gain tracks the DRAM bandwidth ratio (~1.76x), not compute.
    EXPECT_LT(h, a);
    EXPECT_NEAR(a / h, 1.6, 0.25);
}

TEST(Inference, TensorParallelismCutsMemoryTimeAddsComm)
{
    TransformerConfig cfg = models::llama2_13b();
    System sys = presets::dgxA100(1);
    InferenceReport tp1 = run(cfg, sys, 1);
    InferenceReport tp8 = run(cfg, sys, 8);
    EXPECT_LT(tp8.decode.memoryTime, tp1.decode.memoryTime / 6.0);
    EXPECT_DOUBLE_EQ(tp1.decode.commTime, 0.0);
    EXPECT_GT(tp8.decode.commTime, 0.0);
    // Poor scaling overall (paper Sec. 4.3).
    EXPECT_GT(tp8.totalLatency, tp1.totalLatency / 4.0);
}

TEST(Inference, EightGpuCommDominatesMemory)
{
    // Paper Sec. 6.2: at 8 GPUs communication ~1.6x memory time.
    InferenceReport rep = run(models::llama2_13b(),
                              presets::dgxA100(1), 8);
    double ratio = rep.decode.commTime / rep.decode.memoryTime;
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 2.5);
}

TEST(Inference, BatchingImprovesThroughputAtModestLatencyCost)
{
    TransformerConfig cfg = models::llama2_13b();
    System sys = presets::dgxA100(1);
    double t1 = run(cfg, sys, 1, 1).totalLatency;
    double t16 = run(cfg, sys, 1, 16).totalLatency;
    // Latency grows far less than 16x (paper: "the growth of latency
    // with B is rather modest").
    EXPECT_GT(t16, t1);
    EXPECT_LT(t16, t1 * 4.0);
}

TEST(Inference, LongerGenerationCostsLinearly)
{
    TransformerConfig cfg = models::llama2_7b();
    System sys = presets::dgxA100(1);
    double t200 = run(cfg, sys, 1, 1, 200, 200).decode.time;
    double t400 = run(cfg, sys, 1, 1, 200, 400).decode.time;
    EXPECT_GT(t400, t200 * 1.9);
    EXPECT_LT(t400, t200 * 2.3);  // slightly superlinear (KV growth)
}

TEST(Inference, KvCacheGrowsWithContext)
{
    TransformerConfig cfg = models::llama2_7b();
    System sys = presets::dgxA100(1);
    InferenceReport s = run(cfg, sys, 1, 1, 100, 100);
    InferenceReport l = run(cfg, sys, 1, 1, 1000, 1000);
    EXPECT_DOUBLE_EQ(l.kvCacheBytes, s.kvCacheBytes * 10.0);
}

TEST(Inference, FitFlagReflectsCapacity)
{
    // Llama2-70B fp16 does not fit a single A100-80GB.
    InferenceReport rep = run(models::llama2_70b(),
                              presets::dgxA100(1), 1);
    EXPECT_FALSE(rep.fitsDeviceMemory);
    EXPECT_TRUE(run(models::llama2_70b(), presets::dgxA100(1), 2)
                    .fitsDeviceMemory);
}

TEST(Inference, PrefillTableHasTheSixPaperRows)
{
    InferenceOptions opts;
    opts.tensorParallel = 1;
    std::vector<GemmBoundRow> rows = prefillGemmTable(
        presets::a100_80gb(), models::llama2_13b(), opts);
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].name, "qkv-proj");
    EXPECT_EQ(rows[1].name, "single-head qk^T");
    EXPECT_EQ(rows[2].name, "single-head attn-v");
    EXPECT_EQ(rows[3].name, "attn-out");
    // Per-head attention rows are memory-bound on A100 (Table 4).
    EXPECT_EQ(rows[1].boundType, "DRAM");
    EXPECT_EQ(rows[2].boundType, "DRAM");
    // Projection row is compute-bound on A100.
    EXPECT_EQ(rows[0].boundType, "compute");
}

TEST(Inference, H100PrefillAllMemoryBound)
{
    InferenceOptions opts;
    opts.tensorParallel = 1;
    for (const GemmBoundRow &row : prefillGemmTable(
             presets::h100_sxm(), models::llama2_13b(), opts)) {
        EXPECT_NE(row.boundType, "compute") << row.name;
    }
}

TEST(Inference, DecodeTableAllMemoryBound)
{
    InferenceOptions opts;
    opts.tensorParallel = 1;
    for (const GemmBoundRow &row : decodeGemmTable(
             presets::a100_80gb(), models::llama2_13b(), opts, 300)) {
        EXPECT_EQ(row.boundType, "DRAM") << row.name;
    }
}

TEST(Inference, PipelineParallelServesOversizedModels)
{
    // Llama3-405B fp16 (~755 GiB of weights) exceeds one 8x H100
    // node; TP8 x PP2 across two nodes fits and pays per-token hops.
    TransformerConfig cfg = models::llama3_405b();
    System sys = presets::dgxH100(2);

    InferenceOptions tp_only;
    tp_only.tensorParallel = 8;
    EXPECT_FALSE(
        evaluateInference(cfg, sys, tp_only).fitsDeviceMemory);

    InferenceOptions pp;
    pp.tensorParallel = 8;
    pp.pipelineParallel = 2;
    InferenceReport rep = evaluateInference(cfg, sys, pp);
    EXPECT_TRUE(rep.fitsDeviceMemory);
    EXPECT_GT(rep.decode.commTime, 0.0);

    // The pipeline hop cost is one p2p per token per boundary: small
    // next to the per-layer TP all-reduces.
    double with_pp = rep.totalLatency;
    EXPECT_GT(with_pp, 0.0);
    // Layers must divide by PP.
    InferenceOptions bad = pp;
    bad.pipelineParallel = 4;  // 126 % 4 != 0
    EXPECT_THROW(evaluateInference(cfg, sys, bad), ConfigError);
}

TEST(Inference, RejectsInvalidOptions)
{
    System sys = presets::dgxA100(1);
    InferenceOptions opts;
    opts.batch = 0;
    EXPECT_THROW(evaluateInference(models::llama2_7b(), sys, opts),
                 ConfigError);
    opts.batch = 1;
    opts.tensorParallel = 16;  // more than the system has
    EXPECT_THROW(evaluateInference(models::llama2_7b(), sys, opts),
                 ConfigError);
}

// Property sweep: latency decreases monotonically with DRAM bandwidth
// (Fig. 9's driving mechanism), saturating once L2 binds.
class DramSweepTest : public ::testing::TestWithParam<double>
{};

TEST_P(DramSweepTest, LatencyImprovesWithBandwidth)
{
    double scale = GetParam();
    Device base = presets::a100_80gb();
    Device faster = presets::withDram(
        base, "X", base.dram().bandwidth * scale, base.dram().capacity);
    System s0 = makeSystem(base, 8, 1, presets::nvlink3(),
                           presets::ndrInfiniBand());
    System s1 = makeSystem(faster, 8, 1, presets::nvlink3(),
                           presets::ndrInfiniBand());
    double t0 = run(models::llama2_13b(), s0, 1).totalLatency;
    double t1 = run(models::llama2_13b(), s1, 1).totalLatency;
    EXPECT_LT(t1, t0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DramSweepTest,
                         ::testing::Values(1.3, 1.8, 2.5, 3.6));

} // namespace
} // namespace optimus
