/**
 * @file
 * Cross-feature integration tests: combinations of parallelism,
 * recomputation, FlashAttention, ZeRO, MoE, precisions and devices
 * that exercise several modules at once, plus the roofline report.
 */

#include <gtest/gtest.h>

#include "core/optimus.h"
#include "roofline/report.h"

namespace optimus {
namespace {

TEST(Integration, EverythingOnGpt175b)
{
    // FlashAttention + ZeRO-1 + interleaved pipeline + SP + fp8,
    // all at once, on H100s.
    ParallelConfig par;
    par.dataParallel = 4;
    par.tensorParallel = 8;
    par.pipelineParallel = 4;
    par.sequenceParallel = true;
    par.schedule = PipelineSchedule::Interleaved1F1B;
    par.interleavedStages = 6;

    TrainingOptions opts;
    opts.precision = Precision::FP8;
    opts.recompute = Recompute::Selective;
    opts.flashAttention = true;
    opts.memory.flashAttention = true;
    opts.memory.activationBytes = 1.0;
    opts.memory.zeroStage = 1;
    opts.dpOverlapFraction = 0.8;

    TrainingReport rep = evaluateTraining(
        models::gpt175b(), presets::dgxH100(16), par, 256, opts);

    EXPECT_GT(rep.timePerBatch, 0.0);
    EXPECT_GT(rep.mfu, 0.25);
    EXPECT_LT(rep.mfu, 0.75);
    EXPECT_LT(rep.memory.total(), 80 * GiB);
    EXPECT_NEAR(rep.timePerBatch,
                rep.time.compute() + rep.time.communication() +
                    rep.time.other(),
                1e-9);
}

TEST(Integration, FeatureCombinationsNeverHurtBaseline)
{
    // Each optimization alone must not slow down the baseline run.
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;
    System sys = presets::dgxA100(8);

    TrainingOptions base;
    base.recompute = Recompute::None;
    double t_base = evaluateTraining(models::gpt175b(), sys, par, 64,
                                     base)
                        .timePerBatch;

    TrainingOptions flash = base;
    flash.flashAttention = true;
    EXPECT_LE(evaluateTraining(models::gpt175b(), sys, par, 64, flash)
                  .timePerBatch,
              t_base * 1.001);
}

TEST(Integration, MoeWithFullStack)
{
    // Mixtral with EP + TP + PP + flash + selective recompute.
    ParallelConfig par;
    par.dataParallel = 8;
    par.tensorParallel = 4;
    par.pipelineParallel = 2;
    par.expertParallel = 8;
    par.sequenceParallel = true;

    TrainingOptions opts;
    opts.recompute = Recompute::Selective;
    opts.flashAttention = true;
    opts.memory.flashAttention = true;

    TrainingReport rep = evaluateTraining(
        models::mixtral8x7b(), presets::dgxA100(8), par, 128, opts);
    EXPECT_GT(rep.time.epComm, 0.0);
    EXPECT_GT(rep.time.tpComm, 0.0);
    EXPECT_GT(rep.time.bubble, 0.0);
    EXPECT_LT(rep.memory.total(), 80 * GiB);
}

TEST(Integration, ConfigFileDrivesFullEvaluation)
{
    // The JSON a user would put in a config file, end to end.
    JsonValue cfg = JsonValue::parse(R"({
        "model": {"preset": "mixtral-8x7b"},
        "system": {"preset": "dgx-h100", "numNodes": 8},
        "parallel": {"dataParallel": 16, "tensorParallel": 4,
                     "expertParallel": 8,
                     "sequenceParallel": true},
        "training": {"recompute": "selective",
                     "flashAttention": true, "zeroStage": 1}
    })");
    TransformerConfig model = config::modelFromJson(cfg.at("model"));
    System sys = config::systemFromJson(cfg.at("system"));
    ParallelConfig par = config::parallelFromJson(cfg.at("parallel"));
    TrainingOptions opts =
        config::trainingOptionsFromJson(cfg.at("training"));

    TrainingReport rep = evaluateTraining(model, sys, par, 256, opts);
    EXPECT_GT(rep.timePerBatch, 0.0);
    // Serialize the report and read a value back out.
    JsonValue out = config::toJson(rep);
    EXPECT_GT(out.at("time").at("epComm").asNumber(), 0.0);
}

TEST(Integration, ScenarioOnTpuWithBf16)
{
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    Scenario sc(models::gpt175b(), presets::tpuV4Pod(2), par, 64);
    TrainingOptions opts;
    opts.precision = Precision::BF16;
    TrainingReport rep = sc.train(opts);
    EXPECT_GT(rep.timePerBatch, 0.0);
}

TEST(Integration, SpeculativePlusServingConsistency)
{
    // The serving step time at batch 1 and the speculative baseline
    // must describe the same quantity (one decode step).
    System sys = presets::dgxA100(1);
    ServingOptions sopts;
    sopts.tensorParallel = 2;
    sopts.promptLength = 300;
    sopts.generateLength = 200;
    ServingPoint pt = evaluateServingPoint(models::llama2_70b(), sys,
                                           sopts, 1);

    SpeculativeOptions opts;
    opts.tensorParallel = 2;
    opts.context = 400;  // serving evaluates at the mean context
    SpeculativeReport spec = evaluateSpeculative(
        models::llama2_70b(), models::llama2_7b(), sys, opts);
    double baseline_step = 1.0 / spec.baselineTokensPerSecond;
    EXPECT_NEAR(baseline_step, pt.decodeStepTime,
                pt.decodeStepTime * 0.05);
}

TEST(Integration, RooflineReportCoversLayer)
{
    Device dev = presets::a100_80gb();
    LayerGraphParams p;
    p.batch = 1;
    p.seq = 200;
    p.training = false;
    std::vector<Op> ops =
        layerForwardOps(models::llama2_13b(), p);
    std::vector<RooflinePoint> pts = rooflinePoints(dev, ops);
    ASSERT_EQ(pts.size(), ops.size());

    RooflineCeilings c = rooflineCeilings(dev, Precision::FP16);
    EXPECT_NEAR(c.ridgeIntensity, c.peakFlops / c.dramBandwidth,
                1e-9);
    for (const RooflinePoint &pt : pts) {
        // No point may beat the machine: achieved <= peak, and
        // memory-bound points respect the bandwidth ceiling.
        EXPECT_LE(pt.achieved, c.peakFlops * 1.001) << pt.name;
        if (pt.bound == "DRAM" && pt.intensity > 0.0) {
            EXPECT_LE(pt.achieved,
                      pt.intensity * c.dramBandwidth * 1.3)
                << pt.name;
        }
    }

    Table t = rooflineTable(dev, Precision::FP16, ops);
    EXPECT_EQ(t.rowCount(), ops.size());
    EXPECT_EQ(t.columnCount(), 6u);
}

TEST(Integration, CompositePrecisionSweep)
{
    // Throughput must be monotone in precision on B200 (more math
    // per second, fewer bytes per value).
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    System sys = presets::dgxB200(8);
    double prev = 1e30;
    for (Precision prec :
         {Precision::FP16, Precision::FP8, Precision::FP4}) {
        TrainingOptions opts;
        opts.precision = prec;
        opts.memory.activationBytes =
            std::max(1.0, precisionBytes(prec));
        double t = evaluateTraining(models::gpt175b(), sys, par, 64,
                                    opts)
                       .timePerBatch;
        EXPECT_LT(t, prev) << precisionName(prec);
        prev = t;
    }
}

} // namespace
} // namespace optimus
