/**
 * @file
 * Unit tests for the JSON value type, parser and writer.
 */

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/json.h"

namespace optimus {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructures)
{
    JsonValue j = JsonValue::parse(
        R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
    ASSERT_TRUE(j.isObject());
    EXPECT_EQ(j.size(), 3u);
    const auto &arr = j.at("a").asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_DOUBLE_EQ(arr[1].asNumber(), 2.0);
    EXPECT_TRUE(arr[2].at("b").asBool());
    EXPECT_TRUE(j.at("c").at("d").isNull());
}

TEST(Json, StringEscapes)
{
    JsonValue j = JsonValue::parse(R"("line\nquote\"tab\tA")");
    EXPECT_EQ(j.asString(), "line\nquote\"tab\tA");
    // Unicode beyond ASCII encodes as UTF-8.
    EXPECT_EQ(JsonValue::parse(R"("é")").asString(), "\xc3\xa9");
}

TEST(Json, RoundTripsThroughDump)
{
    const std::string text =
        R"({"name":"A100","bw":1.9e+12,"levels":[1,2,3],)"
        R"("ok":true,"none":null})";
    JsonValue j = JsonValue::parse(text);
    JsonValue again = JsonValue::parse(j.dump());
    EXPECT_EQ(again.at("name").asString(), "A100");
    EXPECT_DOUBLE_EQ(again.at("bw").asNumber(), 1.9e12);
    EXPECT_EQ(again.at("levels").size(), 3u);
    EXPECT_TRUE(again.at("ok").asBool());
    EXPECT_TRUE(again.at("none").isNull());
}

TEST(Json, PreservesMemberOrder)
{
    JsonValue j = JsonValue::object();
    j.set("z", JsonValue::number(1));
    j.set("a", JsonValue::number(2));
    j.set("m", JsonValue::number(3));
    EXPECT_EQ(j.dump(), R"({"z":1,"a":2,"m":3})");
    // set() on an existing key replaces in place.
    j.set("a", JsonValue::number(9));
    EXPECT_EQ(j.dump(), R"({"z":1,"a":9,"m":3})");
}

TEST(Json, PrettyPrintIndents)
{
    JsonValue j = JsonValue::object();
    j.set("k", JsonValue::array().push(JsonValue::number(1)));
    EXPECT_EQ(j.dump(2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(Json, IntegerAccessors)
{
    EXPECT_EQ(JsonValue::parse("7").asInt(), 7);
    EXPECT_THROW(JsonValue::parse("7.5").asInt(), ConfigError);
    JsonValue j = JsonValue::parse(R"({"n": 3})");
    EXPECT_EQ(j.getInt("n", 0), 3);
    EXPECT_EQ(j.getInt("missing", 11), 11);
    EXPECT_EQ(j.getString("missing", "dflt"), "dflt");
    EXPECT_TRUE(j.getBool("missing", true));
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), ConfigError);
    EXPECT_THROW(JsonValue::parse("{"), ConfigError);
    EXPECT_THROW(JsonValue::parse("[1,]"), ConfigError);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), ConfigError);
    EXPECT_THROW(JsonValue::parse("tru"), ConfigError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), ConfigError);
    EXPECT_THROW(JsonValue::parse("1 2"), ConfigError);
    EXPECT_THROW(JsonValue::parse("nan"), ConfigError);
}

TEST(Json, TypeMismatchThrows)
{
    JsonValue j = JsonValue::parse("[1]");
    EXPECT_THROW(j.asObject(), ConfigError);
    EXPECT_THROW(j.at("x"), ConfigError);
    EXPECT_THROW(j.set("x", JsonValue()), ConfigError);
    JsonValue num = JsonValue::number(1);
    EXPECT_THROW(num.asString(), ConfigError);
    EXPECT_THROW(num.push(JsonValue()), ConfigError);
    EXPECT_THROW(num.size(), ConfigError);
}

TEST(Json, EscapesOnOutput)
{
    JsonValue j = JsonValue::string("a\"b\\c\nd");
    EXPECT_EQ(j.dump(), R"("a\"b\\c\nd")");
}

} // namespace
} // namespace optimus
