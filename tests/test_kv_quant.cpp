/**
 * @file
 * Tests for KV-cache quantization: cache footprint, attention read
 * traffic and serving capacity with fp8/int8 caches under fp16
 * compute.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "inference/engine.h"
#include "inference/serving.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TEST(KvQuant, HalvesCacheFootprint)
{
    System sys = presets::dgxA100(1);
    InferenceOptions fp16;
    fp16.promptLength = 4000;
    fp16.generateLength = 96;
    InferenceOptions fp8 = fp16;
    fp8.kvPrecision = Precision::FP8;

    InferenceReport a =
        evaluateInference(models::llama2_13b(), sys, fp16);
    InferenceReport b =
        evaluateInference(models::llama2_13b(), sys, fp8);
    EXPECT_DOUBLE_EQ(b.kvCacheBytes, a.kvCacheBytes / 2.0);
    EXPECT_DOUBLE_EQ(b.weightBytes, a.weightBytes);  // weights fp16
}

TEST(KvQuant, SpeedsUpLongContextDecode)
{
    // At long context the attention reads are a real share of the
    // decode step; halving them must show up.
    System sys = presets::dgxA100(1);
    InferenceOptions fp16;
    fp16.promptLength = 16384;
    fp16.generateLength = 32;
    fp16.batch = 8;
    InferenceOptions fp8 = fp16;
    fp8.kvPrecision = Precision::FP8;

    double t16 = evaluateInference(models::llama2_7b(), sys, fp16)
                     .decode.time;
    double t8 = evaluateInference(models::llama2_7b(), sys, fp8)
                    .decode.time;
    EXPECT_LT(t8, t16 * 0.95);
}

TEST(KvQuant, ExtendsServableBatch)
{
    // 13B on one A100 at 3500+500 context: the fp8 cache admits a
    // larger max batch than fp16.
    System sys = presets::dgxA100(1);
    ServingOptions fp16;
    fp16.promptLength = 3500;
    fp16.generateLength = 500;
    ServingOptions fp8 = fp16;
    fp8.kvPrecision = Precision::FP8;

    ServingPoint a =
        maxThroughputPoint(models::llama2_13b(), sys, fp16);
    ServingPoint b =
        maxThroughputPoint(models::llama2_13b(), sys, fp8);
    EXPECT_GT(b.batch, a.batch);
    EXPECT_GT(b.tokensPerSecond, a.tokensPerSecond);
}

TEST(KvQuant, ShortContextBarelyChanges)
{
    // At 200+200 tokens the weights dominate: quantizing the cache
    // moves latency by well under 5%.
    System sys = presets::dgxA100(1);
    InferenceOptions fp16;
    InferenceOptions fp8;
    fp8.kvPrecision = Precision::FP8;
    double a = evaluateInference(models::llama2_13b(), sys, fp16)
                   .totalLatency;
    double b = evaluateInference(models::llama2_13b(), sys, fp8)
                   .totalLatency;
    EXPECT_NEAR(b, a, a * 0.05);
}

} // namespace
} // namespace optimus
