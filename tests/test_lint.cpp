/**
 * @file
 * Unit tests for the lint subsystem: one firing (positive) and one
 * clean (negative) case per rule ID, plus report plumbing and the
 * formatter edge cases.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "hw/presets.h"
#include "lint/lint.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

using lint::LintReport;

/** 8x A100, one node. */
System
oneNode()
{
    return presets::dgxA100(1);
}

/** A legal mapping of GPT-7B onto one DGX node. */
ParallelConfig
cleanMapping()
{
    ParallelConfig par;
    par.dataParallel = 1;
    par.tensorParallel = 8;
    par.pipelineParallel = 1;
    return par;
}

// ---- Report plumbing ---------------------------------------------------

TEST(LintReport, CountsAndSummary)
{
    LintReport r;
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.hasErrors());
    r.error("OPT-X-001", "first", "fix it");
    r.error("OPT-X-002", "second");
    r.warning("OPT-X-003", "soft");
    EXPECT_EQ(r.errorCount(), 2u);
    EXPECT_EQ(r.warningCount(), 1u);
    EXPECT_TRUE(r.hasErrors());
    EXPECT_TRUE(r.has("OPT-X-002"));
    EXPECT_FALSE(r.has("OPT-X-009"));
    EXPECT_EQ(r.summary(), "2 errors, 1 warning");
}

TEST(LintReport, JoinedMessagesPrefersErrors)
{
    LintReport r;
    r.warning("OPT-W-001", "only a warning");
    EXPECT_NE(r.joinedMessages().find("only a warning"),
              std::string::npos);
    r.error("OPT-E-001", "hard failure");
    // Once an error exists, warnings drop out of the what() string.
    EXPECT_EQ(r.joinedMessages().find("only a warning"),
              std::string::npos);
    EXPECT_NE(r.joinedMessages().find("[OPT-E-001] hard failure"),
              std::string::npos);
}

TEST(LintReport, MergeAppends)
{
    LintReport a, b;
    a.error("OPT-A-001", "a");
    b.warning("OPT-B-001", "b");
    a.merge(b);
    EXPECT_EQ(a.diagnostics().size(), 2u);
    EXPECT_TRUE(a.has("OPT-B-001"));
}

TEST(LintReport, EnforceThrowsLintErrorCarryingReport)
{
    LintReport clean;
    clean.warning("OPT-W-001", "warnings do not throw");
    EXPECT_NO_THROW(lint::enforce(clean));

    LintReport bad;
    bad.error("OPT-E-001", "one");
    bad.error("OPT-E-002", "two");
    try {
        lint::enforce(bad);
        FAIL() << "expected LintError";
    } catch (const LintError &e) {
        EXPECT_EQ(e.report().errorCount(), 2u);
        EXPECT_NE(std::string(e.what()).find("OPT-E-002"),
                  std::string::npos);
    }
}

TEST(LintCatalog, EveryRuleIdIsCataloguedOnce)
{
    std::set<std::string> ids;
    for (const lint::RuleInfo &info : lint::ruleCatalog()) {
        EXPECT_TRUE(ids.insert(info.id).second)
            << "duplicate rule id " << info.id;
        EXPECT_NE(std::string(info.summary), "");
    }
    for (const char *id :
         {lint::kRuleTpHeads, lint::kRuleTrainMemory,
          lint::kRuleFewMicrobatches, lint::kRuleSuspiciousUnits,
          lint::kRulePrecisionSupport, lint::kRuleTpFfn,
          lint::kRuleDeviceCount, lint::kRuleTpSpansNodes,
          lint::kRuleLayersPerStage, lint::kRuleInterleaveSchedule,
          lint::kRuleExpertParallel, lint::kRuleBatchVsDp,
          lint::kRuleMicrobatchDivides, lint::kRuleTpKvHeads,
          lint::kRuleInferMemory, lint::kRuleSequenceLength,
          lint::kRuleKvPrecision, lint::kRuleModelStructure,
          lint::kRuleSystemStructure, lint::kRuleMappingPositive,
          lint::kRuleSeqVsContextParallel})
        EXPECT_TRUE(ids.count(id)) << id << " missing from catalog";
    EXPECT_EQ(ids.size(), 21u);
}

// ---- Mapping rules (positive / negative per ID) ------------------------

TEST(LintMapping, CleanMappingHasNoDiagnostics)
{
    LintReport r = lint::lintMapping(models::gpt7b(), oneNode(),
                                     cleanMapping(), 64);
    EXPECT_TRUE(r.empty());
    EXPECT_TRUE(lint::isLegalMapping(models::gpt7b(), oneNode(),
                                     cleanMapping(), 64));
}

TEST(LintMapping, Par001TpMustDivideHeads)
{
    ParallelConfig par = cleanMapping();
    par.tensorParallel = 7;  // 32 heads, 8-wide node
    LintReport r = lint::lintMapping(models::gpt7b(), oneNode(), par,
                                     64);
    EXPECT_TRUE(r.has(lint::kRuleTpHeads));
    EXPECT_FALSE(lint::isLegalMapping(models::gpt7b(), oneNode(), par,
                                      64));
    // Aggregation: the device-count mismatch (7 != 8) is reported in
    // the same pass, not hidden behind the first failure.
    EXPECT_TRUE(r.has(lint::kRuleDeviceCount));
}

TEST(LintMapping, Par006TpMustDivideFfn)
{
    TransformerConfig model = models::gpt7b();
    model.ffnHidden = 16385;  // odd: heads still divide, FFN not
    ParallelConfig par = cleanMapping();
    LintReport r = lint::lintMapping(model, oneNode(), par, 64);
    EXPECT_TRUE(r.has(lint::kRuleTpFfn));
    EXPECT_FALSE(r.has(lint::kRuleTpHeads));
}

TEST(LintMapping, Par007DeviceCountMustMatchSystem)
{
    LintReport r = lint::lintMapping(models::gpt7b(),
                                     presets::dgxA100(2),
                                     cleanMapping(), 64);
    EXPECT_TRUE(r.has(lint::kRuleDeviceCount));

    ParallelConfig par = cleanMapping();
    par.dataParallel = 2;
    EXPECT_TRUE(lint::isLegalMapping(models::gpt7b(),
                                     presets::dgxA100(2), par, 64));
}

TEST(LintMapping, Par008TpMustStayWithinNode)
{
    ParallelConfig par;
    par.tensorParallel = 16;  // spans two 8-GPU nodes
    LintReport r = lint::lintMapping(models::gpt175b(),
                                     presets::dgxA100(2), par, 64);
    EXPECT_TRUE(r.has(lint::kRuleTpSpansNodes));
    EXPECT_FALSE(r.has(lint::kRuleTpHeads));  // 96 % 16 == 0
}

TEST(LintMapping, Sched009LayersMustDivideByStages)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 5;  // 96 layers % 5 != 0
    LintReport r = lint::lintMapping(models::gpt175b(),
                                     presets::dgxA100(5), par, 64);
    EXPECT_TRUE(r.has(lint::kRuleLayersPerStage));

    par.pipelineParallel = 4;
    EXPECT_TRUE(lint::isLegalMapping(models::gpt175b(),
                                     presets::dgxA100(4), par, 64));
}

TEST(LintMapping, Sched010InterleaveNeedsInterleavedSchedule)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 2;
    par.interleavedStages = 2;  // schedule left at GPipe
    LintReport r = lint::lintMapping(models::gpt175b(),
                                     presets::dgxA100(2), par, 64);
    EXPECT_TRUE(r.has(lint::kRuleInterleaveSchedule));

    par.schedule = PipelineSchedule::Interleaved1F1B;
    EXPECT_TRUE(lint::isLegalMapping(models::gpt175b(),
                                     presets::dgxA100(2), par, 64));
}

TEST(LintMapping, Par011ExpertParallelNeedsMoe)
{
    ParallelConfig par = cleanMapping();
    par.dataParallel = 1;
    par.tensorParallel = 4;
    par.expertParallel = 2;  // GPT-7B is dense; DP=1 not divisible
    System sys = oneNode();
    sys.devicesPerNode = 4;
    sys.numNodes = 1;
    LintReport r = lint::lintMapping(models::gpt7b(), sys, par, 64);
    EXPECT_TRUE(r.has(lint::kRuleExpertParallel));
    // Dense model AND DP % EP are two distinct violations.
    EXPECT_EQ(r.errorCount(), 2u);

    ParallelConfig moe;
    moe.dataParallel = 2;
    moe.tensorParallel = 4;
    moe.expertParallel = 2;
    EXPECT_TRUE(lint::isLegalMapping(models::mixtral8x7b(), oneNode(),
                                     moe, 64));
}

TEST(LintMapping, Par012BatchMustDivideByDp)
{
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 4;
    LintReport r = lint::lintMapping(models::gpt7b(), oneNode(), par,
                                     63);
    EXPECT_TRUE(r.has(lint::kRuleBatchVsDp));
    EXPECT_FALSE(lint::lintMapping(models::gpt7b(), oneNode(), par, 64)
                     .has(lint::kRuleBatchVsDp));
}

TEST(LintMapping, Par013PerPipelineBatchMustDivideByMicrobatch)
{
    ParallelConfig par = cleanMapping();
    par.microbatchSize = 6;  // 64 % 6 != 0
    LintReport r = lint::lintMapping(models::gpt7b(), oneNode(), par,
                                     64);
    EXPECT_TRUE(r.has(lint::kRuleMicrobatchDivides));
    par.microbatchSize = 4;
    EXPECT_TRUE(lint::isLegalMapping(models::gpt7b(), oneNode(), par,
                                     64));
}

TEST(LintMapping, Par014TpNotDividingKvHeadsWarns)
{
    // Llama2-70B has 8 KV heads; TP=16 replicates them. The rule is
    // a warning: the mapping still runs, just wastefully.
    ParallelConfig par;
    par.tensorParallel = 16;
    LintReport r = lint::lintMapping(models::llama2_70b(),
                                     presets::dgxA100(2), par, 64);
    EXPECT_TRUE(r.has(lint::kRuleTpKvHeads));

    par.tensorParallel = 8;
    par.dataParallel = 2;
    LintReport ok = lint::lintMapping(models::llama2_70b(),
                                      presets::dgxA100(2), par, 64);
    EXPECT_FALSE(ok.has(lint::kRuleTpKvHeads));
}

TEST(LintMapping, Sched003FewMicrobatchesWarns)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 2;
    LintReport r = lint::lintMapping(models::gpt175b(),
                                     presets::dgxA100(2), par, 1);
    EXPECT_TRUE(r.has(lint::kRuleFewMicrobatches));
    EXPECT_FALSE(r.hasErrors());  // warning: legal but bubble-bound
    // isLegal ignores warnings.
    EXPECT_TRUE(lint::isLegalMapping(models::gpt175b(),
                                     presets::dgxA100(2), par, 1));

    LintReport ok = lint::lintMapping(models::gpt175b(),
                                      presets::dgxA100(2), par, 8);
    EXPECT_FALSE(ok.has(lint::kRuleFewMicrobatches));
}

TEST(LintMapping, Cfg020NonPositiveDegreesGateEverythingElse)
{
    ParallelConfig par = cleanMapping();
    par.dataParallel = 0;
    par.microbatchSize = -2;
    LintReport r = lint::lintMapping(models::gpt7b(), oneNode(), par,
                                     64);
    EXPECT_TRUE(r.has(lint::kRuleMappingPositive));
    EXPECT_EQ(r.errorCount(), 2u);  // both bad fields, nothing else
    EXPECT_FALSE(r.has(lint::kRuleDeviceCount));
}

// ---- Training-level rules ----------------------------------------------

TEST(LintTraining, CleanTrainingConfigIsQuiet)
{
    LintReport r = lint::lintTraining(models::gpt7b(), oneNode(),
                                      cleanMapping(), 64);
    EXPECT_TRUE(r.empty());
}

TEST(LintTraining, Mem002FootprintOverflowsDevice)
{
    // GPT-175B on a single DGX node: ~2.8 TB of states on 8x 80 GiB.
    LintReport r = lint::lintTraining(models::gpt175b(), oneNode(),
                                      cleanMapping(), 64);
    EXPECT_TRUE(r.has(lint::kRuleTrainMemory));
    EXPECT_TRUE(r.hasErrors());

    LintReport ok = lint::lintTraining(models::gpt7b(), oneNode(),
                                       cleanMapping(), 64);
    EXPECT_FALSE(ok.has(lint::kRuleTrainMemory));
}

TEST(LintTraining, Prec005UnsupportedPrecision)
{
    TrainingOptions opts;
    opts.precision = Precision::FP8;  // A100 has no FP8 tensor cores
    LintReport r = lint::lintTraining(models::gpt7b(), oneNode(),
                                      cleanMapping(), 64, opts);
    EXPECT_TRUE(r.has(lint::kRulePrecisionSupport));

    opts.precision = Precision::FP16;
    LintReport ok = lint::lintTraining(models::gpt7b(), oneNode(),
                                       cleanMapping(), 64, opts);
    EXPECT_FALSE(ok.has(lint::kRulePrecisionSupport));
}

TEST(LintTraining, Seq016SequenceBeyondModelMaximumWarns)
{
    TrainingOptions opts;
    opts.seqLength = 4096;  // GPT-7B trained to 2048
    LintReport r = lint::lintTraining(models::gpt7b(), oneNode(),
                                      cleanMapping(), 64, opts);
    EXPECT_TRUE(r.has(lint::kRuleSequenceLength));

    opts.seqLength = 2048;
    LintReport ok = lint::lintTraining(models::gpt7b(), oneNode(),
                                       cleanMapping(), 64, opts);
    EXPECT_FALSE(ok.has(lint::kRuleSequenceLength));
}

TEST(LintTraining, Par021SequenceMustDivideByContextParallel)
{
    ParallelConfig par;
    par.contextParallel = 2;
    par.tensorParallel = 4;
    TrainingOptions opts;
    opts.seqLength = 2047;
    LintReport r = lint::lintTraining(models::gpt7b(), oneNode(), par,
                                      64, opts);
    EXPECT_TRUE(r.has(lint::kRuleSeqVsContextParallel));

    opts.seqLength = 2048;
    LintReport ok = lint::lintTraining(models::gpt7b(), oneNode(), par,
                                       64, opts);
    EXPECT_FALSE(ok.has(lint::kRuleSeqVsContextParallel));
}

// ---- Inference rules ---------------------------------------------------

TEST(LintInference, CleanInferenceConfigIsQuiet)
{
    InferenceOptions opts;
    LintReport r = lint::lintInference(models::llama2_7b(), oneNode(),
                                       opts);
    EXPECT_TRUE(r.empty());
}

TEST(LintInference, Mem015WeightsPlusKvOverflow)
{
    InferenceOptions opts;  // TP=1: 350 GB of weights on one A100
    LintReport r = lint::lintInference(models::gpt175b(), oneNode(),
                                       opts);
    EXPECT_TRUE(r.has(lint::kRuleInferMemory));

    LintReport ok = lint::lintInference(models::llama2_7b(), oneNode(),
                                        opts);
    EXPECT_FALSE(ok.has(lint::kRuleInferMemory));
}

TEST(LintInference, Prec017UnsupportedKvPrecisionWarns)
{
    InferenceOptions opts;
    opts.kvPrecision = Precision::FP8;  // A100: dequantize on read
    LintReport r = lint::lintInference(models::llama2_7b(), oneNode(),
                                       opts);
    EXPECT_TRUE(r.has(lint::kRuleKvPrecision));
    EXPECT_FALSE(r.hasErrors());

    opts.kvPrecision = Precision::FP16;
    LintReport ok = lint::lintInference(models::llama2_7b(), oneNode(),
                                        opts);
    EXPECT_FALSE(ok.has(lint::kRuleKvPrecision));
}

TEST(LintInference, Seq016ContextBeyondModelMaximumWarns)
{
    InferenceOptions opts;
    opts.promptLength = 4000;
    opts.generateLength = 200;  // 4200 > Llama2's 4096
    LintReport r = lint::lintInference(models::llama2_7b(), oneNode(),
                                       opts);
    EXPECT_TRUE(r.has(lint::kRuleSequenceLength));
}

TEST(LintInference, MappingRulesApplyToInferenceToo)
{
    InferenceOptions opts;
    opts.tensorParallel = 7;   // 32 heads
    opts.pipelineParallel = 3; // 32 layers
    LintReport r = lint::lintInferenceMapping(models::gpt7b(),
                                              oneNode(), opts);
    EXPECT_TRUE(r.has(lint::kRuleTpHeads));
    EXPECT_TRUE(r.has(lint::kRuleLayersPerStage));
    EXPECT_TRUE(r.has(lint::kRuleDeviceCount));  // 21 > 8 devices
}

// ---- Model / system structural rules -----------------------------------

TEST(LintModel, Cfg018AggregatesEveryViolation)
{
    TransformerConfig model = models::gpt7b();
    model.numLayers = 0;
    model.hiddenSize = 100;  // not divisible by 32 heads
    LintReport r = lint::lintModel(model);
    EXPECT_TRUE(r.has(lint::kRuleModelStructure));
    EXPECT_GE(r.errorCount(), 2u);

    EXPECT_TRUE(lint::lintModel(models::gpt7b()).empty());
}

TEST(LintSystem, Cfg019StructuralErrors)
{
    System sys = oneNode();
    sys.numNodes = 0;
    LintReport r = lint::lintSystem(sys);
    EXPECT_TRUE(r.has(lint::kRuleSystemStructure));

    EXPECT_TRUE(lint::lintSystem(oneNode()).empty());
}

TEST(LintSystem, Unit004SuspiciousLinkMagnitudeWarns)
{
    // The classic mistake: "bandwidth": 400 meaning 400 Gb/s, stored
    // as 400 bytes/s.
    System sys = oneNode();
    sys.interLink.bandwidth = 400.0;
    LintReport r = lint::lintSystem(sys);
    EXPECT_TRUE(r.has(lint::kRuleSuspiciousUnits));
    EXPECT_FALSE(r.hasErrors());

    // Written with the bit-rate helper it is plausible and quiet.
    sys.interLink.bandwidth = 400 * Gbps;
    EXPECT_TRUE(lint::lintSystem(sys).empty());
}

TEST(LintSystem, Unit004SuspiciousDramCapacityWarns)
{
    // 500 MiB is structurally valid (still larger than the caches)
    // but far below any HBM part — a missing GiB multiplier.
    System sys = oneNode();
    sys.device.mem[0].capacity = 500 * MiB;
    LintReport r = lint::lintSystem(sys);
    EXPECT_TRUE(r.has(lint::kRuleSuspiciousUnits));
    EXPECT_FALSE(r.hasErrors());

    // Too large is as suspicious as too small.
    System big = oneNode();
    big.device.mem[0].capacity = 500 * TB;
    EXPECT_TRUE(lint::lintSystem(big).has(lint::kRuleSuspiciousUnits));
}

// ---- Integration: legacy validate() carries the full report ------------

TEST(LintIntegration, ScenarioThrowsLintErrorWithAllDiagnostics)
{
    ParallelConfig par;
    par.tensorParallel = 7;
    par.pipelineParallel = 8;
    try {
        Scenario sc(models::gpt175b(), presets::dgxA100(8), par, 64);
        FAIL() << "expected LintError";
    } catch (const LintError &e) {
        EXPECT_TRUE(e.report().has(lint::kRuleTpHeads));
        EXPECT_TRUE(e.report().has(lint::kRuleDeviceCount));
        EXPECT_GE(e.report().errorCount(), 2u);
    }
}

TEST(LintIntegration, DiagnosticsTableHasOneRowPerDiagnostic)
{
    ParallelConfig par = cleanMapping();
    par.tensorParallel = 7;
    LintReport r = lint::lintMapping(models::gpt7b(), oneNode(), par,
                                     64);
    Table t = lint::diagnosticsTable(r);
    EXPECT_EQ(t.rowCount(), r.diagnostics().size());
    EXPECT_EQ(t.columnCount(), 4u);
    EXPECT_EQ(t.at(0, 0), "error");
}

TEST(LintIntegration, IsLegalDeviceFiltersBrokenDevices)
{
    EXPECT_TRUE(lint::isLegalDevice(presets::a100_80gb()));
    Device broken = presets::a100_80gb();
    broken.mem.clear();
    EXPECT_FALSE(lint::isLegalDevice(broken));
}

// ---- Formatter edge cases ----------------------------------------------

TEST(Formatters, ZeroValues)
{
    EXPECT_EQ(formatBytes(0.0), "0.00 B");
    EXPECT_EQ(formatTime(0.0), "0.000 ns");
    EXPECT_EQ(formatFlops(0.0), "0.00 FLOPS");
    EXPECT_EQ(formatBandwidth(0.0), "0.00 B/s");
}

TEST(Formatters, NegativeValuesKeepTheirSign)
{
    EXPECT_EQ(formatBytes(-1.5 * GiB), "-1.50 GiB");
    EXPECT_EQ(formatTime(-2.5e-3), "-2.500 ms");
    EXPECT_EQ(formatFlops(-3.0 * TFLOPS), "-3.00 TFLOPS");
}

TEST(Formatters, VeryLargeValuesSaturateAtTheTopSuffix)
{
    EXPECT_EQ(formatBytes(2048.0 * TB), "1862.65 TiB");
    EXPECT_EQ(formatFlops(2.5e18), "2500.00 PFLOPS");
    EXPECT_EQ(formatBandwidth(5e15), "5000.00 TB/s");
    EXPECT_EQ(formatTime(90.0), "90.000 s");
}

} // namespace
} // namespace optimus
