/**
 * @file
 * Unit tests for the memory-footprint module: training breakdowns,
 * KV-cache sizing (paper Sec. 3.5), fit checks.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "memory/footprint.h"
#include "memory/kv_cache.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TEST(KvCache, MatchesPaperFormula)
{
    // 2 * batch * context * precision * layers * embedding dim.
    TransformerConfig cfg = models::gpt22b();  // MHA: kv width = h
    double expected = 2.0 * 4.0 * 1024.0 * 2.0 * 48.0 * 6144.0;
    EXPECT_DOUBLE_EQ(kvCacheBytes(cfg, 4, 1024, Precision::FP16),
                     expected);
}

TEST(KvCache, GqaShrinksTheCache)
{
    TransformerConfig gqa = models::llama2_70b();
    TransformerConfig mha = gqa;
    mha.numKvHeads = mha.numHeads;
    EXPECT_DOUBLE_EQ(kvCacheBytes(gqa, 1, 1000, Precision::FP16) * 8.0,
                     kvCacheBytes(mha, 1, 1000, Precision::FP16));
}

TEST(KvCache, ScalesWithPrecision)
{
    TransformerConfig cfg = models::llama2_13b();
    EXPECT_DOUBLE_EQ(kvCacheBytes(cfg, 1, 400, Precision::FP16),
                     2.0 * kvCacheBytes(cfg, 1, 400, Precision::FP8));
}

TEST(KvCache, Llama13BInsetNumbers)
{
    // Fig. 8 inset: Llama2-13B, context 400: ~0.3 GiB at B=1,
    // ~5 GiB at B=16; weights ~24 GiB at fp16.
    TransformerConfig cfg = models::llama2_13b();
    EXPECT_NEAR(kvCacheBytes(cfg, 1, 400, Precision::FP16) / GiB, 0.31,
                0.02);
    EXPECT_NEAR(kvCacheBytes(cfg, 16, 400, Precision::FP16) / GiB, 4.9,
                0.2);
    EXPECT_NEAR(modelWeightBytes(cfg, Precision::FP16) / GiB, 24.0,
                1.0);
}

TEST(KvCache, InferenceFits)
{
    TransformerConfig cfg = models::llama2_70b();
    // 70B fp16 = ~129 GiB of weights: does not fit one 80 GiB A100.
    EXPECT_FALSE(
        inferenceFits(cfg, 1, 400, Precision::FP16, 1, 80 * GiB));
    // Fits across two devices.
    EXPECT_TRUE(
        inferenceFits(cfg, 1, 400, Precision::FP16, 2, 80 * GiB));
    EXPECT_THROW(inferenceFits(cfg, 1, 400, Precision::FP16, 0,
                               80 * GiB),
                 ConfigError);
}

TEST(Footprint, ParameterShardingByTpAndPp)
{
    TransformerConfig cfg = models::gpt175b();
    ParallelConfig base;
    base.tensorParallel = 8;
    base.pipelineParallel = 8;
    double p8 = parametersPerDevice(cfg, base);

    ParallelConfig wider = base;
    wider.pipelineParallel = 16;
    double p16 = parametersPerDevice(cfg, wider);
    // Doubling PP roughly halves the per-device layer parameters
    // (embedding is unaffected).
    EXPECT_LT(p16, p8);
    EXPECT_GT(p16, p8 / 2.0 * 0.95);
}

TEST(Footprint, MixedPrecisionAdamBytes)
{
    // weights 2B + grads 2B + optimizer 12B = 16 bytes per parameter.
    TransformerConfig cfg = models::gpt175b();
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    TrainingMemory mem = trainingMemoryPerDevice(
        cfg, par, 64, 2048, Recompute::Full);
    double params = parametersPerDevice(cfg, par);
    EXPECT_DOUBLE_EQ(mem.weights, params * 2.0);
    EXPECT_DOUBLE_EQ(mem.gradients, params * 2.0);
    EXPECT_DOUBLE_EQ(mem.optimizer, params * 12.0);
    EXPECT_GT(mem.activations, 0.0);
    EXPECT_DOUBLE_EQ(mem.total(), mem.weights + mem.gradients +
                                      mem.optimizer + mem.activations);
}

TEST(Footprint, RecomputationOrdering)
{
    TransformerConfig cfg = models::gpt175b();
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;
    double none = trainingMemoryPerDevice(cfg, par, 64, 2048,
                                          Recompute::None)
                      .activations;
    double sel = trainingMemoryPerDevice(cfg, par, 64, 2048,
                                         Recompute::Selective)
                     .activations;
    double full = trainingMemoryPerDevice(cfg, par, 64, 2048,
                                          Recompute::Full)
                      .activations;
    EXPECT_GT(none, sel);
    EXPECT_GT(sel, full);
}

TEST(Footprint, FullRecomputeStoresOnlyCheckpointsPerMicrobatch)
{
    // With full recomputation the in-flight microbatches keep only
    // layer-input checkpoints; one working set exists at a time, so
    // doubling the batch (more in-flight microbatches capped at p)
    // must not double the footprint.
    TransformerConfig cfg = models::gpt1008b();
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 64;
    double act = trainingMemoryPerDevice(cfg, par, 512, 2048,
                                         Recompute::Full)
                     .activations;
    // 64 in-flight checkpoints of 2 layers each plus one working
    // set: far below the no-recompute footprint (the checkpoint term
    // itself is sizable at PP=64).
    double none = trainingMemoryPerDevice(cfg, par, 512, 2048,
                                          Recompute::None)
                      .activations;
    EXPECT_LT(act, none / 5.0);
}

TEST(Footprint, GPipeHoldsMoreActivations)
{
    TransformerConfig cfg = models::gpt175b();
    ParallelConfig f1b;
    f1b.tensorParallel = 8;
    f1b.pipelineParallel = 8;
    f1b.schedule = PipelineSchedule::OneFOneB;
    ParallelConfig gpipe = f1b;
    gpipe.schedule = PipelineSchedule::GPipe;
    double a = trainingMemoryPerDevice(cfg, f1b, 64, 2048,
                                       Recompute::Selective)
                   .activations;
    double b = trainingMemoryPerDevice(cfg, gpipe, 64, 2048,
                                       Recompute::Selective)
                   .activations;
    EXPECT_GT(b, a);  // 64 microbatches in flight vs 8
}

TEST(Footprint, SequenceParallelOnlyShrinksActivations)
{
    TransformerConfig cfg = models::gpt175b();
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    TrainingMemory no_sp = trainingMemoryPerDevice(
        cfg, par, 64, 2048, Recompute::Selective);
    par.sequenceParallel = true;
    TrainingMemory sp = trainingMemoryPerDevice(
        cfg, par, 64, 2048, Recompute::Selective);
    EXPECT_LT(sp.activations, no_sp.activations);
    EXPECT_DOUBLE_EQ(sp.weights, no_sp.weights);
    EXPECT_DOUBLE_EQ(sp.optimizer, no_sp.optimizer);
}

TEST(Footprint, Table1ConfigsFitA100)
{
    // The paper's Table 1 runs existed, so their footprints must fit
    // an 80 GiB A100 in our accounting too.
    struct Case
    {
        TransformerConfig cfg;
        long long batch, dp, tp, pp;
        bool sp;
        Recompute r;
    };
    const Case cases[] = {
        {models::gpt175b(), 64, 1, 8, 8, false, Recompute::Full},
        {models::gpt530b(), 280, 1, 8, 35, true,
         Recompute::Selective},
        {models::gpt1008b(), 512, 1, 8, 64, false, Recompute::Full},
    };
    for (const Case &c : cases) {
        ParallelConfig par;
        par.dataParallel = c.dp;
        par.tensorParallel = c.tp;
        par.pipelineParallel = c.pp;
        par.sequenceParallel = c.sp;
        TrainingMemory mem = trainingMemoryPerDevice(
            c.cfg, par, c.batch, 2048, c.r);
        EXPECT_LT(mem.total(), 80 * GiB) << c.cfg.name;
    }
}

} // namespace
} // namespace optimus
