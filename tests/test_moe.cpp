/**
 * @file
 * Tests for the mixture-of-experts extension: model accounting, layer
 * graphs, expert parallelism, all-to-all communication, memory.
 */

#include <gtest/gtest.h>

#include "comm/collective.h"
#include "hw/presets.h"
#include "inference/engine.h"
#include "memory/footprint.h"
#include "training/trainer.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/graph.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TEST(Moe, MixtralParameterCount)
{
    TransformerConfig m = models::mixtral8x7b();
    EXPECT_TRUE(m.isMoe());
    // Mixtral 8x7B has ~46.7B total parameters.
    EXPECT_NEAR(m.parameterCount(), 46.7e9, 2e9);
    // Active parameters per token (top-2 of 8 experts) ~12.9B.
    double active = double(m.numLayers) *
                        (m.attentionParameterCount() +
                         double(m.topK) * m.expertParameterCount()) +
                    m.embeddingParameterCount();
    EXPECT_NEAR(active, 12.9e9, 1e9);
}

TEST(Moe, ValidationRules)
{
    TransformerConfig m = models::mixtral8x7b();
    m.topK = 9;  // more than experts
    EXPECT_THROW(m.validate(), ConfigError);
    m = models::mixtral8x7b();
    m.numExperts = 1;
    m.topK = 2;  // dense model must route top-1
    EXPECT_THROW(m.validate(), ConfigError);
}

TEST(Moe, GraphHasRouterAndExperts)
{
    TransformerConfig m = models::mixtral8x7b();
    LayerGraphParams p;
    p.batch = 1;
    p.seq = 1024;
    bool router = false, experts = false, dense = false;
    for (const Op &op : layerForwardOps(m, p)) {
        if (op.name == "moe-router")
            router = true;
        if (op.name == "moe-gate-up")
            experts = true;
        if (op.name == "mlp-gate-up")
            dense = true;
    }
    EXPECT_TRUE(router);
    EXPECT_TRUE(experts);
    EXPECT_FALSE(dense);
}

TEST(Moe, FfnFlopsScaleWithTopK)
{
    TransformerConfig moe = models::mixtral8x7b();
    TransformerConfig dense = moe;
    dense.numExperts = 1;
    dense.topK = 1;

    LayerGraphParams p;
    p.batch = 1;
    p.seq = 2048;

    auto ffn_flops = [&](const TransformerConfig &cfg) {
        double total = 0.0;
        for (const Op &op : layerForwardOps(cfg, p)) {
            if (op.kind == OpKind::Gemm &&
                (op.name.rfind("moe-gate", 0) == 0 ||
                 op.name.rfind("moe-fc", 0) == 0 ||
                 op.name.rfind("mlp-", 0) == 0))
                total += opFlops(op);
        }
        return total;
    };
    // Top-2 routing does twice the dense FFN work per token.
    EXPECT_NEAR(ffn_flops(moe), 2.0 * ffn_flops(dense),
                ffn_flops(dense) * 0.01);
}

TEST(Moe, DecodeTouchesOnlyActiveExperts)
{
    // Batch 1, top-2: exactly two experts' weights stream from DRAM.
    TransformerConfig m = models::mixtral8x7b();
    Device dev = presets::a100_80gb();
    double ffn_dram = 0.0;
    for (const Op &op : decodeLayerOps(m, 1, 256, 1,
                                       Precision::FP16)) {
        if (op.kind == OpKind::Gemm &&
            op.name.rfind("moe-", 0) == 0 &&
            op.name != "moe-router")
            ffn_dram += evaluateOp(dev, op).bytesPerLevel[0];
    }
    double two_experts =
        2.0 * m.expertParameterCount() * 2.0;  // fp16 bytes
    EXPECT_NEAR(ffn_dram, two_experts, two_experts * 0.05);
}

TEST(Moe, ExpertParallelismShardsWeights)
{
    TransformerConfig m = models::mixtral8x7b();
    ParallelConfig ep1;
    ep1.dataParallel = 8;
    ParallelConfig ep8 = ep1;
    ep8.expertParallel = 8;
    double full = parametersPerDevice(m, ep1);
    double sharded = parametersPerDevice(m, ep8);
    EXPECT_LT(sharded, full / 3.0);
    EXPECT_GT(sharded, full / 8.0);  // attention is replicated
}

TEST(Moe, ExpertParallelValidation)
{
    TransformerConfig m = models::mixtral8x7b();
    System sys = presets::dgxA100(1);
    ParallelConfig par;
    par.dataParallel = 8;
    par.expertParallel = 3;  // does not divide 8 experts
    EXPECT_THROW(par.validate(m, sys, 8), ConfigError);
    par.expertParallel = 4;
    EXPECT_NO_THROW(par.validate(m, sys, 8));
    // EP on a dense model is rejected.
    par.expertParallel = 4;
    EXPECT_THROW(par.validate(models::llama2_13b(), sys, 8),
                 ConfigError);
}

TEST(Moe, AllToAllCostModel)
{
    NetworkLink l;
    l.name = "ideal";
    l.bandwidth = 100 * GBps;
    l.latency = 0.0;
    l.halfUtilVolume = 0.0;
    l.maxUtilization = 1.0;
    l.collectiveOverhead = 0.0;
    CollectiveResult r = collectiveTime(CollectiveKind::AllToAll,
                                        8 * MB, 8, l);
    // Each device sends 7/8 of its buffer.
    EXPECT_NEAR(r.bandwidthTime, 8 * MB * 7.0 / (8.0 * 100 * GBps),
                1e-12);
    EXPECT_STREQ(collectiveName(CollectiveKind::AllToAll),
                 "all-to-all");
}

TEST(Moe, TrainingChargesDispatchCombine)
{
    TransformerConfig m = models::mixtral8x7b();
    System sys = presets::dgxA100(4);
    ParallelConfig par;
    par.dataParallel = 8;
    par.tensorParallel = 4;

    TrainingReport ep1 = evaluateTraining(m, sys, par, 64, {});
    EXPECT_DOUBLE_EQ(ep1.time.epComm, 0.0);

    par.expertParallel = 8;
    TrainingReport ep8 = evaluateTraining(m, sys, par, 64, {});
    EXPECT_GT(ep8.time.epComm, 0.0);
    // Sharding the experts shrinks per-device memory.
    EXPECT_LT(ep8.memory.weights, ep1.memory.weights);
}

TEST(Moe, ActivationsScaleWithTopK)
{
    TransformerConfig moe = models::mixtral8x7b();
    TransformerConfig dense = moe;
    dense.numExperts = 1;
    dense.topK = 1;
    ActivationParams p;
    p.seq = 2048;
    double a_moe = layerActivations(moe, p).mlp;
    double a_dense = layerActivations(dense, p).mlp;
    EXPECT_GT(a_moe, 1.6 * a_dense);
    EXPECT_LT(a_moe, 2.1 * a_dense);
}

TEST(Moe, InferenceFasterThanDenseOfEqualTotalSize)
{
    // Mixtral-8x7B (47B total, 13B active) should decode much faster
    // than a dense ~47B model on the same hardware: only the active
    // experts' weights stream per token.
    TransformerConfig moe = models::mixtral8x7b();
    TransformerConfig dense47 = models::llama2_70b();  // 69B, slower

    System sys = presets::dgxA100(1);
    InferenceOptions opts;
    opts.tensorParallel = 2;
    double t_moe =
        evaluateInference(moe, sys, opts).totalLatency;
    double t_dense =
        evaluateInference(dense47, sys, opts).totalLatency;
    EXPECT_LT(t_moe, t_dense / 2.0);
}

} // namespace
} // namespace optimus
