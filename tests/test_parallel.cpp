/**
 * @file
 * Unit tests for the parallelism module: mapping validation and
 * pipeline-schedule cost model.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "parallel/pipeline.h"
#include "util/error.h"
#include "workload/presets.h"

namespace optimus {
namespace {

ParallelConfig
mapping(long long dp, long long tp, long long pp)
{
    ParallelConfig par;
    par.dataParallel = dp;
    par.tensorParallel = tp;
    par.pipelineParallel = pp;
    return par;
}

TEST(ParallelConfig, TotalsAndLabel)
{
    ParallelConfig par = mapping(4, 8, 2);
    EXPECT_EQ(par.totalDevices(), 64);
    EXPECT_EQ(par.label(), "4-8-2-1");
    par.sequenceParallel = true;
    EXPECT_EQ(par.label(), "4-8-2-8");
}

TEST(ParallelConfig, MicrobatchMath)
{
    ParallelConfig par = mapping(4, 1, 1);
    par.microbatchSize = 2;
    EXPECT_EQ(par.microbatches(64), 8);
    EXPECT_THROW(par.microbatches(66), ConfigError);  // not divisible
    EXPECT_THROW(par.microbatches(0), ConfigError);
}

TEST(ParallelConfig, ValidatesAgainstModelAndSystem)
{
    TransformerConfig cfg = models::gpt175b();
    System sys = presets::dgxA100(8);  // 64 GPUs

    ParallelConfig ok = mapping(1, 8, 8);
    EXPECT_NO_THROW(ok.validate(cfg, sys, 64));

    // Wrong device count.
    EXPECT_THROW(mapping(2, 8, 8).validate(cfg, sys, 64), ConfigError);

    // TP beyond a node.
    System one = presets::dgxA100(8);
    ParallelConfig tp16 = mapping(1, 16, 4);
    EXPECT_THROW(tp16.validate(cfg, one, 64), ConfigError);

    // Layers not divisible by PP.
    ParallelConfig pp7 = mapping(1, 8, 7);
    System sys7 = presets::dgxA100(7);
    EXPECT_THROW(pp7.validate(cfg, sys7, 56), ConfigError);

    // Heads not divisible by TP.
    TransformerConfig odd = cfg;
    odd.numHeads = 96;
    odd.hiddenSize = 12288;
    ParallelConfig tp5 = mapping(1, 5, 1);
    System sys5 = makeSystem(presets::a100_80gb(), 5, 1,
                             presets::nvlink3(),
                             presets::hdrInfiniBand());
    EXPECT_THROW(tp5.validate(odd, sys5, 8), ConfigError);
}

TEST(ParallelConfig, InterleaveNeedsInterleavedSchedule)
{
    TransformerConfig cfg = models::gpt175b();
    System sys = presets::dgxA100(8);
    ParallelConfig par = mapping(1, 8, 8);
    par.interleavedStages = 4;
    EXPECT_THROW(par.validate(cfg, sys, 64), ConfigError);
    par.schedule = PipelineSchedule::Interleaved1F1B;
    EXPECT_NO_THROW(par.validate(cfg, sys, 64));
    // 96 layers must divide by pp * v.
    par.interleavedStages = 5;
    EXPECT_THROW(par.validate(cfg, sys, 64), ConfigError);
}

TEST(Pipeline, BubbleFractions)
{
    // (p-1)/m for GPipe and 1F1B; divided by v when interleaved.
    PipelineCost gpipe = pipelineCost(PipelineSchedule::GPipe, 8, 64,
                                      1);
    PipelineCost f1b = pipelineCost(PipelineSchedule::OneFOneB, 8, 64,
                                    1);
    PipelineCost il = pipelineCost(PipelineSchedule::Interleaved1F1B,
                                   8, 64, 4);
    EXPECT_DOUBLE_EQ(gpipe.bubbleFraction, 7.0 / 64.0);
    EXPECT_DOUBLE_EQ(f1b.bubbleFraction, 7.0 / 64.0);
    EXPECT_DOUBLE_EQ(il.bubbleFraction, 7.0 / (64.0 * 4.0));
}

TEST(Pipeline, InflightActivations)
{
    // GPipe keeps every microbatch; 1F1B at most p.
    EXPECT_DOUBLE_EQ(
        pipelineCost(PipelineSchedule::GPipe, 8, 64, 1)
            .inflightMicrobatches,
        64.0);
    EXPECT_DOUBLE_EQ(
        pipelineCost(PipelineSchedule::OneFOneB, 8, 64, 1)
            .inflightMicrobatches,
        8.0);
    // Fewer microbatches than stages: bounded by m.
    EXPECT_DOUBLE_EQ(
        pipelineCost(PipelineSchedule::OneFOneB, 8, 4, 1)
            .inflightMicrobatches,
        4.0);
    // Interleaving holds slightly more than p.
    double il = pipelineCost(PipelineSchedule::Interleaved1F1B, 8, 64,
                             4)
                    .inflightMicrobatches;
    EXPECT_GT(il, 8.0);
    EXPECT_LT(il, 12.0);
}

TEST(Pipeline, InterleavingMultipliesP2p)
{
    EXPECT_DOUBLE_EQ(
        pipelineCost(PipelineSchedule::OneFOneB, 8, 64, 1)
            .p2pPerMicrobatch,
        2.0);
    EXPECT_DOUBLE_EQ(
        pipelineCost(PipelineSchedule::Interleaved1F1B, 8, 64, 4)
            .p2pPerMicrobatch,
        8.0);
}

TEST(Pipeline, SingleStageHasNoBubble)
{
    PipelineCost pc = pipelineCost(PipelineSchedule::OneFOneB, 1, 16,
                                   1);
    EXPECT_DOUBLE_EQ(pc.bubbleFraction, 0.0);
    EXPECT_DOUBLE_EQ(pc.p2pPerMicrobatch, 0.0);
}

TEST(Pipeline, RejectsBadInputs)
{
    EXPECT_THROW(pipelineCost(PipelineSchedule::GPipe, 0, 4, 1),
                 ConfigError);
    EXPECT_THROW(pipelineCost(PipelineSchedule::GPipe, 4, 0, 1),
                 ConfigError);
    EXPECT_THROW(pipelineCost(PipelineSchedule::GPipe, 4, 4, 0),
                 ConfigError);
}

TEST(Pipeline, ScheduleNames)
{
    EXPECT_STREQ(scheduleName(PipelineSchedule::GPipe), "gpipe");
    EXPECT_STREQ(scheduleName(PipelineSchedule::OneFOneB), "1f1b");
    EXPECT_STREQ(scheduleName(PipelineSchedule::Interleaved1F1B),
                 "interleaved");
}

// Property: bubble fraction decreases monotonically with microbatch
// count and interleave depth.
class BubbleMonotoneTest
    : public ::testing::TestWithParam<std::tuple<long long, long long>>
{};

TEST_P(BubbleMonotoneTest, ShrinksWithMoreMicrobatches)
{
    auto [m, v] = GetParam();
    double a = pipelineCost(PipelineSchedule::Interleaved1F1B, 8, m, v)
                   .bubbleFraction;
    double b = pipelineCost(PipelineSchedule::Interleaved1F1B, 8,
                            m * 2, v)
                   .bubbleFraction;
    double c = pipelineCost(PipelineSchedule::Interleaved1F1B, 8, m,
                            v * 2)
                   .bubbleFraction;
    EXPECT_LT(b, a);
    EXPECT_LT(c, a);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BubbleMonotoneTest,
    ::testing::Combine(::testing::Values(8LL, 32LL, 128LL),
                       ::testing::Values(1LL, 2LL, 4LL)));

} // namespace
} // namespace optimus
