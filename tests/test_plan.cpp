/**
 * @file
 * Tests for the kernel-plan IR (src/plan): the plan fold reproduces
 * the evaluator reports, step identities are deterministic across
 * thread counts (with a shared estimate cache), the JSON dump round
 * trips, and the communication group-scope convention is honored at
 * its boundary (including the inference per-layer TP all-reduce,
 * which used to be pinned intra-node).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "comm/collective.h"
#include "exec/exec.h"
#include "hw/presets.h"
#include "plan/plan.h"
#include "workload/presets.h"

namespace optimus {
namespace {

void
expectNearRel(double expected, double actual, double rel)
{
    EXPECT_NEAR(expected, actual,
                rel * std::max(1.0, std::abs(expected)));
}

/** Table 1's GPT-175B mapping: 64 GPUs, tp8 x pp8, sequence parallel. */
void
table1Config(TransformerConfig *model, System *sys, ParallelConfig *par,
             TrainingOptions *opts)
{
    *model = models::gpt175b();
    *sys = presets::dgxA100(8);
    par->dataParallel = 1;
    par->tensorParallel = 8;
    par->pipelineParallel = 8;
    par->sequenceParallel = true;
    opts->recompute = Recompute::Selective;
}

/** A Table 2 style serving point: Llama2-13B, tp2, short generation. */
InferenceOptions
table2Options()
{
    InferenceOptions opts;
    opts.tensorParallel = 2;
    opts.batch = 2;
    opts.promptLength = 256;
    opts.generateLength = 8;
    return opts;
}

TEST(Plan, TrainingFoldReproducesEvaluatorReport)
{
    TransformerConfig model;
    System sys;
    ParallelConfig par;
    TrainingOptions opts;
    table1Config(&model, &sys, &par, &opts);

    plan::TrainingRun run =
        plan::runTraining(model, sys, par, 64, opts);
    TrainingReport rep =
        evaluateTraining(model, sys, par, 64, opts);

    // The public evaluator is a thin driver over the same pipeline.
    EXPECT_EQ(rep.timePerBatch, run.report.timePerBatch);
    EXPECT_EQ(rep.time.forward, run.report.time.forward);
    EXPECT_EQ(rep.time.tpComm, run.report.time.tpComm);
    EXPECT_EQ(rep.mfu, run.report.mfu);

    // An independent re-fold of the evaluated plan reproduces the
    // breakdown, and the step totals sum to the batch time.
    plan::FoldedTraining f = plan::foldTraining(run.plan, nullptr);
    EXPECT_EQ(f.time.total(), rep.time.total());
    double step_sum = 0.0;
    for (const plan::StepEval &ev : run.plan.evals)
        step_sum += ev.total;
    expectNearRel(rep.timePerBatch, step_sum, 1e-9);

    // Every category lands in exactly one breakdown field.
    EXPECT_GT(f.time.forward, 0.0);
    EXPECT_GT(f.time.backward, f.time.forward);
    EXPECT_GT(f.time.tpComm, 0.0);
    EXPECT_GT(f.time.bubble, 0.0);
}

TEST(Plan, InferenceFoldReproducesEvaluatorReport)
{
    TransformerConfig model = models::llama2_13b();
    System sys = presets::dgxA100(1);
    InferenceOptions opts = table2Options();

    plan::InferenceRun run = plan::runInference(model, sys, opts);
    InferenceReport rep = evaluateInference(model, sys, opts);

    EXPECT_EQ(rep.totalLatency, run.report.totalLatency);
    EXPECT_EQ(rep.prefill.time, run.report.prefill.time);
    EXPECT_EQ(rep.decode.commTime, run.report.decode.commTime);

    double step_sum = 0.0;
    for (const plan::StepEval &ev : run.plan.evals)
        step_sum += ev.total;
    expectNearRel(rep.totalLatency, step_sum, 1e-9);

    // Phase routing: prefill + decode partition the step stream.
    plan::FoldedInference f = plan::foldInference(run.plan, nullptr);
    expectNearRel(f.prefill.time + f.decode.time, step_sum, 1e-9);
    EXPECT_GT(f.prefill.computeBoundGemmTime, 0.0);
    EXPECT_GT(f.decode.memoryBoundGemmTime, 0.0);
    EXPECT_GT(f.decode.commTime, 0.0);
}

TEST(Plan, StepIdentitiesDeterministicAcrossThreads)
{
    TransformerConfig model;
    System sys;
    ParallelConfig par;
    TrainingOptions opts;
    table1Config(&model, &sys, &par, &opts);

    plan::EvaluatedPlan ref = plan::evaluatePlan(
        plan::lowerTraining(model, sys, par, 64, opts), sys);

    // Eight workers re-evaluate the same plan through one shared
    // estimate cache; every replica must be bit-identical to the
    // serial reference, step by step.
    plan::EvalCache cache;
    plan::EvaluateOptions eo;
    eo.cache = &cache;
    std::vector<plan::EvaluatedPlan> replicas = exec::parallelMap(
        8, 8, [&](long long) {
            return plan::evaluatePlan(
                plan::lowerTraining(model, sys, par, 64, opts), sys,
                eo);
        });
    EXPECT_GT(cache.size(), 0u);
    for (const plan::EvaluatedPlan &ep : replicas) {
        ASSERT_EQ(ref.plan.steps.size(), ep.plan.steps.size());
        for (size_t i = 0; i < ref.plan.steps.size(); ++i) {
            EXPECT_EQ(ref.plan.steps[i].lane, ep.plan.steps[i].lane);
            EXPECT_EQ(ref.plan.steps[i].name, ep.plan.steps[i].name);
            EXPECT_EQ(ref.evals[i].total, ep.evals[i].total);
            EXPECT_EQ(ref.evals[i].perInstance,
                      ep.evals[i].perInstance);
        }
    }
}

TEST(Plan, JsonDumpRoundTrips)
{
    TransformerConfig model;
    System sys;
    ParallelConfig par;
    TrainingOptions opts;
    table1Config(&model, &sys, &par, &opts);
    plan::TrainingRun run =
        plan::runTraining(model, sys, par, 64, opts);

    JsonValue doc = plan::planJson(run.plan);
    EXPECT_EQ("optimus-kernel-plan", doc.at("schema").asString());
    EXPECT_EQ(1, doc.at("version").asInt());
    EXPECT_EQ("training", doc.at("phase").asString());
    ASSERT_FALSE(doc.at("steps").asArray().empty());

    // dump -> parse -> summaries -> dump must be byte-stable (the
    // number formatter round-trips doubles losslessly).
    const std::string text = doc.dump(2);
    JsonValue parsed = JsonValue::parse(text);
    std::string phase;
    std::vector<plan::StepSummary> steps =
        plan::summariesFromJson(parsed, &phase);
    EXPECT_EQ("training", phase);
    EXPECT_EQ(doc.at("steps").asArray().size(), steps.size());
    JsonValue again = plan::summariesToJson(steps, phase);
    EXPECT_EQ(text, again.dump(2));

    // The dump's totals tie out against the report.
    expectNearRel(run.report.timePerBatch,
                  doc.at("totals").at("time").asNumber(), 1e-9);

    // The CSV has one row per step plus a header.
    std::string csv = plan::planCsv(run.plan);
    size_t lines = 0;
    for (char c : csv)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(steps.size() + 1, lines);
}

TEST(Plan, GroupScopeBoundaryIsProductOverNode)
{
    System sys = presets::dgxA100(2);  // 16 devices, 8 per node
    EXPECT_EQ(GroupScope::IntraNode, groupScopeFor(sys, 1));
    EXPECT_EQ(GroupScope::IntraNode, groupScopeFor(sys, 8));
    EXPECT_EQ(GroupScope::InterNode, groupScopeFor(sys, 9));
    EXPECT_EQ(GroupScope::InterNode, groupScopeFor(sys, 16));
}

TEST(Plan, InferenceTpAllReduceSpansNodesWhenTpExceedsNode)
{
    // Regression: the per-layer TP all-reduce used to be pinned
    // intra-node even when the TP group spanned nodes. GPT-175B has
    // 96 heads, so tp16 divides evenly across two DGX nodes.
    TransformerConfig model = models::gpt175b();
    System sys = presets::dgxA100(2);
    InferenceOptions opts;
    opts.tensorParallel = 16;
    opts.batch = 1;
    opts.promptLength = 256;
    opts.generateLength = 4;

    plan::KernelPlan kp = plan::lowerInference(model, sys, opts);
    size_t allreduces = 0;
    for (const plan::PlanStep &st : kp.steps)
        if (st.kind == plan::StepKind::Collective &&
            st.name == "tp-allreduce") {
            ++allreduces;
            EXPECT_EQ(GroupScope::InterNode, st.scope);
            EXPECT_EQ(16, st.groupSize);
        }
    EXPECT_GT(allreduces, 0u);

    // The same group at tp8 stays on NVLink and must be faster per
    // byte: compare effective bandwidth of the two scopes directly.
    double volume = 1 << 20;
    CollectiveResult intra = systemCollective(
        sys, CollectiveKind::AllReduce, volume, 8,
        GroupScope::IntraNode);
    CollectiveResult inter = systemCollective(
        sys, CollectiveKind::AllReduce, volume, 16,
        GroupScope::InterNode);
    EXPECT_GT(intra.effectiveBandwidth, inter.effectiveBandwidth);

    // End to end: the report charges the inter-node collective.
    InferenceReport rep = evaluateInference(model, sys, opts);
    EXPECT_GT(rep.prefill.commTime, 0.0);
    EXPECT_GT(rep.decode.commTime, 0.0);
}

TEST(Plan, KernelAggregatesMatchStepStream)
{
    TransformerConfig model = models::gpt7b();
    System sys = presets::dgxA100(1);
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 4;
    par.sequenceParallel = true;
    TrainingOptions opts;
    opts.recompute = Recompute::Selective;

    plan::TrainingRun run = plan::runTraining(model, sys, par, 32,
                                              opts, /*detail=*/true);
    std::vector<plan::KernelAggregate> aggs =
        plan::kernelAggregates(run.plan);
    ASSERT_FALSE(aggs.empty());
    for (const plan::KernelAggregate &a : aggs) {
        EXPECT_GT(a.count, 0);
        EXPECT_GE(a.time, 0.0);
        EXPECT_FALSE(a.bound.empty()) << a.key;
        // Identities are "<lane>/<name>".
        EXPECT_NE(std::string::npos, a.key.find('/')) << a.key;
    }
}

} // namespace
} // namespace optimus
