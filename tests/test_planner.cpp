/**
 * @file
 * Tests for the parallelization planner.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "memory/footprint.h"
#include "planner/planner.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TEST(TrainingPlanner, FindsFittingPlansAndRanksThem)
{
    TrainingPlannerOptions opts;
    opts.keep = 50;
    std::vector<TrainingPlan> plans = planTraining(
        models::gpt175b(), presets::dgxA100(16), 128, opts);
    ASSERT_FALSE(plans.empty());
    for (size_t i = 1; i < plans.size(); ++i) {
        EXPECT_LE(plans[i - 1].report.timePerBatch,
                  plans[i].report.timePerBatch);
    }
    for (const TrainingPlan &p : plans) {
        EXPECT_EQ(p.parallel.totalDevices(), 128);
        EXPECT_LE(p.report.memory.total(), 80 * GiB);
    }
}

TEST(TrainingPlanner, BestPlanBeatsANaiveMapping)
{
    System sys = presets::dgxA100(16);
    TrainingPlan best = bestTrainingPlan(models::gpt175b(), sys, 128);

    // A valid but clumsy hand mapping: PP-heavy, full recompute.
    ParallelConfig naive;
    naive.dataParallel = 2;
    naive.tensorParallel = 2;
    naive.pipelineParallel = 32;
    TrainingOptions nopts;
    nopts.recompute = Recompute::Full;
    double naive_t =
        evaluateTraining(models::gpt175b(), sys, naive, 128, nopts)
            .timePerBatch;

    EXPECT_LT(best.report.timePerBatch, naive_t);
    EXPECT_GT(best.report.mfu, 0.40);
}

TEST(TrainingPlanner, RespectsMemoryOverPerformance)
{
    // Without recomputation GPT-175B TP8/PP2-style plans overflow;
    // every returned plan must fit.
    TrainingPlannerOptions opts;
    opts.recomputeChoices = {Recompute::None};
    std::vector<TrainingPlan> plans = planTraining(
        models::gpt175b(), presets::dgxA100(8), 64, opts);
    for (const TrainingPlan &p : plans) {
        TrainingMemory mem = trainingMemoryPerDevice(
            models::gpt175b(), p.parallel, 64, 2048,
            p.options.recompute, p.options.memory);
        EXPECT_LE(mem.total(), 80 * GiB);
    }
}

TEST(TrainingPlanner, ThrowsWhenNothingFits)
{
    // One A100 node cannot hold GPT-530B under any mapping.
    EXPECT_THROW(
        bestTrainingPlan(models::gpt530b(), presets::dgxA100(1), 8),
        ConfigError);
}

TEST(TrainingPlanner, ZeroStageWidensTheSpace)
{
    // Allowing ZeRO adds fitting plans (every plain plan still fits,
    // and DP-sharded variants join) for a memory-tight MoE setup.
    TrainingPlannerOptions plain;
    plain.recomputeChoices = {Recompute::Selective};
    plain.zeroStages = {0};
    plain.keep = 1000;
    TrainingPlannerOptions zero = plain;
    zero.zeroStages = {0, 2};

    System sys = presets::dgxA100(4);
    size_t n_plain =
        planTraining(models::mixtral8x7b(), sys, 32, plain).size();
    size_t n_zero =
        planTraining(models::mixtral8x7b(), sys, 32, zero).size();
    EXPECT_GT(n_plain, 0u);
    EXPECT_GT(n_zero, n_plain);
}

TEST(ServingPlanner, RanksByPerDeviceThroughput)
{
    ServingPlannerOptions opts;
    opts.serving.promptLength = 512;
    opts.serving.generateLength = 256;
    std::vector<ServingPlan> plans = planServing(
        models::llama2_13b(), presets::dgxA100(1), opts);
    ASSERT_FALSE(plans.empty());
    for (size_t i = 1; i < plans.size(); ++i) {
        EXPECT_GE(plans[i - 1].tokensPerSecondPerDevice,
                  plans[i].tokensPerSecondPerDevice);
    }
    // Moderate TP wins per-device (sharded KV allows bigger
    // batches); high TP loses to the per-token all-reduces.
    long long winner = plans.front().tensorParallel;
    EXPECT_LE(winner, 4);
    EXPECT_GT(plans.front().tokensPerSecondPerDevice,
              plans.back().tokensPerSecondPerDevice);
}

TEST(ServingPlanner, LatencySloCapsBatch)
{
    ServingPlannerOptions loose;
    loose.serving.promptLength = 512;
    loose.serving.generateLength = 256;
    ServingPlannerOptions tight = loose;
    tight.maxInterTokenLatency = 25e-3;

    System sys = presets::dgxA100(1);
    ServingPlan free_plan =
        planServing(models::llama2_13b(), sys, loose).front();
    std::vector<ServingPlan> tight_plans =
        planServing(models::llama2_13b(), sys, tight);
    ASSERT_FALSE(tight_plans.empty());
    for (const ServingPlan &p : tight_plans)
        EXPECT_LE(p.point.interTokenLatency, 25e-3);
    EXPECT_LE(tight_plans.front().point.batch,
              free_plan.point.batch);
}

TEST(ServingPlanner, SkipsTooSmallDeployments)
{
    // 70B needs at least 2 A100s: TP1 must not appear.
    ServingPlannerOptions opts;
    std::vector<ServingPlan> plans = planServing(
        models::llama2_70b(), presets::dgxA100(1), opts);
    ASSERT_FALSE(plans.empty());
    for (const ServingPlan &p : plans)
        EXPECT_GE(p.tensorParallel, 2);
}

} // namespace
} // namespace optimus
