/**
 * @file
 * Sanity tests over every built-in preset: each device, link, system
 * and model validates, has physically sensible numbers, and the
 * registries expose exactly the presets the headers declare.
 */

#include <gtest/gtest.h>

#include "config/serialize.h"
#include "hw/presets.h"
#include "tech/dram.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

std::vector<Device>
allDevices()
{
    return {presets::a100_80gb(), presets::h100_sxm(),
            presets::h200_sxm(),  presets::b100(),
            presets::b200(),      presets::tpuV4(),
            presets::tpuV5p()};
}

TEST(Presets, EveryDeviceValidatesAndIsSane)
{
    for (const Device &d : allDevices()) {
        SCOPED_TRACE(d.name);
        EXPECT_NO_THROW(d.validate());
        // Every accelerator here exceeds 100 TFLOPS and 1 GB/s..10TB/s
        // of DRAM bandwidth; hierarchy shrinks inward.
        EXPECT_GE(d.matrixFlops(Precision::FP16), 100 * TFLOPS);
        EXPECT_GE(d.dram().bandwidth, 500 * GBps);
        EXPECT_LE(d.dram().bandwidth, 12 * TBps);
        EXPECT_GE(d.dram().capacity, 16 * GiB);
        for (size_t i = 1; i < d.mem.size(); ++i)
            EXPECT_LT(d.mem[i].capacity, d.mem[i - 1].capacity);
        // Calibration knobs inside their domains.
        EXPECT_GT(d.matrixMaxEfficiency, 0.4);
        EXPECT_LE(d.matrixMaxEfficiency, 1.0);
        EXPECT_GT(d.gemvDramUtilization, 0.3);
        EXPECT_LT(d.kernelLaunchOverhead, 20e-6);
    }
}

TEST(Presets, EveryLinkValidates)
{
    for (const NetworkLink &l :
         {presets::nvlink3(), presets::nvlink4(), presets::nvlink5(),
          presets::hdrInfiniBand(), presets::ndrInfiniBand(),
          presets::xdrInfiniBand()}) {
        SCOPED_TRACE(l.name);
        EXPECT_NO_THROW(l.validate());
        EXPECT_GT(l.bandwidth, 50 * GBps);
        EXPECT_LT(l.latency, 50e-6);
        EXPECT_LT(l.collectiveOverhead, 100e-6);
    }
}

TEST(Presets, GenerationalMonotonicity)
{
    // Each NVIDIA generation improves both compute and DRAM.
    std::vector<Device> gens = {presets::a100_80gb(),
                                presets::h100_sxm(),
                                presets::h200_sxm(), presets::b200()};
    for (size_t i = 1; i < gens.size(); ++i) {
        EXPECT_GE(gens[i].matrixFlops(Precision::FP16),
                  gens[i - 1].matrixFlops(Precision::FP16));
        EXPECT_GE(gens[i].dram().bandwidth,
                  gens[i - 1].dram().bandwidth);
        EXPECT_GE(gens[i].dram().capacity,
                  gens[i - 1].dram().capacity);
    }
    EXPECT_GT(presets::nvlink5().bandwidth,
              presets::nvlink4().bandwidth);
    EXPECT_GT(presets::nvlink4().bandwidth,
              presets::nvlink3().bandwidth);
}

TEST(Presets, EveryModelValidates)
{
    for (const TransformerConfig &m :
         {models::gpt7b(), models::gpt22b(), models::gpt175b(),
          models::gpt310b(), models::gpt530b(), models::gpt1008b(),
          models::llama2_7b(), models::llama2_13b(),
          models::llama2_70b(), models::llama3_8b(),
          models::llama3_70b(), models::llama3_405b(),
          models::mixtral8x7b()}) {
        SCOPED_TRACE(m.name);
        EXPECT_NO_THROW(m.validate());
        EXPECT_GE(m.headDim(), 64);
        EXPECT_LE(m.headDim(), 256);
        EXPECT_GT(m.parameterCount(), 1e9);
    }
}

TEST(Presets, RegistryCoversEveryPresetFunction)
{
    // Registry names resolve to the same configurations the preset
    // functions return.
    EXPECT_DOUBLE_EQ(
        config::devicePreset("b200").matrixFlops(Precision::FP4),
        presets::b200().matrixFlops(Precision::FP4));
    EXPECT_DOUBLE_EQ(config::modelPreset("gpt-530b").parameterCount(),
                     models::gpt530b().parameterCount());
    EXPECT_EQ(
        config::systemPreset("tpu-v4-pod", 2).totalDevices(),
        presets::tpuV4Pod(2).totalDevices());
}

TEST(Presets, DramTableOrderedByBandwidth)
{
    const auto &sweep = dram::inferenceSweep();
    for (size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i].bandwidth, sweep[i - 1].bandwidth)
            << sweep[i].name;
}

TEST(Presets, PaperQuotedBandwidths)
{
    // The values the paper's text pins explicitly.
    EXPECT_DOUBLE_EQ(presets::a100_80gb().dram().bandwidth,
                     1.9 * TBps);  // "HBM2e (bandwidth of 1.9 TBPs)"
    EXPECT_DOUBLE_EQ(presets::h100_sxm().dram().bandwidth,
                     3.35 * TBps);  // "HBM3 (bandwidth of 3.35 TBPs)"
    EXPECT_DOUBLE_EQ(
        presets::h100_sxm().matrixFlops(Precision::FP16),
        989.4 * TFLOPS);  // "compute throughput of H100 ... 989.4"
    EXPECT_DOUBLE_EQ(presets::hdrInfiniBand().bandwidth,
                     200 * GBps);  // "HDR InfiniBand (200 GB/s)"
    EXPECT_DOUBLE_EQ(presets::ndrInfiniBand().bandwidth,
                     400 * GBps);  // "NDR IB network (400 GB/s)"
}

} // namespace
} // namespace optimus
