/**
 * @file
 * Tests for the run ledger & diff engine: RunRecord JSON round trips
 * losslessly, a record diffed against itself is empty, a perturbed
 * kernel is attributed to the exact kernel and component, the
 * regression-sentinel exit code honors the tolerance, and structural
 * drift (bound flips, one-sided kernels, fingerprint mismatches) is
 * never excused by tolerance.
 */

#include <gtest/gtest.h>

#include <string>

#include "hw/presets.h"
#include "report/diff.h"
#include "report/record.h"
#include "report/version.h"
#include "training/trainer.h"
#include "util/error.h"
#include "util/json.h"
#include "workload/presets.h"

namespace optimus {
namespace {

report::RunRecord
smallTrainingRecord()
{
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 4;
    par.pipelineParallel = 2;
    par.sequenceParallel = true;
    TrainingOptions opts;
    opts.recompute = Recompute::Selective;
    return report::recordTraining(models::gpt7b(), presets::dgxA100(2),
                                  par, 32, opts, "unit-test");
}

TEST(RunRecord, BuilderFillsIdentityAndContent)
{
    report::RunRecord rec = smallTrainingRecord();
    EXPECT_EQ(rec.schemaVersion, report::kSchemaVersion);
    EXPECT_EQ(rec.toolVersion, report::toolVersion());
    EXPECT_EQ(rec.gitSha, report::gitSha());
    EXPECT_EQ(rec.kind, "training");
    EXPECT_EQ(rec.label, "unit-test");
    EXPECT_EQ(rec.fingerprint, report::fingerprintJson(rec.config));
    EXPECT_EQ(rec.fingerprint.size(), 16u);
    EXPECT_TRUE(rec.hasMetric("time/total"));
    EXPECT_TRUE(rec.hasMetric("mfu"));
    EXPECT_GT(rec.metric("time/total"), 0.0);
    EXPECT_FALSE(rec.kernels.empty());
    for (const report::KernelStat &k : rec.kernels) {
        EXPECT_FALSE(k.key.empty());
        EXPECT_GT(k.count, 0);
        EXPECT_FALSE(k.bound.empty());
    }
}

TEST(RunRecord, JsonRoundTripIsLossless)
{
    report::RunRecord rec = smallTrainingRecord();
    rec.setAttr("note", "quote \" comma , newline \n done");
    rec.validation.push_back({"row/one", 1.25, 1.2500001});

    // Serialize, re-parse the dumped text (the on-disk path), parse
    // back — every field must compare exactly, doubles included.
    JsonValue j = JsonValue::parse(report::toJson(rec).dump(2));
    report::RunRecord back = report::recordFromJson(j);

    EXPECT_EQ(back.schemaVersion, rec.schemaVersion);
    EXPECT_EQ(back.toolVersion, rec.toolVersion);
    EXPECT_EQ(back.gitSha, rec.gitSha);
    EXPECT_EQ(back.kind, rec.kind);
    EXPECT_EQ(back.label, rec.label);
    EXPECT_EQ(back.fingerprint, rec.fingerprint);
    EXPECT_EQ(back.threads, rec.threads);
    EXPECT_EQ(back.config.dump(), rec.config.dump());

    ASSERT_EQ(back.metrics.size(), rec.metrics.size());
    for (size_t i = 0; i < rec.metrics.size(); ++i) {
        EXPECT_EQ(back.metrics[i].first, rec.metrics[i].first);
        EXPECT_EQ(back.metrics[i].second, rec.metrics[i].second)
            << rec.metrics[i].first;
    }
    ASSERT_EQ(back.kernels.size(), rec.kernels.size());
    for (size_t i = 0; i < rec.kernels.size(); ++i) {
        EXPECT_EQ(back.kernels[i].key, rec.kernels[i].key);
        EXPECT_EQ(back.kernels[i].count, rec.kernels[i].count);
        EXPECT_EQ(back.kernels[i].time, rec.kernels[i].time);
        EXPECT_EQ(back.kernels[i].flops, rec.kernels[i].flops);
        EXPECT_EQ(back.kernels[i].dramBytes, rec.kernels[i].dramBytes);
        EXPECT_EQ(back.kernels[i].bound, rec.kernels[i].bound);
    }
    EXPECT_EQ(back.counters, rec.counters);
    ASSERT_EQ(back.validation.size(), rec.validation.size());
    EXPECT_EQ(back.validation.back().name, "row/one");
    EXPECT_EQ(back.validation.back().predicted, 1.2500001);
    EXPECT_EQ(back.attrs, rec.attrs);

    // The loss-free contract is what makes self-diff exact.
    report::RunDiff diff = report::diffRuns(rec, back);
    EXPECT_TRUE(diff.empty());
}

TEST(RunDiff, SelfDiffIsEmptyAndClean)
{
    report::RunRecord rec = smallTrainingRecord();
    report::RunDiff diff = report::diffRuns(rec, rec);
    EXPECT_TRUE(diff.empty());
    EXPECT_FALSE(diff.drifted());
    EXPECT_EQ(report::checkExitCode(diff), 0);
}

TEST(RunDiff, PerturbedKernelIsAttributedExactly)
{
    report::RunRecord a = smallTrainingRecord();
    report::RunRecord b = a;
    ASSERT_GT(b.kernels.size(), 2u);
    const std::string victim = b.kernels[2].key;
    b.kernels[2].time *= 1.01;  // +1% with identical work recorded

    report::RunDiff diff = report::diffRuns(a, b);  // tol 0.5%
    ASSERT_EQ(diff.kernels.size(), 1u);
    EXPECT_EQ(diff.kernels[0].key, victim);
    EXPECT_NEAR(diff.kernels[0].timeDeltaPct(), 1.0, 1e-6);
    EXPECT_EQ(diff.kernels[0].component(), "throughput");
    EXPECT_TRUE(diff.kernels[0].beyondTolerance);
    EXPECT_TRUE(diff.drifted());
    EXPECT_EQ(report::checkExitCode(diff), 1);
}

TEST(RunDiff, ExitCodeHonorsTolerance)
{
    report::RunRecord a = smallTrainingRecord();
    report::RunRecord b = a;
    b.kernels[0].time *= 1.01;

    report::DiffOptions loose;
    loose.tolPct = 5.0;
    report::RunDiff ok = report::diffRuns(a, b, loose);
    EXPECT_FALSE(ok.drifted());
    EXPECT_EQ(report::checkExitCode(ok), 0);
    // The change is still *reported*, just not gated.
    ASSERT_EQ(ok.kernels.size(), 1u);
    EXPECT_FALSE(ok.kernels[0].beyondTolerance);

    report::DiffOptions tight;
    tight.tolPct = 0.1;
    EXPECT_EQ(report::checkExitCode(report::diffRuns(a, b, tight)), 1);
}

TEST(RunDiff, ComponentAttributionTracksWork)
{
    report::RunRecord a = smallTrainingRecord();

    report::RunRecord flops = a;
    flops.kernels[0].flops *= 2.0;
    flops.kernels[0].time *= 2.0;
    report::RunDiff d1 = report::diffRuns(a, flops);
    ASSERT_FALSE(d1.kernels.empty());
    EXPECT_EQ(d1.kernels[0].component(), "flops");

    report::RunRecord bytes = a;
    bytes.kernels[0].dramBytes *= 1.5;
    report::RunDiff d2 = report::diffRuns(a, bytes);
    ASSERT_FALSE(d2.kernels.empty());
    EXPECT_EQ(d2.kernels[0].component(), "bytes");
}

TEST(RunDiff, BoundFlipAlwaysDrifts)
{
    report::RunRecord a = smallTrainingRecord();
    report::RunRecord b = a;
    b.kernels[0].bound =
        (a.kernels[0].bound == "DRAM") ? "compute" : "DRAM";

    report::DiffOptions loose;
    loose.tolPct = 1e9;  // no numeric tolerance can excuse a flip
    report::RunDiff diff = report::diffRuns(a, b, loose);
    ASSERT_EQ(diff.kernels.size(), 1u);
    EXPECT_TRUE(diff.kernels[0].boundFlip);
    EXPECT_EQ(diff.kernels[0].component(), "bound");
    EXPECT_TRUE(diff.drifted());
}

TEST(RunDiff, OneSidedKernelAlwaysDrifts)
{
    report::RunRecord a = smallTrainingRecord();
    report::RunRecord b = a;
    report::KernelStat dropped = b.kernels.back();
    b.kernels.pop_back();

    report::DiffOptions loose;
    loose.tolPct = 1e9;
    report::RunDiff diff = report::diffRuns(a, b, loose);
    ASSERT_EQ(diff.kernels.size(), 1u);
    EXPECT_EQ(diff.kernels[0].key, dropped.key);
    EXPECT_TRUE(diff.kernels[0].onlyA);
    EXPECT_TRUE(diff.drifted());
}

TEST(RunDiff, FingerprintMismatchMakesRecordsIncomparable)
{
    report::RunRecord a = smallTrainingRecord();
    report::RunRecord b = a;
    b.fingerprint = "0000000000000000";

    report::RunDiff diff = report::diffRuns(a, b);
    EXPECT_FALSE(diff.comparable);
    EXPECT_TRUE(diff.drifted());
    EXPECT_EQ(report::checkExitCode(diff), 1);
}

TEST(RunDiff, ValidationPredictionGatesReferenceDoesNot)
{
    report::RunRecord a = smallTrainingRecord();
    a.validation.push_back({"table/row", 10.0, 9.8});
    report::RunRecord b = a;
    b.validation[0].predicted = 10.3;  // ~5% move in the prediction

    report::RunDiff diff = report::diffRuns(a, b);
    ASSERT_EQ(diff.validation.size(), 1u);
    EXPECT_EQ(diff.validation[0].key, "table/row");
    EXPECT_TRUE(diff.validation[0].beyondTolerance);
    EXPECT_TRUE(diff.drifted());
}

TEST(RunDiff, CountersNeverGate)
{
    report::RunRecord a = smallTrainingRecord();
    report::RunRecord b = a;
    b.counters["tile-cache/hits"] += 1000.0;
    b.counters["exec/threads"] = 8.0;

    report::RunDiff diff = report::diffRuns(a, b);
    EXPECT_FALSE(diff.counters.empty());
    EXPECT_FALSE(diff.empty());
    EXPECT_FALSE(diff.drifted()) << "counter churn must not gate CI";
    EXPECT_EQ(report::checkExitCode(diff), 0);
}

TEST(RunRecord, FingerprintIsStableAndSensitive)
{
    JsonValue cfg = JsonValue::object();
    cfg.set("model", JsonValue::string("gpt-7b"));
    cfg.set("batch", JsonValue::number(32));
    std::string fp = report::fingerprintJson(cfg);
    EXPECT_EQ(fp, report::fingerprintJson(cfg));

    cfg.set("batch", JsonValue::number(64));
    EXPECT_NE(fp, report::fingerprintJson(cfg));
}

TEST(RunRecord, RejectsNewerSchema)
{
    report::RunRecord rec = smallTrainingRecord();
    JsonValue j = report::toJson(rec);
    j.set("schema_version",
          JsonValue::number(double(report::kSchemaVersion + 1)));
    EXPECT_THROW(report::recordFromJson(j), ConfigError);
}

TEST(ReportVersion, VersionLineCarriesIdentity)
{
    std::string line = report::versionLine();
    EXPECT_NE(line.find(report::toolVersion()), std::string::npos);
    EXPECT_NE(line.find("schema 1"), std::string::npos);
    EXPECT_NE(line.find(report::gitSha()), std::string::npos);
}

TEST(RunDiff, TextReportNamesKernelAndDecomposition)
{
    report::RunRecord a = smallTrainingRecord();
    report::RunRecord b = a;
    b.kernels[1].time *= 1.02;
    b.setMetric("time/total", a.metric("time/total") * 1.02);

    report::DiffOptions opts;
    report::RunDiff diff = report::diffRuns(a, b, opts);
    std::string text = report::diffText(diff, a, b, opts);
    EXPECT_NE(text.find(b.kernels[1].key), std::string::npos);
    EXPECT_NE(text.find("time/total"), std::string::npos);
    EXPECT_NE(text.find("DRIFT"), std::string::npos);
}

} // namespace
} // namespace optimus
