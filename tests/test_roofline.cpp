/**
 * @file
 * Unit tests for the hierarchical roofline engines: tile search, GEMM
 * estimation, GEMV utilization models and stream kernels.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "roofline/gemm.h"
#include "roofline/gemv.h"
#include "roofline/stream.h"
#include "util/error.h"
#include "util/units.h"

namespace optimus {
namespace {

TEST(TileSearch, WholeProblemFitsCacheGivesCompulsoryTraffic)
{
    GemmShape s{256, 256, 256, Precision::FP16};
    // 256^2 * 3 * 2B = 384 KiB working set; give it 4 MiB.
    TileChoice t = searchTile(s, 4 * MiB, 0.5);
    double compulsory = 2.0 * (256.0 * 256 + 256.0 * 256 +
                               2.0 * 256 * 256);
    EXPECT_DOUBLE_EQ(t.traffic, compulsory);
}

TEST(TileSearch, SmallerCacheMeansMoreTraffic)
{
    GemmShape s{8192, 8192, 8192, Precision::FP16};
    double big = searchTile(s, 40 * MiB).traffic;
    double small = searchTile(s, 1 * MiB).traffic;
    double tiny = searchTile(s, 64 * KiB).traffic;
    EXPECT_LT(big, small);
    EXPECT_LT(small, tiny);
}

TEST(TileSearch, DegenerateCacheFallsBackToStreaming)
{
    GemmShape s{128, 128, 128, Precision::FP16};
    TileChoice t = searchTile(s, 64.0, 0.5);  // absurdly small cache
    // Streaming bound at the degenerate 1x1x1 tile: every A and B
    // element refetched per use, and the single-element C chunk
    // read+written once per k step — the same formula the search
    // scores finite tiles with.
    double stream = 2.0 * (128.0 * 128 * 128 * 2 +
                           2.0 * 128 * 128 * 128);
    EXPECT_DOUBLE_EQ(t.traffic, stream);
}

TEST(TileSearch, KSplitTrafficCountsOutputRevisits)
{
    // A cache that cannot hold full-k tiles forces tk < k; the C
    // term must then scale with ceil(k/tk) rather than staying at
    // 2*m*n (the pre-fix model silently ignored k-splitting).
    GemmShape s{4096, 4096, 4096, Precision::FP16};
    TileChoice t = searchTile(s, 1 * MiB, 0.5);
    ASSERT_GT(t.tk, 0);
    ASSERT_LT(t.tk, s.k);
    double chunks = std::ceil(double(s.k) / double(t.tk));
    double expected =
        2.0 * (double(s.m) * s.k *
                   std::ceil(double(s.n) / double(t.tn)) +
               double(s.k) * s.n *
                   std::ceil(double(s.m) / double(t.tm)) +
               2.0 * double(s.m) * s.n * chunks);
    EXPECT_DOUBLE_EQ(t.traffic, expected);
}

TEST(TileSearch, TileRespectsCapacity)
{
    GemmShape s{4096, 4096, 4096, Precision::FP16};
    TileChoice t = searchTile(s, 1 * MiB, 0.5);
    double footprint = (double(t.tm) * t.tk + double(t.tk) * t.tn +
                        double(t.tm) * t.tn) * 2.0;
    EXPECT_LE(footprint, 1 * MiB * 0.5 + 1.0);
}

TEST(ShapeEfficiency, QuantizationPenalty)
{
    EXPECT_DOUBLE_EQ(
        shapeEfficiency({4096, 4096, 4096, Precision::FP16}), 1.0);
    double skinny = shapeEfficiency({1, 4096, 4096, Precision::FP16});
    EXPECT_NEAR(skinny, 1.0 / 16.0, 1e-12);
    double odd = shapeEfficiency({200, 4096, 4096, Precision::FP16});
    EXPECT_GT(odd, 0.9);
    EXPECT_LT(odd, 1.0);
}

TEST(Gemm, FatGemmIsComputeBoundOnA100)
{
    Device dev = presets::a100_80gb();
    GemmShape s{8192, 8192, 8192, Precision::FP16};
    KernelEstimate est = estimateGemm(dev, s, "fat");
    EXPECT_TRUE(est.computeBound());
    // Time is at least FLOPs / peak and not absurdly larger.
    double ideal = est.flops / dev.matrixFlops(Precision::FP16);
    EXPECT_GE(est.time, ideal);
    EXPECT_LE(est.time, ideal * 2.5);
}

TEST(Gemm, SkinnyGemmIsDramBound)
{
    Device dev = presets::a100_80gb();
    GemmShape s{1, 4096, 4096, Precision::FP16};
    KernelEstimate est = estimateGemm(dev, s, "skinny");
    EXPECT_TRUE(est.dramBound());
    EXPECT_EQ(est.boundName(dev), "DRAM");
    // Weight matrix dominates the traffic.
    double weight_bytes = 4096.0 * 4096.0 * 2.0;
    EXPECT_NEAR(est.bytesPerLevel[0], weight_bytes,
                0.02 * weight_bytes);
}

TEST(Gemm, SkinnyUsesGemvUtilization)
{
    Device dev = presets::a100_80gb();
    GemmShape s{1, 8192, 8192, Precision::FP16};
    KernelEstimate est = estimateGemm(dev, s, "skinny");
    double expected = est.bytesPerLevel[0] /
                      (dev.dram().bandwidth * dev.gemvDramUtilization);
    EXPECT_NEAR(est.memTimePerLevel[0], expected, expected * 1e-9);
}

TEST(Gemm, FasterDeviceIsFaster)
{
    GemmShape s{4096, 4096, 4096, Precision::FP16};
    double a = estimateGemm(presets::a100_80gb(), s).time;
    double h = estimateGemm(presets::h100_sxm(), s).time;
    EXPECT_LT(h, a);
}

TEST(Gemm, Fp8DoublesThroughputOnH100)
{
    Device dev = presets::h100_sxm();
    GemmShape s16{8192, 8192, 8192, Precision::FP16};
    GemmShape s8{8192, 8192, 8192, Precision::FP8};
    double t16 = estimateGemm(dev, s16).computeTime;
    double t8 = estimateGemm(dev, s8).computeTime;
    EXPECT_NEAR(t8, t16 / 2.0, t16 * 0.01);
}

TEST(Gemm, RejectsBadShape)
{
    Device dev = presets::a100_80gb();
    EXPECT_THROW(estimateGemm(dev, {0, 8, 8, Precision::FP16}),
                 ConfigError);
    EXPECT_THROW(estimateGemm(dev, {8, -1, 8, Precision::FP16}),
                 ConfigError);
}

TEST(Gemm, LaunchOverheadToggle)
{
    Device dev = presets::a100_80gb();
    GemmShape s{64, 64, 64, Precision::FP16};
    GemmOptions with;
    GemmOptions without;
    without.launchOverhead = false;
    double t_with = estimateGemm(dev, s, "g", with).time;
    double t_without = estimateGemm(dev, s, "g", without).time;
    EXPECT_NEAR(t_with - t_without, dev.kernelLaunchOverhead, 1e-12);
}

TEST(Gemv, ClusteredUtilizationGrowsWithSize)
{
    GemvUtilizationCurve curve;
    EXPECT_LT(curve.utilization(10 * KB), curve.utilization(10 * MB));
    EXPECT_LE(curve.utilization(1 * GB), curve.maxUtilization);
}

TEST(Gemv, ConstantVsClusteredAgreeForLargeMatrices)
{
    Device dev = presets::a100_80gb();
    KernelEstimate c = estimateGemv(dev, 8192, 8192, Precision::FP16,
                                    "gemv", GemvUtilMode::Constant);
    KernelEstimate k = estimateGemv(dev, 8192, 8192, Precision::FP16,
                                    "gemv", GemvUtilMode::Clustered);
    double err = std::abs(c.time - k.time) / k.time;
    EXPECT_LT(err, 0.15);
}

TEST(Gemv, SmallKernelsDominatedByOverhead)
{
    Device dev = presets::a100_80gb();
    KernelEstimate est = estimateGemv(dev, 64, 64, Precision::FP16);
    EXPECT_GT(est.overhead / est.time, 0.5);
}

TEST(Gemv, AlwaysMemoryBoundOnGpu)
{
    Device dev = presets::h100_sxm();
    KernelEstimate est = estimateGemv(dev, 4096, 16384,
                                      Precision::FP16);
    EXPECT_TRUE(est.dramBound());
}

TEST(Stream, SoftmaxIsMemoryBound)
{
    Device dev = presets::a100_80gb();
    KernelEstimate est = estimateSoftmax(dev, 1 << 20, 2048,
                                         Precision::FP16);
    EXPECT_TRUE(est.dramBound());
    double bytes = 2.0 * double(1 << 20) * 2048.0 * 2.0;
    EXPECT_DOUBLE_EQ(est.bytesPerLevel[0], bytes);
}

TEST(Stream, FusionRemovesLaunch)
{
    Device dev = presets::a100_80gb();
    KernelEstimate fused = estimateElementwise(dev, "gelu", 1e6, 4.0,
                                               Precision::FP16, false);
    KernelEstimate alone = estimateElementwise(dev, "gelu", 1e6, 4.0,
                                               Precision::FP16, true);
    EXPECT_DOUBLE_EQ(fused.overhead, 0.0);
    EXPECT_NEAR(alone.time - fused.time, dev.kernelLaunchOverhead,
                1e-12);
}

TEST(Stream, RejectsNegativeWork)
{
    Device dev = presets::a100_80gb();
    EXPECT_THROW(estimateStream(dev, "x", -1.0, 0.0, Precision::FP16),
                 ConfigError);
}

TEST(Estimate, CombinePreservesTotals)
{
    Device dev = presets::a100_80gb();
    KernelEstimate a = estimateGemm(dev, {512, 512, 512,
                                          Precision::FP16});
    KernelEstimate b = estimateSoftmax(dev, 1024, 1024,
                                       Precision::FP16);
    KernelEstimate c = combineEstimates("sum", a, b);
    EXPECT_DOUBLE_EQ(c.flops, a.flops + b.flops);
    EXPECT_DOUBLE_EQ(c.time, a.time + b.time);
    EXPECT_DOUBLE_EQ(c.bytesPerLevel[0],
                     a.bytesPerLevel[0] + b.bytesPerLevel[0]);
}

// Property sweep: time decreases monotonically as DRAM bandwidth
// scales, for a memory-bound shape.
class DramScalingTest : public ::testing::TestWithParam<double>
{};

TEST_P(DramScalingTest, SkinnyGemmScalesWithBandwidth)
{
    Device dev = presets::a100_80gb();
    Device faster = presets::withDram(dev, "X",
                                      dev.dram().bandwidth * GetParam(),
                                      dev.dram().capacity);
    GemmShape s{1, 8192, 8192, Precision::FP16};
    double base = estimateGemm(dev, s).memTimePerLevel[0];
    double scaled = estimateGemm(faster, s).memTimePerLevel[0];
    EXPECT_NEAR(scaled, base / GetParam(), base * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DramScalingTest,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0));

} // namespace
} // namespace optimus
