/**
 * @file
 * Unit tests for the Scenario facade.
 */

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "hw/presets.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

ParallelConfig
mapping175b()
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;
    return par;
}

TEST(Scenario, TrainingFacadeMatchesDirectCall)
{
    Scenario sc(models::gpt175b(), presets::dgxA100(8), mapping175b(),
                64);
    TrainingReport a = sc.train();
    TrainingReport b = evaluateTraining(
        models::gpt175b(), presets::dgxA100(8), mapping175b(), 64, {});
    EXPECT_DOUBLE_EQ(a.timePerBatch, b.timePerBatch);
    EXPECT_EQ(sc.globalBatch(), 64);
    EXPECT_EQ(sc.model().name, "GPT-175B");
}

TEST(Scenario, ValidatesAtConstruction)
{
    ParallelConfig bad = mapping175b();
    bad.dataParallel = 3;  // 192 devices, system has 64
    EXPECT_THROW(Scenario(models::gpt175b(), presets::dgxA100(8), bad,
                          192),
                 ConfigError);
}

TEST(Scenario, InferenceFacade)
{
    InferenceOptions opts;
    opts.tensorParallel = 4;
    Scenario sc(models::llama2_13b(), presets::dgxA100(1), opts);
    InferenceReport rep = sc.infer();
    EXPECT_GT(rep.totalLatency, 0.0);
    EXPECT_THROW(sc.train(), ConfigError);
}

TEST(Scenario, TrainingScenarioRejectsInfer)
{
    Scenario sc(models::gpt175b(), presets::dgxA100(8), mapping175b(),
                64);
    EXPECT_THROW(sc.infer(), ConfigError);
}

TEST(Scenario, MemoryAndFitChecks)
{
    Scenario sc(models::gpt175b(), presets::dgxA100(8), mapping175b(),
                64);
    TrainingMemory mem = sc.memory(Recompute::Selective);
    EXPECT_GT(mem.total(), 10 * GiB);
    EXPECT_TRUE(sc.fitsDeviceMemory(Recompute::Selective));

    // Without sequence parallelism, storing everything overflows.
    ParallelConfig no_sp;
    no_sp.tensorParallel = 8;
    no_sp.pipelineParallel = 8;
    Scenario tight(models::gpt175b(), presets::dgxA100(8), no_sp, 64);
    EXPECT_FALSE(tight.fitsDeviceMemory(Recompute::None));
}

} // namespace
} // namespace optimus
