/**
 * @file
 * Tests for the event-driven pipeline-schedule simulator, including
 * cross-validation of the closed-form bubble fractions the training
 * engine uses.
 */

#include <gtest/gtest.h>

#include "parallel/pipeline.h"
#include "parallel/schedule_sim.h"
#include "util/error.h"

namespace optimus {
namespace {

ScheduleSimParams
params(PipelineSchedule sched, int p, long long m, int v = 1)
{
    ScheduleSimParams prm;
    prm.schedule = sched;
    prm.stages = p;
    prm.microbatches = m;
    prm.virtualStages = v;
    prm.forwardTime = 1.0;
    prm.backwardTime = 2.0;
    return prm;
}

TEST(ScheduleSim, OneFOneBMatchesClosedForm)
{
    // Classic result: makespan = (m + p - 1)(tf + tb) with zero p2p,
    // i.e. bubble = (p-1)/m exactly.
    for (int p : {2, 4, 8}) {
        for (long long m : {4LL, 8LL, 32LL}) {
            ScheduleSimResult r = simulatePipeline(
                params(PipelineSchedule::OneFOneB, p, m));
            double expected =
                pipelineCost(PipelineSchedule::OneFOneB, p, m, 1)
                    .bubbleFraction;
            EXPECT_NEAR(r.bubbleFraction, expected, 1e-9)
                << "p=" << p << " m=" << m;
            EXPECT_NEAR(r.makespan, (m + p - 1.0) * 3.0, 1e-9);
        }
    }
}

TEST(ScheduleSim, GPipeMatchesClosedForm)
{
    ScheduleSimResult r =
        simulatePipeline(params(PipelineSchedule::GPipe, 4, 8));
    double expected = pipelineCost(PipelineSchedule::GPipe, 4, 8, 1)
                          .bubbleFraction;
    EXPECT_NEAR(r.bubbleFraction, expected, 1e-9);
}

TEST(ScheduleSim, InterleavingShrinksTheBubble)
{
    // The closed form (p-1)/(m v) should match the simulation when m
    // is a multiple of p.
    ScheduleSimResult v1 = simulatePipeline(
        params(PipelineSchedule::Interleaved1F1B, 4, 8, 1));
    ScheduleSimResult v2 = simulatePipeline(
        params(PipelineSchedule::Interleaved1F1B, 4, 8, 2));
    ScheduleSimResult v4 = simulatePipeline(
        params(PipelineSchedule::Interleaved1F1B, 4, 8, 4));
    EXPECT_LT(v2.bubbleFraction, v1.bubbleFraction);
    EXPECT_LT(v4.bubbleFraction, v2.bubbleFraction);
    EXPECT_NEAR(v2.bubbleFraction,
                pipelineCost(PipelineSchedule::Interleaved1F1B, 4, 8,
                             2)
                    .bubbleFraction,
                0.05);
}

TEST(ScheduleSim, EventAccountingIsComplete)
{
    ScheduleSimResult r = simulatePipeline(
        params(PipelineSchedule::OneFOneB, 4, 8));
    // 2 directions x p stages x m microbatches events.
    EXPECT_EQ(r.events.size(), 2u * 4u * 8u);
    // Per-stage busy time equals the analytic busy time.
    double stage0_busy = 0.0;
    for (const SimEvent &e : r.events)
        if (e.stage == 0)
            stage0_busy += e.end - e.start;
    EXPECT_NEAR(stage0_busy, r.busyPerStage, 1e-9);
}

TEST(ScheduleSim, NoOverlapWithinAStage)
{
    ScheduleSimResult r = simulatePipeline(
        params(PipelineSchedule::Interleaved1F1B, 4, 8, 2));
    for (int s = 0; s < 4; ++s) {
        std::vector<SimEvent> mine;
        for (const SimEvent &e : r.events)
            if (e.stage == s)
                mine.push_back(e);
        std::sort(mine.begin(), mine.end(),
                  [](const SimEvent &a, const SimEvent &b) {
                      return a.start < b.start;
                  });
        for (size_t i = 1; i < mine.size(); ++i)
            EXPECT_GE(mine[i].start, mine[i - 1].end - 1e-12);
    }
}

TEST(ScheduleSim, DependenciesAreRespected)
{
    ScheduleSimResult r = simulatePipeline(
        params(PipelineSchedule::OneFOneB, 4, 4));
    auto find = [&](int stage, long long mb, bool bwd) {
        for (const SimEvent &e : r.events)
            if (e.stage == stage && e.microbatch == mb &&
                e.backward == bwd)
                return e;
        throw ModelError("event not found");
    };
    // Forward flows down the pipeline; backward flows up.
    for (long long mb = 0; mb < 4; ++mb) {
        for (int s = 1; s < 4; ++s) {
            EXPECT_GE(find(s, mb, false).start,
                      find(s - 1, mb, false).end - 1e-12);
            EXPECT_GE(find(s - 1, mb, true).start,
                      find(s, mb, true).end - 1e-12);
        }
        EXPECT_GE(find(3, mb, true).start,
                  find(3, mb, false).end - 1e-12);
    }
}

TEST(ScheduleSim, P2pDelaysStretchTheRamp)
{
    ScheduleSimResult fast = simulatePipeline(
        params(PipelineSchedule::OneFOneB, 8, 16));
    ScheduleSimParams slow_prm =
        params(PipelineSchedule::OneFOneB, 8, 16);
    slow_prm.p2pTime = 0.1;
    ScheduleSimResult slow = simulatePipeline(slow_prm);
    EXPECT_GT(slow.makespan, fast.makespan);
    // The p2p delay stretches only the pipeline ramps, not the
    // steady state: (p-1) hops each way.
    EXPECT_LT(slow.makespan, fast.makespan + 6 * 8 * 0.1);
}

TEST(ScheduleSim, ChromeTraceIsWellFormedJson)
{
    ScheduleSimResult r = simulatePipeline(
        params(PipelineSchedule::OneFOneB, 2, 2));
    std::string trace = toChromeTrace(r);
    EXPECT_EQ(trace.front(), '[');
    EXPECT_EQ(trace.back(), ']');
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("F mb0 c0"), std::string::npos);
    EXPECT_NE(trace.find("B mb1 c0"), std::string::npos);
}

TEST(ScheduleSim, RejectsBadInputs)
{
    EXPECT_THROW(
        simulatePipeline(params(PipelineSchedule::OneFOneB, 0, 4)),
        ConfigError);
    EXPECT_THROW(
        simulatePipeline(params(PipelineSchedule::OneFOneB, 4, 0)),
        ConfigError);
    // v > 1 needs the interleaved schedule.
    EXPECT_THROW(
        simulatePipeline(params(PipelineSchedule::OneFOneB, 4, 4, 2)),
        ConfigError);
}

} // namespace
} // namespace optimus
