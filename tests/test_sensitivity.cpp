/**
 * @file
 * Tests for the sensitivity / bottleneck-attribution analyzer.
 */

#include <gtest/gtest.h>

#include "core/sensitivity.h"
#include "hw/presets.h"
#include "inference/engine.h"
#include "training/trainer.h"
#include "util/error.h"
#include "workload/presets.h"

namespace optimus {
namespace {

double
trainObjective(const System &sys)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;
    TrainingOptions opts;
    opts.recompute = Recompute::Selective;
    return evaluateTraining(models::gpt175b(), sys, par, 64, opts)
        .timePerBatch;
}

double
decodeObjective(const System &sys)
{
    InferenceOptions opts;
    return evaluateInference(models::llama2_13b(), sys, opts)
        .totalLatency;
}

TEST(Sensitivity, TrainingIsComputeBound)
{
    std::vector<Sensitivity> s =
        analyzeSensitivity(presets::dgxA100(8), trainObjective);
    ASSERT_EQ(s.size(), 6u);
    // The most binding resource (most negative elasticity) for A100
    // training is the matrix engine.
    EXPECT_EQ(s.front().resource, Resource::MatrixCompute);
    EXPECT_LT(s.front().elasticity, -0.4);
    // Inter-node network is irrelevant without DP here.
    for (const Sensitivity &row : s) {
        if (row.resource == Resource::InterNodeNetwork) {
            EXPECT_GT(row.elasticity, -0.1);
        }
    }
}

TEST(Sensitivity, InferenceIsDramBound)
{
    std::vector<Sensitivity> s =
        analyzeSensitivity(presets::dgxA100(1), decodeObjective);
    EXPECT_EQ(s.front().resource, Resource::DramBandwidth);
    EXPECT_LT(s.front().elasticity, -0.7);
    // Doubling DRAM bandwidth nearly halves decode latency.
    EXPECT_GT(s.front().speedupFrom2x, 1.5);
}

TEST(Sensitivity, ElasticitiesAreSane)
{
    std::vector<Sensitivity> s =
        analyzeSensitivity(presets::dgxA100(1), decodeObjective);
    for (const Sensitivity &row : s) {
        // More of any resource never hurts; no resource can be more
        // than fully binding.
        EXPECT_LE(row.elasticity, 0.01) << resourceName(row.resource);
        EXPECT_GE(row.elasticity, -1.01)
            << resourceName(row.resource);
        EXPECT_GE(row.speedupFrom2x, 0.99)
            << resourceName(row.resource);
        EXPECT_LE(row.speedupFrom2x, 2.01)
            << resourceName(row.resource);
    }
}

TEST(Sensitivity, TensorParallelInferenceFeelsTheNetwork)
{
    auto tp8 = [](const System &sys) {
        InferenceOptions opts;
        opts.tensorParallel = 8;
        return evaluateInference(models::llama2_13b(), sys, opts)
            .totalLatency;
    };
    std::vector<Sensitivity> s =
        analyzeSensitivity(presets::dgxA100(1), tp8);
    // At TP8 the per-token all-reduces (software overhead + latency)
    // rival DRAM: overheads must rank among the top two.
    EXPECT_TRUE(s[0].resource == Resource::KernelOverhead ||
                s[1].resource == Resource::KernelOverhead);
}

TEST(Sensitivity, ScaleResourceIsExact)
{
    System sys = presets::dgxA100(1);
    System fast = scaleResource(sys, Resource::DramBandwidth, 2.0);
    EXPECT_DOUBLE_EQ(fast.device.dram().bandwidth,
                     sys.device.dram().bandwidth * 2.0);
    System net = scaleResource(sys, Resource::InterNodeNetwork, 3.0);
    EXPECT_DOUBLE_EQ(net.interLink.bandwidth,
                     sys.interLink.bandwidth * 3.0);
    System quick = scaleResource(sys, Resource::KernelOverhead, 2.0);
    EXPECT_DOUBLE_EQ(quick.device.kernelLaunchOverhead,
                     sys.device.kernelLaunchOverhead / 2.0);
    EXPECT_THROW(scaleResource(sys, Resource::DramBandwidth, 0.0),
                 ConfigError);
}

TEST(Sensitivity, TableRendersSorted)
{
    std::vector<Sensitivity> s =
        analyzeSensitivity(presets::dgxA100(1), decodeObjective);
    Table t = sensitivityTable(s);
    EXPECT_EQ(t.rowCount(), 6u);
    EXPECT_EQ(t.at(0, 0), "DRAM bandwidth");
}

} // namespace
} // namespace optimus
