/**
 * @file
 * Tests for the serving-throughput extension and the TPU presets.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "inference/serving.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/presets.h"

namespace optimus {
namespace {

ServingOptions
chatOptions(int tp)
{
    ServingOptions opts;
    opts.tensorParallel = tp;
    opts.promptLength = 512;
    opts.generateLength = 256;
    return opts;
}

TEST(Serving, ThroughputGrowsWithBatch)
{
    System sys = presets::dgxA100(1);
    TransformerConfig cfg = models::llama2_13b();
    ServingOptions opts = chatOptions(1);
    double prev = 0.0;
    for (long long b : {1LL, 4LL, 16LL, 64LL}) {
        ServingPoint pt = evaluateServingPoint(cfg, sys, opts, b);
        EXPECT_GT(pt.tokensPerSecond, prev) << "batch " << b;
        prev = pt.tokensPerSecond;
    }
}

TEST(Serving, BatchingTradesLatencyForThroughput)
{
    System sys = presets::dgxA100(1);
    TransformerConfig cfg = models::llama2_13b();
    ServingOptions opts = chatOptions(1);
    ServingPoint b1 = evaluateServingPoint(cfg, sys, opts, 1);
    ServingPoint b32 = evaluateServingPoint(cfg, sys, opts, 32);
    // Paper Sec. 6.1: throughput up, latency growth "rather modest".
    EXPECT_GT(b32.tokensPerSecond, 8.0 * b1.tokensPerSecond);
    EXPECT_LT(b32.interTokenLatency, 4.0 * b1.interTokenLatency);
}

TEST(Serving, StepTimeConsistency)
{
    System sys = presets::dgxA100(1);
    ServingOptions opts = chatOptions(1);
    ServingPoint pt = evaluateServingPoint(models::llama2_7b(), sys,
                                           opts, 8);
    EXPECT_GT(pt.interTokenLatency, pt.decodeStepTime);
    EXPECT_NEAR(pt.tokensPerSecond,
                8.0 / pt.interTokenLatency, 1e-6);
    EXPECT_NEAR(pt.requestsPerSecond * opts.generateLength,
                pt.tokensPerSecond, 1e-6);
    EXPECT_GT(pt.timeToFirstToken, 0.0);
}

TEST(Serving, KvCacheLimitsBatch)
{
    System sys = presets::dgxA100(1);
    TransformerConfig cfg = models::llama2_13b();
    ServingOptions opts = chatOptions(1);
    opts.promptLength = 3000;
    opts.generateLength = 1000;
    // 13B weights 24 GiB leave ~56 GiB: each 4000-token sequence
    // needs ~3 GiB of KV, so batch 32 must overflow.
    ServingPoint small = evaluateServingPoint(cfg, sys, opts, 4);
    ServingPoint large = evaluateServingPoint(cfg, sys, opts, 32);
    EXPECT_TRUE(small.fits);
    EXPECT_FALSE(large.fits);

    ServingPoint best = maxThroughputPoint(cfg, sys, opts);
    EXPECT_TRUE(best.fits);
    EXPECT_LT(best.batch, 32);
}

TEST(Serving, MaxThroughputRejectsOversizedModel)
{
    System sys = presets::dgxA100(1);
    ServingOptions opts = chatOptions(1);  // 70B does not fit 1 GPU
    EXPECT_THROW(
        maxThroughputPoint(models::llama2_70b(), sys, opts),
        ConfigError);
    EXPECT_NO_THROW(maxThroughputPoint(models::llama2_70b(), sys,
                                       chatOptions(2)));
}

TEST(Serving, CostPerTokenDecreasesWithBatch)
{
    System sys = presets::dgxH100(1);
    TransformerConfig cfg = models::llama2_13b();
    ServingOptions opts = chatOptions(1);
    ServingPoint b1 = evaluateServingPoint(cfg, sys, opts, 1);
    ServingPoint b32 = evaluateServingPoint(cfg, sys, opts, 32);
    double c1 = costPerMillionTokens(sys, opts, b1);
    double c32 = costPerMillionTokens(sys, opts, b32);
    EXPECT_LT(c32, c1 / 8.0);
    // Sanity: single-digit dollars per Mtok at high batch,
    // double/triple digits unbatched.
    EXPECT_GT(c1, 1.0);
    EXPECT_LT(c32, 5.0);
}

TEST(Serving, RejectsBadInputs)
{
    System sys = presets::dgxA100(1);
    ServingOptions opts = chatOptions(1);
    EXPECT_THROW(evaluateServingPoint(models::llama2_7b(), sys, opts,
                                      0),
                 ConfigError);
    ServingPoint empty;
    EXPECT_THROW(costPerMillionTokens(sys, opts, empty), ConfigError);
}

// ---- TPU presets -------------------------------------------------------

TEST(Tpu, PresetNumbers)
{
    Device v4 = presets::tpuV4();
    EXPECT_DOUBLE_EQ(v4.matrixFlops(Precision::BF16), 275 * TFLOPS);
    EXPECT_DOUBLE_EQ(v4.dram().bandwidth, 1.2 * TBps);
    EXPECT_EQ(v4.level("CMEM").name, "CMEM");

    Device v5p = presets::tpuV5p();
    EXPECT_DOUBLE_EQ(v5p.matrixFlops(Precision::BF16), 459 * TFLOPS);
    EXPECT_DOUBLE_EQ(v5p.dram().capacity, 95 * GiB);
}

TEST(Tpu, PodTopology)
{
    System pod = presets::tpuV4Pod(2);
    EXPECT_EQ(pod.totalDevices(), 128);
    EXPECT_EQ(pod.devicesPerNode, 64);
    EXPECT_EQ(pod.linkForGroup(64).name, "ICI-v4");
    EXPECT_EQ(pod.linkForGroup(65).name, "DCN");
}

TEST(Tpu, TrainsGptInBf16)
{
    // The framework extends beyond GPUs (paper Sec. 4.1 note).
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 8;
    par.pipelineParallel = 4;
    TrainingOptions opts;
    opts.precision = Precision::BF16;
    TrainingReport rep = evaluateTraining(
        models::gpt175b(), presets::tpuV4Pod(1), par, 64, opts);
    EXPECT_GT(rep.timePerBatch, 0.0);
    EXPECT_GT(rep.mfu, 0.2);
    EXPECT_LT(rep.mfu, 0.8);
}

TEST(Tpu, V5pBeatsV4)
{
    InferenceOptions opts;
    opts.precision = Precision::BF16;
    double v4 = evaluateInference(models::llama2_13b(),
                                  presets::tpuV4Pod(1), opts)
                    .totalLatency;
    double v5 = evaluateInference(models::llama2_13b(),
                                  presets::tpuV5pPod(1), opts)
                    .totalLatency;
    EXPECT_LT(v5, v4);
}

} // namespace
} // namespace optimus
