/**
 * @file
 * Tests for sliding-window attention: bounded KV cache and decode
 * traffic past the window.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "inference/engine.h"
#include "memory/kv_cache.h"
#include "util/error.h"
#include "config/serialize.h"
#include "workload/graph.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TransformerConfig
windowed(long long window)
{
    TransformerConfig cfg = models::mixtral8x7b();
    cfg.slidingWindow = window;
    return cfg;
}

TEST(SlidingWindow, SpanSaturatesAtWindow)
{
    TransformerConfig cfg = windowed(4096);
    EXPECT_EQ(cfg.attentionSpan(100), 100);
    EXPECT_EQ(cfg.attentionSpan(4096), 4096);
    EXPECT_EQ(cfg.attentionSpan(100000), 4096);
    // Full attention: span == context.
    EXPECT_EQ(models::llama2_13b().attentionSpan(100000), 100000);
    TransformerConfig bad = windowed(-1);
    EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(SlidingWindow, CapsKvCache)
{
    TransformerConfig w = windowed(4096);
    TransformerConfig full = windowed(0);
    EXPECT_DOUBLE_EQ(kvCacheBytes(w, 1, 32768, Precision::FP16),
                     kvCacheBytes(full, 1, 4096, Precision::FP16));
    EXPECT_DOUBLE_EQ(kvCacheBytes(w, 1, 2048, Precision::FP16),
                     kvCacheBytes(full, 1, 2048, Precision::FP16));
}

TEST(SlidingWindow, DecodeReadsStopGrowingPastWindow)
{
    TransformerConfig w = windowed(4096);
    Device dev = presets::a100_80gb();
    auto attn_bytes = [&](long long ctx) {
        double bytes = 0.0;
        for (const Op &op : decodeLayerOps(w, 1, ctx, 1,
                                           Precision::FP16))
            if (op.name == "qk^T" || op.name == "attn-v")
                bytes += evaluateOp(dev, op).bytesPerLevel[0];
        return bytes;
    };
    EXPECT_LT(attn_bytes(2048), attn_bytes(4096));
    EXPECT_DOUBLE_EQ(attn_bytes(8192), attn_bytes(4096));
    EXPECT_DOUBLE_EQ(attn_bytes(32768), attn_bytes(4096));
}

TEST(SlidingWindow, LongGenerationLatencyFlattens)
{
    // Windowed attention keeps long-context decode affordable where
    // full attention keeps growing.
    System sys = presets::dgxA100(1);
    InferenceOptions opts;
    opts.promptLength = 16384;
    opts.generateLength = 64;
    opts.batch = 8;

    TransformerConfig w = windowed(4096);
    TransformerConfig full = windowed(0);
    double t_w = evaluateInference(w, sys, opts).decode.time;
    double t_full = evaluateInference(full, sys, opts).decode.time;
    EXPECT_LT(t_w, t_full);

    // And its memory fit is context-independent (checked on a model
    // whose weights fit a single device).
    TransformerConfig small = models::llama2_13b();
    small.slidingWindow = 4096;
    small.maxSeqLength = 131072;
    InferenceOptions huge;
    huge.batch = 1;
    huge.promptLength = 120000;
    huge.generateLength = 8;
    EXPECT_TRUE(evaluateInference(small, sys, huge)
                    .fitsDeviceMemory);
}

TEST(SlidingWindow, RoundTripsThroughConfig)
{
    TransformerConfig w = windowed(4096);
    TransformerConfig back =
        config::modelFromJson(config::toJson(w));
    EXPECT_EQ(back.slidingWindow, 4096);
}

} // namespace
} // namespace optimus
