/**
 * @file
 * Tests for the speculative-decoding extension.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "inference/speculative.h"
#include "util/error.h"
#include "workload/presets.h"

namespace optimus {
namespace {

SpeculativeOptions
defaults()
{
    SpeculativeOptions opts;
    opts.gamma = 4;
    opts.acceptanceRate = 0.8;
    opts.context = 400;
    return opts;
}

TEST(Speculative, SpeedsUpMemoryBoundDecoding)
{
    System sys = presets::dgxA100(1);
    SpeculativeReport rep = evaluateSpeculative(
        models::llama2_70b(), models::llama2_7b(), sys, defaults());
    // Drafting with a 10x smaller model at 80% acceptance should
    // roughly double throughput.
    EXPECT_GT(rep.speedup, 1.3);
    EXPECT_LT(rep.speedup, 3.5);
    EXPECT_GT(rep.tokensPerSecond, rep.baselineTokensPerSecond);
}

TEST(Speculative, ExpectedTokensFollowsGeometricSum)
{
    System sys = presets::dgxA100(1);
    SpeculativeOptions opts = defaults();
    SpeculativeReport rep = evaluateSpeculative(
        models::llama2_13b(), models::llama2_7b(), sys, opts);
    double a = opts.acceptanceRate;
    double expected = (1.0 - std::pow(a, 5.0)) / (1.0 - a);
    EXPECT_NEAR(rep.expectedTokensPerCycle, expected, 1e-12);
    EXPECT_NEAR(rep.cycleTime,
                4.0 * rep.draftStepTime + rep.verifyTime, 1e-12);
}

TEST(Speculative, VerifyCostsLittleMoreThanOneStep)
{
    // The verification pass streams the weights once for gamma+1
    // tokens: it must cost well under gamma+1 decode steps.
    System sys = presets::dgxA100(1);
    SpeculativeReport rep = evaluateSpeculative(
        models::llama2_70b(), models::llama2_7b(), sys, defaults());
    double baseline_step = 1.0 / rep.baselineTokensPerSecond;
    EXPECT_LT(rep.verifyTime, baseline_step * 1.5);
}

TEST(Speculative, LowAcceptanceKillsTheGain)
{
    System sys = presets::dgxA100(1);
    SpeculativeOptions good = defaults();
    SpeculativeOptions bad = defaults();
    bad.acceptanceRate = 0.05;
    double s_good = evaluateSpeculative(models::llama2_70b(),
                                        models::llama2_7b(), sys,
                                        good)
                        .speedup;
    double s_bad = evaluateSpeculative(models::llama2_70b(),
                                       models::llama2_7b(), sys, bad)
                       .speedup;
    EXPECT_GT(s_good, s_bad);
    EXPECT_LT(s_bad, 1.0);  // not worth it
}

TEST(Speculative, RejectsBadSetups)
{
    System sys = presets::dgxA100(1);
    SpeculativeOptions opts = defaults();
    opts.acceptanceRate = 1.0;
    EXPECT_THROW(evaluateSpeculative(models::llama2_70b(),
                                     models::llama2_7b(), sys, opts),
                 ConfigError);
    opts = defaults();
    // Draft must be smaller than the target.
    EXPECT_THROW(evaluateSpeculative(models::llama2_7b(),
                                     models::llama2_70b(), sys, opts),
                 ConfigError);
}

// Property: speedup is unimodal-ish in gamma; tiny gamma underuses
// the parallel verify, huge gamma wastes drafts.
class GammaSweepTest : public ::testing::TestWithParam<long long>
{};

TEST_P(GammaSweepTest, ReportsConsistentThroughput)
{
    System sys = presets::dgxA100(1);
    SpeculativeOptions opts = defaults();
    opts.gamma = GetParam();
    SpeculativeReport rep = evaluateSpeculative(
        models::llama2_70b(), models::llama2_7b(), sys, opts);
    EXPECT_NEAR(rep.tokensPerSecond,
                rep.expectedTokensPerCycle / rep.cycleTime, 1e-9);
    EXPECT_GT(rep.speedup, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GammaSweepTest,
                         ::testing::Values(1LL, 2LL, 4LL, 8LL, 16LL));

} // namespace
} // namespace optimus
