/**
 * @file
 * Unit tests for the technology substrate: logic node table, DRAM and
 * network technology tables, and the uArch synthesis engine.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "tech/uarch.h"
#include "util/error.h"
#include "util/units.h"

namespace optimus {
namespace {

TEST(LogicNodes, SevenNodesFromN12ToN1)
{
    const auto &nodes = logicNodes();
    ASSERT_EQ(nodes.size(), 7u);
    EXPECT_EQ(nodes.front().name, "N12");
    EXPECT_EQ(nodes.back().name, "N1");
    for (size_t i = 1; i < nodes.size(); ++i) {
        EXPECT_GT(nodes[i].densityScale, nodes[i - 1].densityScale);
        EXPECT_GT(nodes[i].efficiencyScale,
                  nodes[i - 1].efficiencyScale);
    }
}

TEST(LogicNodes, IsoPerformanceScalingFactors)
{
    // Paper Sec. 5.3: 1.8x area and 1.3x power per node step.
    const LogicNode &n7 = logicNode("N7");
    EXPECT_EQ(n7.index, 2);
    EXPECT_NEAR(n7.densityScale, 1.8 * 1.8, 1e-12);
    EXPECT_NEAR(n7.efficiencyScale, 1.3 * 1.3, 1e-12);
    EXPECT_THROW(logicNode("N4"), ConfigError);
}

TEST(DramTech, PaperBandwidths)
{
    EXPECT_DOUBLE_EQ(dram::gddr6().bandwidth, 600 * GBps);
    EXPECT_DOUBLE_EQ(dram::hbm2().bandwidth, 1.0 * TBps);
    EXPECT_DOUBLE_EQ(dram::hbm2e().bandwidth, 1.9 * TBps);
    EXPECT_DOUBLE_EQ(dram::hbm3_26().bandwidth, 2.6 * TBps);
    EXPECT_DOUBLE_EQ(dram::hbm3().bandwidth, 3.35 * TBps);
    EXPECT_DOUBLE_EQ(dram::hbm3e().bandwidth, 4.8 * TBps);
    EXPECT_DOUBLE_EQ(dram::hbm4().bandwidth, 3.3 * TBps);
    EXPECT_DOUBLE_EQ(dram::hbmx().bandwidth, 6.8 * TBps);
    EXPECT_EQ(dram::trainingSweep().size(), 4u);
    EXPECT_EQ(dram::inferenceSweep().size(), 6u);
}

TEST(NetworkTech, PaperRates)
{
    EXPECT_DOUBLE_EQ(nettech::ndrX8().bandwidth, 100 * GBps);
    EXPECT_DOUBLE_EQ(nettech::xdrX8().bandwidth, 200 * GBps);
    EXPECT_DOUBLE_EQ(nettech::gdrX8().bandwidth, 400 * GBps);
    EXPECT_EQ(nettech::scalingSweep().size(), 3u);
}

TEST(UArch, AnchorReproducesA100Throughput)
{
    // Default allocation at N7 with the A100 budget should give an
    // A100-class device.
    TechConfig tech;
    tech.node = logicNode("N7");
    tech.dram = dram::hbm2e();
    Device d = buildDevice(tech, UArchAllocation{});
    EXPECT_NEAR(d.matrixFlops(Precision::FP16), 312 * TFLOPS,
                0.25 * 312 * TFLOPS);
    EXPECT_NEAR(d.level("L2").capacity, 40 * MiB, 20 * MiB);
    EXPECT_DOUBLE_EQ(d.dram().bandwidth, 1.9 * TBps);
}

TEST(UArch, NodeScalingRaisesThroughput)
{
    TechConfig t12, t1;
    t12.node = logicNode("N12");
    t12.dram = dram::hbm2e();
    t1 = t12;
    t1.node = logicNode("N1");
    double f12 =
        buildDevice(t12, {}).matrixFlops(Precision::FP16);
    double f1 = buildDevice(t1, {}).matrixFlops(Precision::FP16);
    // Bounded between pure power scaling (1.3^6, if power-limited
    // throughout) and pure density scaling (1.8^6): the design starts
    // area-limited at N12 and becomes power-limited at N1.
    EXPECT_GT(f1, f12 * std::pow(1.3, 6) * 0.99);
    EXPECT_LT(f1, f12 * std::pow(1.8, 6) * 1.01);
}

TEST(UArch, MoreComputeAreaMeansLessCache)
{
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm3_26();
    UArchAllocation lean{0.3, 0.7};
    UArchAllocation fat{0.8, 0.7};
    Device a = buildDevice(tech, lean);
    Device b = buildDevice(tech, fat);
    EXPECT_LT(a.matrixFlops(Precision::FP16),
              b.matrixFlops(Precision::FP16));
    EXPECT_GT(a.level("L2").capacity, b.level("L2").capacity);
}

TEST(UArch, PowerBudgetCanBind)
{
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm3_26();
    tech.powerBudget = 50.0;  // starved
    UArchAllocation alloc{0.9, 0.9};
    Device d = buildDevice(tech, alloc);
    TechConfig rich = tech;
    rich.powerBudget = 2000.0;
    Device d2 = buildDevice(rich, alloc);
    EXPECT_LT(d.matrixFlops(Precision::FP16),
              d2.matrixFlops(Precision::FP16));
}

TEST(UArch, RejectsBadAllocation)
{
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm2e();
    EXPECT_THROW(buildDevice(tech, UArchAllocation{0.0, 0.5}),
                 ConfigError);
    EXPECT_THROW(buildDevice(tech, UArchAllocation{0.5, 1.0}),
                 ConfigError);
    TechConfig bad = tech;
    bad.areaBudget = -1.0;
    EXPECT_THROW(buildDevice(bad, UArchAllocation{}), ConfigError);
}

TEST(UArch, BuildSystemComposes)
{
    TechConfig tech;
    tech.node = logicNode("N3");
    tech.dram = dram::hbm4();
    System sys = buildSystem(tech, {}, 8, 16, presets::nvlink4(),
                             nettech::gdrX8());
    EXPECT_EQ(sys.totalDevices(), 128);
    EXPECT_EQ(sys.device.mem.size(), 3u);
    EXPECT_NO_THROW(sys.validate());
}

// Property sweep: device throughput is monotone in the node index.
class NodeSweepTest : public ::testing::TestWithParam<int>
{};

TEST_P(NodeSweepTest, MonotoneThroughput)
{
    int i = GetParam();
    const auto &nodes = logicNodes();
    TechConfig a, b;
    a.node = nodes[i];
    b.node = nodes[i + 1];
    a.dram = b.dram = dram::hbm3_26();
    EXPECT_LT(buildDevice(a, {}).matrixFlops(Precision::FP16),
              buildDevice(b, {}).matrixFlops(Precision::FP16));
}

INSTANTIATE_TEST_SUITE_P(Sweep, NodeSweepTest,
                         ::testing::Range(0, 6));

} // namespace
} // namespace optimus
