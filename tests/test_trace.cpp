/**
 * @file
 * Tests for the trace & metrics layer: the Chrome export is
 * well-formed, per-category span sums reproduce the aggregate
 * reports (the layer's key invariant), counters reset between
 * sessions, and the null sink records nothing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>

#include "dse/search.h"
#include "hw/presets.h"
#include "inference/engine.h"
#include "planner/planner.h"
#include "roofline/report.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "training/trainer.h"
#include "util/json.h"
#include "workload/graph.h"
#include "workload/presets.h"

namespace optimus {
namespace {

void
expectNearRel(double expected, double actual, double rel)
{
    EXPECT_NEAR(expected, actual,
                rel * std::max(1.0, std::abs(expected)));
}

TraceSession
tracedTraining(TrainingReport *out = nullptr)
{
    TraceSession session;
    ParallelConfig par;
    par.dataParallel = 2;
    par.tensorParallel = 4;
    par.pipelineParallel = 2;
    par.sequenceParallel = true;
    TrainingOptions opts;
    opts.recompute = Recompute::Selective;
    opts.trace = &session;
    TrainingReport rep = evaluateTraining(
        models::gpt7b(), presets::dgxA100(2), par, 32, opts);
    if (out != nullptr)
        *out = rep;
    return session;
}

TraceSession
tracedInference(InferenceReport *out = nullptr)
{
    TraceSession session;
    InferenceOptions opts;
    opts.tensorParallel = 2;
    opts.batch = 2;
    opts.promptLength = 256;
    opts.generateLength = 8;
    opts.trace = &session;
    InferenceReport rep = evaluateInference(
        models::llama2_13b(), presets::dgxA100(1), opts);
    if (out != nullptr)
        *out = rep;
    return session;
}

TEST(Trace, NullSinkRecordsNothing)
{
    TraceSession off(false);
    int lane = off.lane("a");
    off.emit(lane, "x", "forward", 1.0);
    off.counterAdd("c");
    off.counterSet("g", 3.0);
    EXPECT_TRUE(off.spans().empty());
    EXPECT_TRUE(off.lanes().empty());
    EXPECT_TRUE(off.counterSamples().empty());
    EXPECT_EQ(off.counter("c"), 0.0);

    // Evaluators accept both a disabled session and no session at
    // all; neither records anything and both produce the same report.
    ParallelConfig par;
    par.tensorParallel = 4;
    par.pipelineParallel = 2;
    par.dataParallel = 2;
    TrainingOptions with_off;
    with_off.trace = &off;
    TrainingReport a = evaluateTraining(
        models::gpt7b(), presets::dgxA100(2), par, 32, with_off);
    TrainingReport b = evaluateTraining(
        models::gpt7b(), presets::dgxA100(2), par, 32, {});
    EXPECT_TRUE(off.spans().empty());
    EXPECT_DOUBLE_EQ(a.timePerBatch, b.timePerBatch);
}

TEST(Trace, TrainingCategorySumsMatchBreakdown)
{
    TrainingReport rep;
    TraceSession session = tracedTraining(&rep);
    std::map<std::string, double> sums = session.categoryTotals();

    const TrainingBreakdown &t = rep.time;
    expectNearRel(t.forward, sums["forward"], 1e-9);
    expectNearRel(t.backward, sums["backward"], 1e-9);
    expectNearRel(t.recompute, sums["recompute"], 1e-9);
    expectNearRel(t.embedding, sums["embedding"], 1e-9);
    expectNearRel(t.tpComm, sums["tp-comm"], 1e-9);
    expectNearRel(t.cpComm, sums["cp-comm"], 1e-9);
    expectNearRel(t.epComm, sums["ep-comm"], 1e-9);
    expectNearRel(t.ppComm, sums["pp-comm"], 1e-9);
    expectNearRel(t.dpComm, sums["dp-comm"], 1e-9);
    expectNearRel(t.bubble, sums["bubble"], 1e-9);
    expectNearRel(t.optimizer, sums["optimizer"], 1e-9);

    // Kernel-detail spans are an inner decomposition, excluded from
    // the breakdown identity; everything else sums to the total.
    double total = 0.0;
    for (const auto &kv : sums)
        if (kv.first != "kernel")
            total += kv.second;
    expectNearRel(rep.timePerBatch, total, 1e-9);

    EXPECT_EQ(session.counter("train/microbatches"),
              double(rep.microbatches));
    EXPECT_DOUBLE_EQ(session.counter("train/time-per-batch-s"),
                     rep.timePerBatch);
}

TEST(Trace, InferenceCategorySumsMatchPhases)
{
    InferenceReport rep;
    TraceSession session = tracedInference(&rep);
    std::map<std::string, double> sums = session.categoryTotals();

    expectNearRel(rep.prefill.computeBoundGemmTime,
                  sums["prefill-gemm-compute"], 1e-9);
    expectNearRel(rep.prefill.memoryBoundGemmTime,
                  sums["prefill-gemm-memory"], 1e-9);
    expectNearRel(rep.prefill.otherKernelTime, sums["prefill-other"],
                  1e-9);
    expectNearRel(rep.prefill.commTime, sums["prefill-comm"], 1e-9);
    expectNearRel(rep.decode.computeBoundGemmTime,
                  sums["decode-gemm-compute"], 1e-9);
    expectNearRel(rep.decode.memoryBoundGemmTime,
                  sums["decode-gemm-memory"], 1e-9);
    expectNearRel(rep.decode.otherKernelTime, sums["decode-other"],
                  1e-9);
    expectNearRel(rep.decode.commTime, sums["decode-comm"], 1e-9);

    double prefill = sums["prefill-gemm-compute"] +
                     sums["prefill-gemm-memory"] +
                     sums["prefill-other"] + sums["prefill-comm"];
    double decode = sums["decode-gemm-compute"] +
                    sums["decode-gemm-memory"] + sums["decode-other"] +
                    sums["decode-comm"];
    expectNearRel(rep.prefill.time, prefill, 1e-9);
    expectNearRel(rep.decode.time, decode, 1e-9);
    expectNearRel(rep.totalLatency, prefill + decode, 1e-9);

    EXPECT_EQ(session.counter("infer/decode-tokens"), 8.0);
}

TEST(Trace, ChromeJsonParsesAndIsMonotonic)
{
    TraceSession session = tracedTraining();
    JsonValue root = JsonValue::parse(chromeTraceJson(session).dump());
    ASSERT_TRUE(root.isObject());
    ASSERT_TRUE(root.has("traceEvents"));
    const JsonValue &events = root.at("traceEvents");
    ASSERT_GT(events.size(), 0u);

    // Per-lane span streams must be monotonic: every complete event
    // has a non-negative start and duration, and consecutive events
    // on one tid never overlap (virtual lanes are sequential).
    std::map<long long, double> lane_end;
    size_t complete = 0;
    for (const JsonValue &e : events.asArray()) {
        std::string ph = e.at("ph").asString();
        ASSERT_TRUE(ph == "X" || ph == "M" || ph == "C");
        if (ph != "X")
            continue;
        ++complete;
        double ts = e.at("ts").asNumber();
        double dur = e.at("dur").asNumber();
        long long tid = e.getInt("tid", 0);
        EXPECT_GE(ts, 0.0);
        EXPECT_GE(dur, 0.0);
        EXPECT_GE(ts, lane_end[tid] - 1e-6) << "overlap on tid " << tid;
        lane_end[tid] = ts + dur;
    }
    EXPECT_EQ(complete, session.spans().size());
}

TEST(Trace, CountersResetBetweenSessions)
{
    TraceSession session;
    session.counterAdd("dse/evaluations");
    session.counterAdd("dse/evaluations");
    session.counterSet("dse/best-objective", 1.5);
    session.emit(session.lane("l"), "x", "forward", 1.0);
    EXPECT_EQ(session.counter("dse/evaluations"), 2.0);
    EXPECT_EQ(session.counterSamples().size(), 3u);

    session.reset();
    EXPECT_EQ(session.counter("dse/evaluations"), 0.0);
    EXPECT_TRUE(session.counters().empty());
    EXPECT_TRUE(session.counterSamples().empty());
    EXPECT_TRUE(session.spans().empty());
    EXPECT_EQ(session.makespan(), 0.0);

    // Lanes survive a reset but their cursors rewind to zero.
    session.emit(session.lane("l"), "y", "forward", 2.0);
    EXPECT_DOUBLE_EQ(session.spans().front().start, 0.0);
}

TEST(Trace, DseCountersAndRoundsSurface)
{
    TechConfig tech;
    tech.node = logicNode("N5");
    tech.dram = dram::hbm3();

    TraceSession session;
    DseOptions opts;
    opts.gridSteps = 3;
    opts.refineRounds = 4;
    opts.trace = &session;
    int rounds_seen = 0;
    int last_evals = 0;
    opts.onRound = [&](const DseRound &r) {
        if (rounds_seen == 0) {
            EXPECT_EQ(r.round, -1);  // grid phase reports first
        }
        ++rounds_seen;
        EXPECT_GE(r.evaluations, last_evals);
        last_evals = r.evaluations;
        EXPECT_GT(r.bestObjective, 0.0);
    };

    DseResult r = optimizeAllocation(
        tech,
        [](const Device &dev) {
            return 1e15 / dev.matrixFlops(Precision::FP16);
        },
        opts);

    EXPECT_GE(rounds_seen, 2);
    EXPECT_EQ(session.counter("dse/evaluations"),
              double(r.evaluations));
    EXPECT_DOUBLE_EQ(session.counter("dse/best-objective"),
                     r.objective);
}

TEST(Trace, PlannerCountersSurface)
{
    TraceSession session;
    TrainingPlannerOptions opts;
    opts.recomputeChoices = {Recompute::Selective};
    opts.trace = &session;
    planTraining(models::gpt7b(), presets::dgxA100(1), 32, opts);

    double enumerated = session.counter("planner/mappings-enumerated");
    double illegal = session.counter("planner/pruned-illegal");
    double memory = session.counter("planner/pruned-memory");
    double evaluated = session.counter("planner/plans-evaluated");
    EXPECT_GT(enumerated, 0.0);
    EXPECT_GT(evaluated, 0.0);
    EXPECT_LE(illegal, enumerated);
    EXPECT_LE(evaluated + memory, enumerated + memory + evaluated);

    TraceSession serving_session;
    ServingPlannerOptions sopts;
    sopts.maxBatch = 8;
    sopts.trace = &serving_session;
    planServing(models::llama2_13b(), presets::dgxA100(1), sopts);
    EXPECT_GT(serving_session.counter("planner/serving-points"), 0.0);
}

TEST(Trace, BoundNamesAreUnified)
{
    Device dev = presets::a100_80gb();
    std::set<std::string> canonical = {"compute"};
    for (const MemoryLevel &lvl : dev.mem)
        canonical.insert(lvl.name);

    EXPECT_EQ(boundLevelName(dev, -1), "compute");
    EXPECT_EQ(boundLevelName(dev, 0), dev.mem[0].name);

    TransformerConfig model = models::llama2_13b();
    InferenceOptions opts;
    opts.promptLength = 256;
    for (const GemmBoundRow &row :
         prefillGemmTable(dev, model, opts)) {
        EXPECT_TRUE(canonical.count(row.boundType))
            << row.name << ": " << row.boundType;
    }

    LayerGraphParams gp;
    gp.batch = 1;
    gp.seq = 256;
    for (const RooflinePoint &pt :
         rooflinePoints(dev, layerForwardOps(model, gp))) {
        EXPECT_TRUE(canonical.count(pt.bound))
            << pt.name << ": " << pt.bound;
    }

    // Kernel spans carry the same canonical names.
    TraceSession session = tracedTraining();
    for (const TraceSpan &s : session.spans()) {
        if (s.isKernel()) {
            EXPECT_TRUE(canonical.count(s.bound))
                << s.name << ": " << s.bound;
        }
    }
}

TEST(Trace, ExportersProduceOutput)
{
    TraceSession session = tracedTraining();
    std::string csv = kernelCsv(session);
    EXPECT_NE(csv.find("lane,name,category"), std::string::npos);
    EXPECT_GT(csv.size(), 200u);

    std::string text = summaryText(session);
    EXPECT_NE(text.find("category"), std::string::npos);
    EXPECT_NE(text.find("forward"), std::string::npos);
    EXPECT_NE(text.find("counter"), std::string::npos);
}

TEST(Trace, KernelCsvEscapesRfc4180)
{
    TraceSession session;
    int lane = session.lane("kernels/fwd");

    TraceSpan comma;
    comma.name = "gemm, fused";
    comma.category = "kernel";
    comma.duration = 1e-3;
    comma.bound = "compute";
    session.emit(lane, comma);

    TraceSpan quoted;
    quoted.name = "attn \"flash\" path";
    quoted.category = "kernel";
    quoted.duration = 2e-3;
    quoted.bound = "DRAM";
    session.emit(lane, quoted);

    TraceSpan newline;
    newline.name = "multi\nline";
    newline.category = "kernel";
    newline.duration = 3e-3;
    newline.bound = "L2";
    session.emit(lane, newline);

    std::string csv = kernelCsv(session);
    // A cell containing a comma is wrapped in quotes...
    EXPECT_NE(csv.find("\"gemm, fused\""), std::string::npos);
    // ...embedded quotes are doubled per RFC 4180...
    EXPECT_NE(csv.find("\"attn \"\"flash\"\" path\""),
              std::string::npos);
    // ...and embedded newlines are quoted rather than row-splitting.
    EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);

    // Unquoted cells stay unquoted: the header has no escaping.
    EXPECT_NE(csv.find("lane,name,category"), std::string::npos);
}

TEST(Trace, ChromeJsonNamesProcessesAndThreads)
{
    TraceSession session = tracedTraining();
    JsonValue doc = chromeTraceJson(session);
    const std::vector<JsonValue> &events =
        doc.at("traceEvents").asArray();

    bool timeline_named = false;
    bool counters_named = false;
    int thread_names = 0;
    for (const JsonValue &e : events) {
        if (e.getString("ph", "") != "M")
            continue;
        if (e.getString("name", "") == "process_name") {
            const std::string label =
                e.at("args").getString("name", "");
            if (e.getInt("pid", -1) == 0)
                timeline_named = label == "optimus model timeline";
            if (e.getInt("pid", -1) == 1)
                counters_named = label == "optimus counters";
        }
        if (e.getString("name", "") == "thread_name")
            ++thread_names;
    }
    EXPECT_TRUE(timeline_named);
    EXPECT_TRUE(counters_named);
    EXPECT_EQ(thread_names,
              static_cast<int>(session.lanes().size()));
}

} // namespace
} // namespace optimus
