/**
 * @file
 * Unit tests for the end-to-end training model: breakdown accounting,
 * physical monotonicities, recomputation and parallelism behaviour.
 */

#include <gtest/gtest.h>

#include "hw/presets.h"
#include "training/trainer.h"
#include "util/error.h"
#include "workload/presets.h"

namespace optimus {
namespace {

TrainingReport
run175b(const System &sys, TrainingOptions opts = {},
        PipelineSchedule sched = PipelineSchedule::OneFOneB,
        long long batch = 64)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;
    par.schedule = sched;
    return evaluateTraining(models::gpt175b(), sys, par, batch, opts);
}

TEST(Training, BreakdownSumsToTotal)
{
    TrainingReport rep = run175b(presets::dgxA100(8));
    const TrainingBreakdown &t = rep.time;
    EXPECT_NEAR(rep.timePerBatch,
                t.compute() + t.communication() + t.other(), 1e-9);
    EXPECT_GT(t.forward, 0.0);
    EXPECT_GT(t.backward, t.forward);  // backward is ~2x forward
    EXPECT_GT(t.tpComm, 0.0);
    EXPECT_GT(t.bubble, 0.0);
    EXPECT_GT(t.optimizer, 0.0);
}

TEST(Training, MfuIsPlausible)
{
    TrainingOptions opts;
    opts.recompute = Recompute::None;
    TrainingReport rep = run175b(presets::dgxA100(8), opts);
    // Megatron-class runs report 40-60% MFU on A100.
    EXPECT_GT(rep.mfu, 0.30);
    EXPECT_LT(rep.mfu, 0.70);
}

TEST(Training, RecomputationCostsForwardTime)
{
    TrainingOptions none;
    none.recompute = Recompute::None;
    TrainingOptions sel;
    sel.recompute = Recompute::Selective;
    TrainingOptions full;
    full.recompute = Recompute::Full;

    System sys = presets::dgxA100(8);
    double t_none = run175b(sys, none).timePerBatch;
    double t_sel = run175b(sys, sel).timePerBatch;
    double t_full = run175b(sys, full).timePerBatch;
    EXPECT_LT(t_none, t_sel);
    EXPECT_LT(t_sel, t_full);
    // Full recompute re-runs the forward pass: recompute time equals
    // forward time.
    TrainingReport rep = run175b(sys, full);
    EXPECT_NEAR(rep.time.recompute, rep.time.forward, 1e-9);
}

TEST(Training, FasterDeviceTrainsFaster)
{
    double a100 = run175b(presets::dgxA100(8)).timePerBatch;
    double h100 = run175b(presets::dgxH100(8)).timePerBatch;
    EXPECT_LT(h100, a100);
}

TEST(Training, Fp8BeatsFp16OnH100)
{
    TrainingOptions fp16;
    TrainingOptions fp8;
    fp8.precision = Precision::FP8;
    fp8.memory.activationBytes = 1.0;
    double t16 = run175b(presets::dgxH100(8), fp16).timePerBatch;
    double t8 = run175b(presets::dgxH100(8), fp8).timePerBatch;
    EXPECT_LT(t8, t16);
    EXPECT_GT(t8, t16 / 2.2);  // bounded by the 2x compute ratio
}

TEST(Training, NvsBeatsInfiniBandAtScale)
{
    ParallelConfig par;
    par.dataParallel = 16;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;
    double ib = evaluateTraining(models::gpt175b(),
                                 presets::dgxH100(128), par, 1024, {})
                    .timePerBatch;
    double nvs =
        evaluateTraining(models::gpt175b(), presets::dgxH100Nvs(128),
                         par, 1024, {})
            .timePerBatch;
    EXPECT_LT(nvs, ib);
}

TEST(Training, MoreMicrobatchesShrinkBubbleShare)
{
    System sys = presets::dgxA100(8);
    TrainingReport small = run175b(sys, {},
                                   PipelineSchedule::OneFOneB, 16);
    TrainingReport large = run175b(sys, {},
                                   PipelineSchedule::OneFOneB, 256);
    EXPECT_GT(small.bubbleFraction, large.bubbleFraction);
    EXPECT_DOUBLE_EQ(small.bubbleFraction, 7.0 / 16.0);
    EXPECT_DOUBLE_EQ(large.bubbleFraction, 7.0 / 256.0);
}

TEST(Training, InterleavingReducesTime)
{
    System sys = presets::dgxA100(8);
    ParallelConfig f1b;
    f1b.tensorParallel = 8;
    f1b.pipelineParallel = 8;
    f1b.sequenceParallel = true;

    ParallelConfig il = f1b;
    il.schedule = PipelineSchedule::Interleaved1F1B;
    il.interleavedStages = 4;

    double a = evaluateTraining(models::gpt175b(), sys, f1b, 16, {})
                   .timePerBatch;
    double b = evaluateTraining(models::gpt175b(), sys, il, 16, {})
                   .timePerBatch;
    EXPECT_LT(b, a);
}

TEST(Training, DataParallelismScalesThroughput)
{
    // Same per-pipeline batch, 4x devices via DP -> ~4x throughput.
    ParallelConfig one;
    one.tensorParallel = 8;
    one.pipelineParallel = 8;
    TrainingReport base = evaluateTraining(
        models::gpt175b(), presets::dgxA100(8), one, 64, {});

    ParallelConfig four = one;
    four.dataParallel = 4;
    TrainingReport scaled = evaluateTraining(
        models::gpt175b(), presets::dgxA100(32), four, 256, {});

    double thr1 = 64.0 / base.timePerBatch;
    double thr4 = 256.0 / scaled.timePerBatch;
    EXPECT_GT(thr4, 3.2 * thr1);
    EXPECT_LT(thr4, 4.05 * thr1);
    EXPECT_GT(scaled.time.dpComm, 0.0);
}

TEST(Training, TpOverlapHidesCollectives)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    par.sequenceParallel = true;
    System sys = presets::dgxA100(8);
    TrainingOptions overlap;
    overlap.tpOverlapFraction = 0.5;
    double exposed =
        evaluateTraining(models::gpt175b(), sys, par, 64, {})
            .time.tpComm;
    double hidden =
        evaluateTraining(models::gpt175b(), sys, par, 64, overlap)
            .time.tpComm;
    EXPECT_NEAR(hidden, exposed * 0.5, exposed * 1e-9);
}

TEST(Training, DpOverlapHidesGradientComm)
{
    ParallelConfig par;
    par.dataParallel = 4;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    TrainingOptions overlap;
    overlap.dpOverlapFraction = 0.9;
    System sys = presets::dgxA100(32);
    double exposed =
        evaluateTraining(models::gpt175b(), sys, par, 256, {})
            .time.dpComm;
    double hidden =
        evaluateTraining(models::gpt175b(), sys, par, 256, overlap)
            .time.dpComm;
    EXPECT_NEAR(hidden, exposed * 0.1, exposed * 1e-6);
}

TEST(Training, SequenceParallelismIsNotSlower)
{
    // SP reshards norms/dropouts and keeps communication volume the
    // same; it should not slow training down.
    ParallelConfig no_sp;
    no_sp.tensorParallel = 8;
    no_sp.pipelineParallel = 8;
    ParallelConfig sp = no_sp;
    sp.sequenceParallel = true;
    System sys = presets::dgxA100(8);
    double a =
        evaluateTraining(models::gpt175b(), sys, no_sp, 64, {})
            .timePerBatch;
    double b = evaluateTraining(models::gpt175b(), sys, sp, 64, {})
                   .timePerBatch;
    EXPECT_LE(b, a * 1.001);
}

TEST(Training, RejectsInvalidSetups)
{
    ParallelConfig par;
    par.tensorParallel = 8;
    par.pipelineParallel = 8;
    System sys = presets::dgxA100(8);
    TrainingOptions opts;
    opts.seqLength = 0;
    EXPECT_THROW(
        evaluateTraining(models::gpt175b(), sys, par, 64, opts),
        ConfigError);
    par.microbatchSize = 2;
    EXPECT_THROW(evaluateTraining(models::gpt175b(), sys, par, 63, {}),
                 ConfigError);
}

TEST(Training, ReportExposesPerLayerEstimates)
{
    TrainingReport rep = run175b(presets::dgxA100(8));
    EXPECT_GT(rep.layerForward.flops, 0.0);
    EXPECT_GT(rep.layerBackward.flops, rep.layerForward.flops * 1.9);
    EXPECT_EQ(rep.layerForward.bytesPerLevel.size(), 3u);
    EXPECT_EQ(rep.microbatches, 64);
}

// Property sweep: training time scales roughly linearly with batch
// (fixed mapping), sublinearly near small batch due to bubbles.
class BatchScalingTest : public ::testing::TestWithParam<long long>
{};

TEST_P(BatchScalingTest, TimeGrowsWithBatch)
{
    long long batch = GetParam();
    System sys = presets::dgxA100(8);
    double t1 = run175b(sys, {}, PipelineSchedule::OneFOneB, batch)
                    .timePerBatch;
    double t2 = run175b(sys, {}, PipelineSchedule::OneFOneB,
                        batch * 2)
                    .timePerBatch;
    EXPECT_GT(t2, t1 * 1.5);
    EXPECT_LT(t2, t1 * 2.1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchScalingTest,
                         ::testing::Values(16LL, 32LL, 64LL, 128LL));

} // namespace
} // namespace optimus
