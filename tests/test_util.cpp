/**
 * @file
 * Unit tests for the util module: units, error helpers, tables.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/table.h"
#include "util/units.h"

namespace optimus {
namespace {

TEST(Units, ConstantsAreConsistent)
{
    EXPECT_DOUBLE_EQ(KB * 1000.0, MB);
    EXPECT_DOUBLE_EQ(MB * 1000.0, GB);
    EXPECT_DOUBLE_EQ(GB * 1000.0, TB);
    EXPECT_DOUBLE_EQ(KiB * 1024.0, MiB);
    EXPECT_DOUBLE_EQ(MiB * 1024.0, GiB);
    EXPECT_DOUBLE_EQ(TFLOPS, 1e12);
    EXPECT_DOUBLE_EQ(GBps, 1e9);
}

TEST(Units, FormatBytesPicksSuffix)
{
    EXPECT_EQ(formatBytes(512.0), "512.00 B");
    EXPECT_EQ(formatBytes(80 * GiB), "80.00 GiB");
    EXPECT_EQ(formatBytes(1.5 * MiB), "1.50 MiB");
}

TEST(Units, FormatTimeAdaptsScale)
{
    EXPECT_EQ(formatTime(1.5), "1.500 s");
    EXPECT_EQ(formatTime(2.5e-3), "2.500 ms");
    EXPECT_EQ(formatTime(41.3e-6), "41.300 us");
    EXPECT_EQ(formatTime(12e-9), "12.000 ns");
}

TEST(Units, FormatRates)
{
    EXPECT_EQ(formatFlops(312 * TFLOPS), "312.00 TFLOPS");
    EXPECT_EQ(formatBandwidth(1.9 * TBps), "1.90 TB/s");
}

TEST(Units, RelativeErrorPct)
{
    EXPECT_DOUBLE_EQ(relativeErrorPct(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(relativeErrorPct(90.0, 100.0), 10.0);
    // Zero reference: exact when the prediction is also zero,
    // undefined (NaN) otherwise — a silent 0% would mask the miss.
    EXPECT_DOUBLE_EQ(relativeErrorPct(0.0, 0.0), 0.0);
    EXPECT_TRUE(std::isnan(relativeErrorPct(5.0, 0.0)));
}

TEST(Units, FormatErrorPct)
{
    EXPECT_EQ(formatErrorPct(12.34), "12.3");
    EXPECT_EQ(formatErrorPct(0.0), "0.0");
    EXPECT_EQ(formatErrorPct(relativeErrorPct(5.0, 0.0)), "n/a");
}

TEST(Units, BitRateHelpers)
{
    // 400G InfiniBand NDR: 400 Gb/s = 50 GB/s.
    EXPECT_DOUBLE_EQ(400 * Gbps, 50 * GBps);
    EXPECT_DOUBLE_EQ(Gbps * 8.0, GB);
    EXPECT_DOUBLE_EQ(Mbps * 8.0, MB);
    EXPECT_DOUBLE_EQ(Tbps * 8.0, TB);
    EXPECT_DOUBLE_EQ(1000.0 * Mbps, Gbps);
    EXPECT_DOUBLE_EQ(1000.0 * Gbps, Tbps);
}

TEST(Error, CheckConfigThrowsWithMessage)
{
    EXPECT_NO_THROW(checkConfig(true, "fine"));
    try {
        checkConfig(false, "bad thing");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("bad thing"),
                  std::string::npos);
    }
}

TEST(Error, CheckPositive)
{
    EXPECT_NO_THROW(checkPositive(1.0, "x"));
    EXPECT_THROW(checkPositive(0.0, "x"), ConfigError);
    EXPECT_THROW(checkPositive(-2.0, "x"), ConfigError);
    EXPECT_THROW(checkPositive(0LL, "n"), ConfigError);
    EXPECT_NO_THROW(checkPositive(3LL, "n"));
}

TEST(Table, RowBuilderAndAccess)
{
    Table t({"a", "b", "c"});
    t.beginRow().cell("x").cell(3.14159, 2).cell(7LL);
    t.endRow();
    ASSERT_EQ(t.rowCount(), 1u);
    EXPECT_EQ(t.at(0, 0), "x");
    EXPECT_EQ(t.at(0, 1), "3.14");
    EXPECT_EQ(t.at(0, 2), "7");
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), ConfigError);
    EXPECT_THROW(t.at(0, 0), ConfigError);
}

TEST(Table, PrintAlignsColumns)
{
    Table t({"name", "v"});
    t.addRow({"long-name", "1"});
    t.addRow({"x", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Header separator line exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvQuotesCommas)
{
    Table t({"name", "v"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, BuilderMisuseThrows)
{
    Table t({"a"});
    t.beginRow();
    EXPECT_THROW(t.beginRow(), ConfigError);
    t.cell("v");
    t.endRow();
    EXPECT_THROW(t.endRow(), ConfigError);
    EXPECT_THROW(t.cell("loose"), ConfigError);
}

} // namespace
} // namespace optimus
