/**
 * @file
 * Integration tests pinning the paper reproduction: the validation
 * tables (Tables 1 and 2) must stay within the paper's own error
 * envelope, and the case-study figures must keep their shapes.
 * These tests guard the calibration (DESIGN.md, "Calibration knobs").
 */

#include <gtest/gtest.h>

#include "core/optimus.h"

namespace optimus {
namespace {

// ---- Table 1: training validation -----------------------------------

struct TrainRow
{
    TransformerConfig model;
    int gpus;
    long long batch, dp, tp, pp;
    bool sp;
    Recompute recompute;
    double t_ref;
};

std::vector<TrainRow>
table1()
{
    return {
        {models::gpt22b(), 8, 4, 1, 8, 1, false, Recompute::Full, 1.4},
        {models::gpt175b(), 64, 64, 1, 8, 8, false, Recompute::Full,
         18.1},
        {models::gpt530b(), 280, 280, 1, 8, 35, false, Recompute::Full,
         49.1},
        {models::gpt1008b(), 512, 512, 1, 8, 64, false, Recompute::Full,
         94.4},
        {models::gpt22b(), 8, 4, 1, 8, 1, true, Recompute::Selective,
         1.1},
        {models::gpt175b(), 64, 64, 1, 8, 8, true, Recompute::Selective,
         13.8},
        {models::gpt530b(), 280, 280, 1, 8, 35, true,
         Recompute::Selective, 37.8},
        {models::gpt1008b(), 512, 512, 1, 8, 64, true,
         Recompute::Selective, 71.5},
        {models::gpt310b(), 1920, 2160, 15, 8, 16, false,
         Recompute::Full, 37.6},
        {models::gpt530b(), 2520, 2520, 9, 8, 35, false,
         Recompute::Full, 54.2},
        {models::gpt1008b(), 3072, 3072, 6, 8, 64, false,
         Recompute::Full, 102.4},
    };
}

double
predictTraining(const TrainRow &row)
{
    System sys = presets::dgxA100(row.gpus / 8);
    ParallelConfig par;
    par.dataParallel = row.dp;
    par.tensorParallel = row.tp;
    par.pipelineParallel = row.pp;
    par.sequenceParallel = row.sp;
    TrainingOptions opts;
    opts.recompute = row.recompute;
    return evaluateTraining(row.model, sys, par, row.batch, opts)
        .timePerBatch;
}

TEST(Table1, EveryRowWithinPaperEnvelope)
{
    // The paper reports relative errors "mostly well below 10%";
    // allow 12% per row.
    for (const TrainRow &row : table1()) {
        double pred = predictTraining(row);
        EXPECT_LT(relativeErrorPct(pred, row.t_ref), 12.0)
            << row.model.name << " " << recomputeName(row.recompute);
    }
}

TEST(Table1, MeanErrorBelowSixPercent)
{
    double sum = 0.0;
    for (const TrainRow &row : table1())
        sum += relativeErrorPct(predictTraining(row), row.t_ref);
    EXPECT_LT(sum / table1().size(), 6.0);
}

TEST(Table1, SelectiveIsFasterThanFull)
{
    // Paper's SP+selective rows beat the TP/PP-only full rows.
    auto rows = table1();
    EXPECT_LT(predictTraining(rows[5]), predictTraining(rows[1]));
    EXPECT_LT(predictTraining(rows[7]), predictTraining(rows[3]));
}

// ---- Table 2: inference validation -----------------------------------

struct InferRow
{
    TransformerConfig model;
    int tp;
    double a100_ms, h100_ms;
};

std::vector<InferRow>
table2()
{
    return {
        {models::llama2_70b(), 8, 4735, 3202},
        {models::llama2_70b(), 4, 6403, 4116},
        {models::llama2_70b(), 2, 10500, 6267},
        {models::llama2_13b(), 8, 1693, 1201},
        {models::llama2_13b(), 4, 1894, 1431},
        {models::llama2_13b(), 2, 2499, 1717},
        {models::llama2_13b(), 1, 3884, 2396},
        {models::llama2_7b(), 8, 1187, 828},
        {models::llama2_7b(), 4, 1280, 924},
        {models::llama2_7b(), 2, 1544, 1143},
        {models::llama2_7b(), 1, 2190, 1440},
    };
}

double
predictInference(const TransformerConfig &model, const System &sys,
                 int tp)
{
    InferenceOptions opts;
    opts.tensorParallel = tp;
    return evaluateInference(model, sys, opts).totalLatency * 1e3;
}

TEST(Table2, EveryRowWithinPaperEnvelope)
{
    // The paper matches NVIDIA's numbers within 13%; allow 15%.
    System a100 = presets::dgxA100(1);
    System h100 = presets::dgxH100(1);
    for (const InferRow &row : table2()) {
        EXPECT_LT(relativeErrorPct(
                      predictInference(row.model, a100, row.tp),
                      row.a100_ms),
                  15.0)
            << row.model.name << " tp" << row.tp << " A100";
        EXPECT_LT(relativeErrorPct(
                      predictInference(row.model, h100, row.tp),
                      row.h100_ms),
                  15.0)
            << row.model.name << " tp" << row.tp << " H100";
    }
}

TEST(Table2, MeanErrorBelowEightPercent)
{
    System a100 = presets::dgxA100(1);
    System h100 = presets::dgxH100(1);
    double sum = 0.0;
    for (const InferRow &row : table2()) {
        sum += relativeErrorPct(
            predictInference(row.model, a100, row.tp), row.a100_ms);
        sum += relativeErrorPct(
            predictInference(row.model, h100, row.tp), row.h100_ms);
    }
    EXPECT_LT(sum / (2.0 * table2().size()), 8.0);
}

TEST(Table2, InferenceScalesPoorlyWithGpus)
{
    // Paper Sec. 4.3: "inference scales poorly with the number of
    // GPUs": 8 GPUs give well under 4x over 1 GPU.
    System a100 = presets::dgxA100(1);
    double t1 = predictInference(models::llama2_13b(), a100, 1);
    double t8 = predictInference(models::llama2_13b(), a100, 8);
    EXPECT_GT(t1 / t8, 1.5);
    EXPECT_LT(t1 / t8, 4.0);
}

// ---- Figure shapes ----------------------------------------------------

TEST(Fig5Shape, GenerationalSpeedups)
{
    auto throughput = [](const System &sys, Precision prec,
                         long long batch) {
        ParallelConfig par;
        par.dataParallel = 128;
        par.tensorParallel = 8;
        par.pipelineParallel = 8;
        par.sequenceParallel = true;
        TrainingOptions opts;
        opts.precision = prec;
        opts.recompute = Recompute::Selective;
        opts.memory.activationBytes =
            std::max(1.0, precisionBytes(prec));
        TrainingReport rep = evaluateTraining(
            models::gpt175b(), sys, par, batch, opts);
        return double(batch) / rep.timePerBatch;
    };

    double a100 = throughput(presets::dgxA100(1024), Precision::FP16,
                             1024);
    double h100 = throughput(presets::dgxH100(1024), Precision::FP8,
                             1024);
    double b200nvs = throughput(presets::dgxB200Nvs(1024),
                                Precision::FP4, 1024);
    double b200l = throughput(presets::dgxB200Nvs(1024),
                              Precision::FP4, 4096);

    // Paper: H100-NDR ~4x, B200-NVS ~14x, overall trend ~35x for the
    // large-batch point. Generous envelopes on the shape.
    EXPECT_GT(h100 / a100, 2.5);
    EXPECT_LT(h100 / a100, 6.5);
    EXPECT_GT(b200nvs / a100, 9.0);
    EXPECT_LT(b200nvs / a100, 22.0);
    EXPECT_GT(b200l / a100, 15.0);
}

TEST(Fig6Shape, NodeScalingSaturates)
{
    auto time_at = [](const char *node, const DramTech &d) {
        TechConfig tech;
        tech.node = logicNode(node);
        tech.dram = d;
        DseOptions dse;
        dse.gridSteps = 3;
        dse.refineRounds = 8;
        return optimizeAllocation(
                   tech,
                   [&](const Device &dev) {
                       System sys = makeSystem(dev, 8, 128,
                                               presets::nvlink4(),
                                               nettech::ndrX8());
                       ParallelConfig par;
                       par.dataParallel = 64;
                       par.tensorParallel = 4;
                       par.pipelineParallel = 4;
                       par.sequenceParallel = true;
                       par.schedule =
                           PipelineSchedule::Interleaved1F1B;
                       par.interleavedStages = 8;
                       TrainingOptions opts;
                       opts.recompute = Recompute::Selective;
                       return evaluateTraining(models::gpt7b(), sys,
                                               par, 512, opts)
                           .timePerBatch;
                   },
                   dse)
            .objective;
    };

    DramTech hbm2 = dram::hbm2();
    double n12 = time_at("N12", hbm2);
    double n5 = time_at("N5", hbm2);
    double n2 = time_at("N2", hbm2);
    double n1 = time_at("N1", hbm2);

    // Steep early gains, saturation at advanced nodes.
    EXPECT_GT(n12 / n5, 1.5);
    EXPECT_LT(n2 / n1, 1.05);

    // Memory technology helps where the node is advanced.
    double n1_hbm2e = time_at("N1", dram::hbm2e());
    EXPECT_LT(n1_hbm2e, n1 * 0.95);
}

TEST(Fig9Shape, DramScalingSaturatesAtL2)
{
    Device a100 = presets::a100_80gb();
    auto latency = [&](const DramTech &d) {
        Device dev = presets::withDram(a100, d.name, d.bandwidth,
                                       d.capacity);
        System sys = makeSystem(dev, 8, 1, presets::nvlink3(),
                                presets::ndrInfiniBand());
        InferenceOptions opts;
        opts.tensorParallel = 2;
        return evaluateInference(models::llama2_13b(), sys, opts)
            .totalLatency;
    };

    double gddr6 = latency(dram::gddr6());
    double hbm2e = latency(dram::hbm2e());
    double hbm3e = latency(dram::hbm3e());
    double hbmx = latency(dram::hbmx());

    // Early scaling is near-linear in bandwidth (3.2x bw -> >2x
    // gain); beyond HBM3E it flattens (L2-bound).
    EXPECT_GT(gddr6 / hbm2e, 2.0);
    EXPECT_LT(hbm3e / hbmx, 1.25);
}

TEST(Fig7Shape, MemoryBoundednessGrowsWithNodeScaling)
{
    // Evaluate one GPT-7B layer's GEMMs on DSE devices at N7 vs N1
    // with HBM2: the DRAM-bound share of GEMM time must grow.
    auto dram_share = [](const char *node) {
        TechConfig tech;
        tech.node = logicNode(node);
        tech.dram = dram::hbm2();
        Device dev = buildDevice(tech, {});
        LayerGraphParams gp;
        gp.batch = 1;
        gp.seq = 2048;
        gp.tensorParallel = 4;
        gp.sequenceParallel = true;
        double dram_t = 0.0, total = 0.0;
        for (const Op &op : layerForwardOps(models::gpt7b(), gp)) {
            if (op.kind != OpKind::Gemm)
                continue;
            KernelEstimate est = evaluateOp(dev, op);
            total += est.time;
            if (est.dramBound())
                dram_t += est.time;
        }
        return dram_t / total;
    };
    EXPECT_GT(dram_share("N1"), dram_share("N7"));
}

} // namespace
} // namespace optimus
