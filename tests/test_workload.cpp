/**
 * @file
 * Unit tests for the workload module: model presets, parameter
 * counts, layer op graphs, and activation accounting.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "workload/activation.h"
#include "workload/graph.h"
#include "workload/presets.h"

namespace optimus {
namespace {

double
sumFlops(const std::vector<Op> &ops)
{
    double total = 0.0;
    for (const Op &op : ops)
        total += opFlops(op);
    return total;
}

TEST(ModelConfig, ParameterCountsMatchNamedSizes)
{
    struct Case
    {
        TransformerConfig cfg;
        double expected;
    };
    const Case cases[] = {
        {models::gpt7b(), 7e9},       {models::gpt22b(), 22e9},
        {models::gpt175b(), 175e9},   {models::gpt310b(), 310e9},
        {models::gpt530b(), 530e9},   {models::gpt1008b(), 1008e9},
        {models::llama2_7b(), 6.74e9}, {models::llama2_13b(), 13.0e9},
        {models::llama2_70b(), 69e9},
        {models::llama3_8b(), 8.0e9},
        {models::llama3_70b(), 70.6e9},
        {models::llama3_405b(), 405e9},
    };
    for (const Case &c : cases) {
        double n = c.cfg.parameterCount();
        EXPECT_NEAR(n, c.expected, c.expected * 0.10)
            << c.cfg.name << " has " << n << " params";
    }
}

TEST(ModelConfig, HeadDimAndValidation)
{
    TransformerConfig cfg = models::gpt175b();
    EXPECT_EQ(cfg.headDim(), 128);

    cfg.numHeads = 100;  // does not divide hidden 12288
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = models::llama2_70b();
    EXPECT_EQ(cfg.numKvHeads, 8);
    EXPECT_NO_THROW(cfg.validate());
    cfg.numKvHeads = 7;  // heads not a multiple
    EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(ModelConfig, GqaShrinksLayerParams)
{
    TransformerConfig mha = models::llama2_70b();
    mha.numKvHeads = mha.numHeads;
    EXPECT_LT(models::llama2_70b().layerParameterCount(),
              mha.layerParameterCount());
}

TEST(LayerGraph, ForwardFlopsMatchClosedForm)
{
    // GPT layer forward GEMM FLOPs = 24*T*h^2 + 4*b*s^2*h with f=4h.
    TransformerConfig cfg = models::gpt175b();
    LayerGraphParams p;
    p.batch = 1;
    p.seq = 2048;
    p.tensorParallel = 1;
    double gemm_flops = 0.0;
    for (const Op &op : layerForwardOps(cfg, p))
        if (op.kind == OpKind::Gemm)
            gemm_flops += opFlops(op);

    double T = 2048.0;
    double h = 12288.0;
    double expected = 24.0 * T * h * h + 4.0 * T * 2048.0 * h;
    EXPECT_NEAR(gemm_flops, expected, expected * 1e-9);
}

TEST(LayerGraph, TensorParallelShardsEvenly)
{
    TransformerConfig cfg = models::gpt175b();
    LayerGraphParams p;
    p.batch = 2;
    p.seq = 2048;

    p.tensorParallel = 1;
    double full = sumFlops(layerForwardOps(cfg, p));
    p.tensorParallel = 8;
    double sharded = 0.0;
    for (const Op &op : layerForwardOps(cfg, p))
        if (op.kind == OpKind::Gemm)
            sharded += opFlops(op);

    // GEMM work shards by exactly 8; stream ops (norms, residuals) do
    // not shard without SP.
    double full_gemm = 0.0;
    p.tensorParallel = 1;
    for (const Op &op : layerForwardOps(cfg, p))
        if (op.kind == OpKind::Gemm)
            full_gemm += opFlops(op);
    EXPECT_NEAR(sharded, full_gemm / 8.0, full_gemm * 1e-9);
    EXPECT_GT(full, full_gemm);  // stream ops exist
}

TEST(LayerGraph, SequenceParallelShardsNormRows)
{
    TransformerConfig cfg = models::gpt22b();
    LayerGraphParams p;
    p.batch = 1;
    p.seq = 2048;
    p.tensorParallel = 8;

    auto norm_rows = [&](bool sp) {
        p.sequenceParallel = sp;
        for (const Op &op : layerForwardOps(cfg, p))
            if (op.kind == OpKind::LayerNorm)
                return op.rows;
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(norm_rows(false), 2048.0);
    EXPECT_DOUBLE_EQ(norm_rows(true), 256.0);
}

TEST(LayerGraph, BackwardIsTwiceForwardGemmWork)
{
    TransformerConfig cfg = models::gpt22b();
    LayerGraphParams p;
    p.batch = 1;
    p.seq = 2048;
    p.tensorParallel = 8;

    double fwd = 0.0, bwd = 0.0;
    for (const Op &op : layerForwardOps(cfg, p))
        if (op.kind == OpKind::Gemm)
            fwd += opFlops(op);
    for (const Op &op : layerBackwardOps(cfg, p))
        if (op.kind == OpKind::Gemm)
            bwd += opFlops(op);
    EXPECT_NEAR(bwd, 2.0 * fwd, fwd * 1e-9);
}

TEST(LayerGraph, TrainingIncludesDropout)
{
    TransformerConfig cfg = models::gpt22b();
    LayerGraphParams p;
    p.training = true;
    auto has = [&](const char *name) {
        for (const Op &op : layerForwardOps(cfg, p))
            if (op.name == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("attn-dropout"));
    p.training = false;
    EXPECT_FALSE(has("attn-dropout"));
}

TEST(LayerGraph, SwiGluHasTwoGateUpGemms)
{
    TransformerConfig cfg = models::llama2_13b();
    LayerGraphParams p;
    for (const Op &op : layerForwardOps(cfg, p)) {
        if (op.name == "mlp-gate-up") {
            EXPECT_EQ(op.count, 2);
            return;
        }
    }
    FAIL() << "mlp-gate-up op not found";
}

TEST(LayerGraph, PrefillLaunchesAttentionPerHead)
{
    TransformerConfig cfg = models::llama2_13b();
    LayerGraphParams p;
    p.training = false;
    p.tensorParallel = 1;
    for (const Op &op : layerForwardOps(cfg, p)) {
        if (op.name == "qk^T") {
            EXPECT_EQ(op.launchCount, cfg.numHeads);
        }
    }
    p.training = true;
    for (const Op &op : layerForwardOps(cfg, p)) {
        if (op.name == "qk^T") {
            EXPECT_EQ(op.launchCount, 1);
        }
    }
}

TEST(DecodeGraph, AttendsOverFullContext)
{
    TransformerConfig cfg = models::llama2_13b();
    std::vector<Op> ops = decodeLayerOps(cfg, 1, 300, 1,
                                         Precision::FP16);
    bool found = false;
    for (const Op &op : ops) {
        if (op.name == "qk^T") {
            EXPECT_EQ(op.gemm.m, 1);
            EXPECT_EQ(op.gemm.n, 300);
            EXPECT_EQ(op.gemm.k, cfg.headDim());
            EXPECT_EQ(op.count, cfg.numHeads);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(DecodeGraph, GqaSharesKvCacheReads)
{
    // Grouped-query attention streams each K/V head once per group:
    // the attention GEMMs' DRAM traffic scales with the KV heads, not
    // the query heads (the GQA bandwidth saving at long context).
    TransformerConfig gqa = models::llama2_70b();
    TransformerConfig mha = gqa;
    mha.numKvHeads = mha.numHeads;

    Device dev;
    dev.name = "dram-only";
    dev.matrixThroughput = {{Precision::FP16, 1e15}};
    dev.vectorThroughput = {{Precision::FP32, 1e13}};
    dev.mem = {{"DRAM", 1e12, 1e12, 1.0}};

    auto attn_bytes = [&](const TransformerConfig &cfg) {
        double bytes = 0.0;
        for (const Op &op : decodeLayerOps(cfg, 1, 8192, 1,
                                           Precision::FP16))
            if (op.name == "qk^T" || op.name == "attn-v")
                bytes += evaluateOp(dev, op).bytesPerLevel[0];
        return bytes;
    };
    // 64 query heads vs 8 KV heads: ~8x less cache traffic.
    double ratio = attn_bytes(mha) / attn_bytes(gqa);
    EXPECT_GT(ratio, 5.0);
    EXPECT_LE(ratio, 8.5);
}

TEST(DecodeGraph, GqaShrinksKvAppend)
{
    TransformerConfig gqa = models::llama2_70b();
    TransformerConfig mha = gqa;
    mha.numKvHeads = mha.numHeads;
    auto kv_elems = [](const TransformerConfig &cfg) {
        for (const Op &op : decodeLayerOps(cfg, 1, 100, 1,
                                           Precision::FP16))
            if (op.name == "kv-append")
                return op.elements;
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(kv_elems(gqa), kv_elems(mha) / 8.0);
}

TEST(HeadGraph, LmHeadShape)
{
    TransformerConfig cfg = models::gpt22b();
    std::vector<Op> ops = headOps(cfg, 4096, 8, Precision::FP16);
    bool found = false;
    for (const Op &op : ops) {
        if (op.name == "lm-head") {
            EXPECT_EQ(op.gemm.m, 4096);
            EXPECT_EQ(op.gemm.n, cfg.vocabSize / 8);
            EXPECT_EQ(op.gemm.k, cfg.hiddenSize);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

// ---- Activation accounting ------------------------------------------

TEST(Activation, MatchesKorthikantiClosedForm)
{
    // No parallelism, GPT (f = 4h): total = 34 s b h + 5 a s^2 b.
    TransformerConfig cfg = models::gpt175b();
    ActivationParams p;
    p.microbatch = 2;
    p.seq = 2048;
    ActivationBreakdown br = layerActivations(cfg, p);
    double sbh = 2048.0 * 2.0 * 12288.0;
    double as2b = 96.0 * 2048.0 * 2048.0 * 2.0;
    EXPECT_NEAR(br.total(), 34.0 * sbh + 5.0 * as2b, 1.0);
    EXPECT_NEAR(br.scores, 5.0 * as2b, 1.0);
    EXPECT_NEAR(br.input, 2.0 * sbh, 1.0);
}

TEST(Activation, TensorParallelClosedForm)
{
    // With TP t: s b h (10 + 24/t) + 5 a s^2 b / t.
    TransformerConfig cfg = models::gpt175b();
    ActivationParams p;
    p.microbatch = 1;
    p.seq = 2048;
    p.tensorParallel = 8;
    ActivationBreakdown br = layerActivations(cfg, p);
    double sbh = 2048.0 * 12288.0;
    double as2b = 96.0 * 2048.0 * 2048.0;
    EXPECT_NEAR(br.total(), sbh * (10.0 + 24.0 / 8.0) +
                                5.0 * as2b / 8.0,
                1.0);
}

TEST(Activation, SequenceParallelClosedForm)
{
    // With TP+SP: s b h 34/t + 5 a s^2 b / t.
    TransformerConfig cfg = models::gpt175b();
    ActivationParams p;
    p.microbatch = 1;
    p.seq = 2048;
    p.tensorParallel = 8;
    p.sequenceParallel = true;
    ActivationBreakdown br = layerActivations(cfg, p);
    double sbh = 2048.0 * 12288.0;
    double as2b = 96.0 * 2048.0 * 2048.0;
    EXPECT_NEAR(br.total(), (34.0 * sbh + 5.0 * as2b) / 8.0, 1.0);
}

TEST(Activation, SelectiveDropsExactlyTheScores)
{
    // Eq. 2.
    TransformerConfig cfg = models::gpt22b();
    ActivationParams p;
    ActivationBreakdown br = layerActivations(cfg, p);
    double sel = activationMemory(cfg, p, 10, Recompute::Selective);
    EXPECT_NEAR(sel, 10.0 * (br.total() - br.scores), 1.0);
}

TEST(Activation, FullRecomputeEquationOne)
{
    TransformerConfig cfg = models::gpt22b();
    ActivationParams p;
    ActivationBreakdown br = layerActivations(cfg, p);
    const long long L = 12;

    // Default: checkpoint every layer (N_ckp = L).
    double full = activationMemory(cfg, p, L, Recompute::Full);
    EXPECT_NEAR(full, L * br.input + (br.total() - br.input), 1.0);

    // Explicit N_ckp = 3: Eq. 1 verbatim.
    double ckp3 = activationMemory(cfg, p, L, Recompute::Full, 3);
    EXPECT_NEAR(ckp3,
                3.0 * br.input + (L / 3.0) * (br.total() - br.input),
                1.0);

    EXPECT_THROW(activationMemory(cfg, p, L, Recompute::Full, 20),
                 ConfigError);
}

TEST(Activation, StrategyOrdering)
{
    TransformerConfig cfg = models::gpt175b();
    ActivationParams p;
    p.tensorParallel = 8;
    double none = activationMemory(cfg, p, 12, Recompute::None);
    double sel = activationMemory(cfg, p, 12, Recompute::Selective);
    double full = activationMemory(cfg, p, 12, Recompute::Full);
    EXPECT_GT(none, sel);
    EXPECT_GT(sel, full);
}

TEST(Activation, RecomputeForwardFraction)
{
    TransformerConfig cfg = models::gpt175b();
    ActivationParams p;
    p.tensorParallel = 8;
    EXPECT_DOUBLE_EQ(
        recomputeForwardFraction(cfg, p, Recompute::None), 0.0);
    EXPECT_DOUBLE_EQ(
        recomputeForwardFraction(cfg, p, Recompute::Full), 1.0);
    double sel =
        recomputeForwardFraction(cfg, p, Recompute::Selective);
    // Softmax/dropout region is cheap: a few percent of the layer.
    EXPECT_GT(sel, 0.0);
    EXPECT_LT(sel, 0.10);
}

// Property sweep: activation memory is monotone in batch and seq.
class ActivationMonotoneTest
    : public ::testing::TestWithParam<std::tuple<long long, long long>>
{};

TEST_P(ActivationMonotoneTest, GrowsWithBatchAndSeq)
{
    auto [b, s] = GetParam();
    TransformerConfig cfg = models::gpt22b();
    ActivationParams small;
    small.microbatch = b;
    small.seq = s;
    ActivationParams bigger = small;
    bigger.microbatch = b * 2;
    ActivationParams longer = small;
    longer.seq = s * 2;
    double base = layerActivations(cfg, small).total();
    EXPECT_GT(layerActivations(cfg, bigger).total(), base);
    EXPECT_GT(layerActivations(cfg, longer).total(), base);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ActivationMonotoneTest,
    ::testing::Combine(::testing::Values(1LL, 4LL),
                       ::testing::Values(512LL, 2048LL)));

} // namespace
} // namespace optimus
