/**
 * @file
 * Command-line front end to the performance model.
 *
 * Subcommands:
 *   train    predict training time/memory for a model+system+mapping
 *   infer    predict inference latency
 *   memory   per-device training memory breakdown per recompute mode
 *   lint     static-check a config without evaluating it
 *   presets  list built-in device/system/model presets
 *
 * Inputs come from flags (preset names + mapping knobs) or from a
 * JSON config file (--config FILE) whose members are the objects
 * accepted by config/serialize.h. Add --json to emit the report as
 * JSON instead of text.
 *
 * Examples:
 *   optimus_cli train --model gpt-175b --system dgx-a100 --nodes 8 \
 *       --batch 64 --tp 8 --pp 8 --sp --recompute selective
 *   optimus_cli infer --model llama2-13b --system dgx-a100 --tp 1
 *   optimus_cli memory --model gpt-530b --tp 8 --pp 35 --batch 280
 */

#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/optimus.h"

using namespace optimus;

namespace {

using Args = Flags;

JsonValue
loadConfig(const Args &args)
{
    if (!args.has("config"))
        return JsonValue::object();
    std::ifstream in(args.get("config", ""));
    checkConfig(in.good(),
                "cannot open config file " + args.get("config", ""));
    std::stringstream ss;
    ss << in.rdbuf();
    return JsonValue::parse(ss.str());
}

TransformerConfig
resolveModel(const Args &args, const JsonValue &cfg)
{
    if (cfg.isObject() && cfg.has("model"))
        return config::modelFromJson(cfg.at("model"));
    return config::modelPreset(args.get("model", "gpt-175b"));
}

System
resolveSystem(const Args &args, const JsonValue &cfg)
{
    if (cfg.isObject() && cfg.has("system"))
        return config::systemFromJson(cfg.at("system"));
    return config::systemPreset(
        args.get("system", "dgx-a100"),
        static_cast<int>(args.getInt("nodes", 1)));
}

ParallelConfig
resolveParallel(const Args &args, const JsonValue &cfg)
{
    if (cfg.isObject() && cfg.has("parallel"))
        return config::parallelFromJson(cfg.at("parallel"));
    ParallelConfig par;
    par.dataParallel = args.getInt("dp", 1);
    par.tensorParallel = args.getInt("tp", 1);
    par.pipelineParallel = args.getInt("pp", 1);
    par.sequenceParallel = args.has("sp");
    par.microbatchSize = args.getInt("microbatch", 1);
    par.interleavedStages = args.getInt("interleave", 1);
    if (par.interleavedStages > 1)
        par.schedule = PipelineSchedule::Interleaved1F1B;
    return par;
}

Recompute
resolveRecompute(const Args &args)
{
    std::string name = args.get("recompute", "full");
    if (name == "none")
        return Recompute::None;
    if (name == "selective")
        return Recompute::Selective;
    if (name == "full")
        return Recompute::Full;
    throw ConfigError("unknown --recompute value: " + name);
}

TrainingOptions
resolveTrainingOptions(const Args &args, const JsonValue &cfg)
{
    if (cfg.isObject() && cfg.has("training"))
        return config::trainingOptionsFromJson(cfg.at("training"));
    TrainingOptions opts;
    opts.recompute = resolveRecompute(args);
    opts.seqLength = args.getInt("seq", 2048);
    opts.precision = parsePrecision(args.get("precision", "fp16"));
    opts.flashAttention = args.has("flash-attention");
    opts.memory.flashAttention = opts.flashAttention;
    opts.memory.zeroStage = static_cast<int>(args.getInt("zero", 0));
    return opts;
}

InferenceOptions
resolveInferenceOptions(const Args &args, const JsonValue &cfg)
{
    if (cfg.isObject() && cfg.has("inference"))
        return config::inferenceOptionsFromJson(cfg.at("inference"));
    InferenceOptions opts;
    opts.tensorParallel = args.getInt("tp", 1);
    opts.pipelineParallel = args.getInt("pp", 1);
    opts.batch = args.getInt("batch", 1);
    opts.promptLength = args.getInt("prompt", 200);
    opts.generateLength = args.getInt("generate", 200);
    opts.precision = parsePrecision(args.get("precision", "fp16"));
    opts.flashAttention = args.has("flash-attention");
    return opts;
}

int
cmdTrain(const Args &args)
{
    JsonValue cfg = loadConfig(args);
    TransformerConfig model = resolveModel(args, cfg);
    System sys = resolveSystem(args, cfg);
    ParallelConfig par = resolveParallel(args, cfg);
    // Convenience: fill the data-parallel degree from the system size
    // when the user gave only TP/PP.
    if (!args.has("dp") && !(cfg.isObject() && cfg.has("parallel"))) {
        long long rest = par.tensorParallel * par.pipelineParallel;
        if (sys.totalDevices() % rest == 0)
            par.dataParallel = sys.totalDevices() / rest;
    }
    long long batch = args.getInt("batch", 64);

    TrainingOptions opts = resolveTrainingOptions(args, cfg);

    TrainingReport rep = evaluateTraining(model, sys, par, batch,
                                          opts);

    if (args.has("json")) {
        std::cout << config::toJson(rep).dump(2) << "\n";
        return 0;
    }

    std::cout << model.name << " on " << sys.totalDevices() << "x "
              << sys.device.name << " (" << par.label()
              << ", batch " << batch << ", "
              << recomputeName(opts.recompute) << " recompute)\n\n"
              << "  time/batch : " << formatTime(rep.timePerBatch)
              << "\n"
              << "  throughput : "
              << double(batch) * opts.seqLength / rep.timePerBatch
              << " tokens/s\n"
              << "  MFU        : " << rep.mfu * 100.0 << " %\n"
              << "  compute    : " << formatTime(rep.time.compute())
              << "\n"
              << "  comm       : "
              << formatTime(rep.time.communication()) << "\n"
              << "  other      : " << formatTime(rep.time.other())
              << "\n"
              << "  memory/GPU : " << formatBytes(rep.memory.total())
              << (rep.memory.total() <= sys.device.dram().capacity
                      ? " (fits)"
                      : " (OVERFLOWS device memory)")
              << "\n";
    return 0;
}

int
cmdInfer(const Args &args)
{
    JsonValue cfg = loadConfig(args);
    TransformerConfig model = resolveModel(args, cfg);
    System sys = resolveSystem(args, cfg);

    InferenceOptions opts = resolveInferenceOptions(args, cfg);

    InferenceReport rep = evaluateInference(model, sys, opts);

    if (args.has("json")) {
        std::cout << config::toJson(rep).dump(2) << "\n";
        return 0;
    }

    double tokens = double(opts.batch) * opts.generateLength;
    std::cout << model.name << " on TP" << opts.tensorParallel << " "
              << sys.device.name << " (batch " << opts.batch << ", "
              << opts.promptLength << "+" << opts.generateLength
              << " tokens)\n\n"
              << "  total latency : " << formatTime(rep.totalLatency)
              << "\n"
              << "  prefill       : " << formatTime(rep.prefill.time)
              << "\n"
              << "  decode        : " << formatTime(rep.decode.time)
              << "  (" << rep.decode.time / tokens * 1e3 *
                             double(opts.batch)
              << " ms/token)\n"
              << "  decode comm   : "
              << formatTime(rep.decode.commTime) << "\n"
              << "  throughput    : " << tokens / rep.totalLatency
              << " tokens/s\n"
              << "  KV cache      : " << formatBytes(rep.kvCacheBytes)
              << ", weights " << formatBytes(rep.weightBytes)
              << (rep.fitsDeviceMemory ? " (fits)" : " (OVERFLOWS)")
              << "\n";
    return 0;
}

int
cmdServe(const Args &args)
{
    JsonValue cfg = loadConfig(args);
    TransformerConfig model = resolveModel(args, cfg);
    System sys = resolveSystem(args, cfg);

    ServingOptions opts;
    opts.tensorParallel = args.getInt("tp", 1);
    opts.promptLength = args.getInt("prompt", 512);
    opts.generateLength = args.getInt("generate", 256);
    opts.precision = parsePrecision(args.get("precision", "fp16"));

    Table out({"Batch", "tok/s", "req/s", "ms/token", "TTFT (ms)",
               "fits", "$/Mtok"});
    ServingCostModel cost;
    for (long long b = 1; b <= args.getInt("max-batch", 128);
         b *= 2) {
        ServingPoint pt = evaluateServingPoint(model, sys, opts, b);
        out.beginRow()
            .cell(b)
            .cell(pt.tokensPerSecond, 0)
            .cell(pt.requestsPerSecond, 2)
            .cell(pt.interTokenLatency * 1e3, 2)
            .cell(pt.timeToFirstToken * 1e3, 1)
            .cell(pt.fits ? "yes" : "NO")
            .cell(costPerMillionTokens(sys, opts, pt, cost), 2);
        out.endRow();
    }
    std::cout << model.name << " serving on TP" << opts.tensorParallel
              << " " << sys.device.name << " ("
              << opts.promptLength << "+" << opts.generateLength
              << " tokens)\n\n";
    out.print(std::cout);

    ServingPoint best = maxThroughputPoint(
        model, sys, opts, args.getInt("max-batch", 128));
    std::cout << "\nbest fitting batch: " << best.batch << " ("
              << best.tokensPerSecond << " tok/s)\n";
    return 0;
}

int
cmdSensitivity(const Args &args)
{
    JsonValue cfg = loadConfig(args);
    TransformerConfig model = resolveModel(args, cfg);
    System sys = resolveSystem(args, cfg);

    std::function<double(const System &)> objective;
    std::string label;
    if (args.get("mode", "train") == "infer") {
        InferenceOptions opts;
        opts.tensorParallel = args.getInt("tp", 1);
        opts.batch = args.getInt("batch", 1);
        objective = [=](const System &s) {
            return evaluateInference(model, s, opts).totalLatency;
        };
        label = "inference latency";
    } else {
        ParallelConfig par = resolveParallel(args, cfg);
        long long batch = args.getInt("batch", 64);
        TrainingOptions opts;
        opts.recompute = resolveRecompute(args);
        objective = [=](const System &s) {
            return evaluateTraining(model, s, par, batch, opts)
                .timePerBatch;
        };
        label = "training time per batch";
    }

    std::vector<Sensitivity> rows = analyzeSensitivity(
        sys, objective,
        static_cast<int>(args.getInt("threads", 0)));
    std::cout << model.name << " on " << sys.device.name
              << ": elasticity of " << label
              << " per resource (-1 = fully bound)\n\n";
    sensitivityTable(rows).print(std::cout);
    return 0;
}

int
cmdPlan(const Args &args)
{
    JsonValue cfg = loadConfig(args);
    TransformerConfig model = resolveModel(args, cfg);
    System sys = resolveSystem(args, cfg);
    long long batch = args.getInt("batch", 64);

    TrainingPlannerOptions opts;
    opts.seqLength = args.getInt("seq", 2048);
    opts.precision = parsePrecision(args.get("precision", "fp16"));
    opts.flashAttention = args.has("flash-attention");
    opts.keep = static_cast<size_t>(args.getInt("top", 8));
    opts.threads = static_cast<int>(args.getInt("threads", 0));
    if (args.has("zero"))
        opts.zeroStages = {0,
                           static_cast<int>(args.getInt("zero", 1))};

    std::vector<TrainingPlan> plans =
        planTraining(model, sys, batch, opts);
    if (plans.empty()) {
        std::cout << "no parallelization of " << model.name
                  << " fits " << sys.device.name
                  << " memory at batch " << batch << "\n";
        return 1;
    }

    Table out({"DP-TP-PP-SP", "Schedule", "Recompute", "ZeRO",
               "t/batch (s)", "MFU (%)", "Mem/GPU (GiB)"});
    for (const TrainingPlan &p : plans) {
        out.beginRow()
            .cell(p.parallel.label())
            .cell(p.parallel.interleavedStages > 1
                      ? "interleaved x" +
                            std::to_string(
                                p.parallel.interleavedStages)
                      : scheduleName(p.parallel.schedule))
            .cell(recomputeName(p.options.recompute))
            .cell(static_cast<long long>(p.options.memory.zeroStage))
            .cell(p.report.timePerBatch, 2)
            .cell(p.report.mfu * 100.0, 1)
            .cell(p.report.memory.total() / GiB, 1);
        out.endRow();
    }
    std::cout << model.name << " on " << sys.totalDevices() << "x "
              << sys.device.name << ", batch " << batch
              << " - ranked plans:\n\n";
    out.print(std::cout);
    return 0;
}

int
cmdMemory(const Args &args)
{
    JsonValue cfg = loadConfig(args);
    TransformerConfig model = resolveModel(args, cfg);
    ParallelConfig par = resolveParallel(args, cfg);
    long long batch = args.getInt("batch", 64);
    long long seq = args.getInt("seq", 2048);

    Table out({"Recompute", "Weights", "Grads", "Optimizer",
               "Activations", "Total (GiB)"});
    for (Recompute r : {Recompute::None, Recompute::Selective,
                        Recompute::Full}) {
        MemoryOptions mopts;
        mopts.zeroStage = static_cast<int>(args.getInt("zero", 0));
        TrainingMemory mem =
            trainingMemoryPerDevice(model, par, batch, seq, r, mopts);
        out.beginRow()
            .cell(recomputeName(r))
            .cell(mem.weights / GiB, 2)
            .cell(mem.gradients / GiB, 2)
            .cell(mem.optimizer / GiB, 2)
            .cell(mem.activations / GiB, 2)
            .cell(mem.total() / GiB, 2);
        out.endRow();
    }
    std::cout << model.name << ", " << par.label() << ", batch "
              << batch << ", seq " << seq << " (GiB per device)\n\n";
    out.print(std::cout);
    return 0;
}

int
cmdLint(const Args &args)
{
    // Config path: positional operand or --config FILE.
    std::string path = args.positionals().empty()
                           ? args.get("config", "")
                           : args.positionals().front();
    checkConfig(!path.empty(),
                "lint needs a config file: optimus_cli lint "
                "<config.json>");
    std::ifstream in(path);
    checkConfig(in.good(), "cannot open config file " + path);
    std::stringstream ss;
    ss << in.rdbuf();
    JsonValue cfg = JsonValue::parse(ss.str());

    lint::LintReport report;
    try {
        TransformerConfig model = resolveModel(args, cfg);
        System sys = resolveSystem(args, cfg);
        if (cfg.isObject() && cfg.has("inference")) {
            InferenceOptions opts =
                config::inferenceOptionsFromJson(cfg.at("inference"));
            report = lint::lintInference(model, sys, opts);
        } else {
            ParallelConfig par = resolveParallel(args, cfg);
            long long batch = args.getInt("batch", 64);
            TrainingOptions opts;
            if (cfg.isObject() && cfg.has("training"))
                opts = config::trainingOptionsFromJson(
                    cfg.at("training"));
            report = lint::lintTraining(model, sys, par, batch, opts);
        }
    } catch (const LintError &e) {
        // A deserializer rejected a component outright; its report is
        // still the aggregated list for that component.
        report = e.report();
    }

    if (args.has("json")) {
        std::cout << config::toJson(report).dump(2) << "\n";
        return report.hasErrors() ? 1 : 0;
    }

    if (report.empty()) {
        std::cout << path << ": no diagnostics\n";
        return 0;
    }
    lint::diagnosticsTable(report).print(std::cout);
    std::cout << "\n" << path << ": " << report.summary() << "\n";
    return report.hasErrors() ? 1 : 0;
}

int
cmdTrace(const Args &args)
{
    std::string path = args.positionals().empty()
                           ? args.get("config", "")
                           : args.positionals().front();
    JsonValue cfg = JsonValue::object();
    if (!path.empty()) {
        std::ifstream in(path);
        checkConfig(in.good(), "cannot open config file " + path);
        std::stringstream ss;
        ss << in.rdbuf();
        cfg = JsonValue::parse(ss.str());
    }

    TransformerConfig model = resolveModel(args, cfg);
    System sys = resolveSystem(args, cfg);
    bool infer = (cfg.isObject() && cfg.has("inference")) ||
                 args.get("mode", "train") == "infer";

    TraceSession session;
    double model_total = 0.0;
    std::string what;
    if (infer) {
        InferenceOptions opts = resolveInferenceOptions(args, cfg);
        lint::LintReport lrep = lint::lintInference(model, sys, opts);
        session.counterAdd("lint/diagnostics",
                           double(lrep.diagnostics().size()));
        session.counterAdd("lint/errors", double(lrep.errorCount()));
        session.counterAdd("lint/warnings",
                           double(lrep.warningCount()));
        opts.trace = &session;
        InferenceReport rep = evaluateInference(model, sys, opts);
        model_total = rep.totalLatency;
        what = "inference latency";
    } else {
        ParallelConfig par = resolveParallel(args, cfg);
        if (!args.has("dp") &&
            !(cfg.isObject() && cfg.has("parallel"))) {
            long long rest =
                par.tensorParallel * par.pipelineParallel;
            if (sys.totalDevices() % rest == 0)
                par.dataParallel = sys.totalDevices() / rest;
        }
        long long batch = args.getInt("batch", 64);
        TrainingOptions opts = resolveTrainingOptions(args, cfg);
        lint::LintReport lrep =
            lint::lintTraining(model, sys, par, batch, opts);
        session.counterAdd("lint/diagnostics",
                           double(lrep.diagnostics().size()));
        session.counterAdd("lint/errors", double(lrep.errorCount()));
        session.counterAdd("lint/warnings",
                           double(lrep.warningCount()));
        opts.trace = &session;
        TrainingReport rep =
            evaluateTraining(model, sys, par, batch, opts);
        model_total = rep.timePerBatch;
        what = "training time per batch";
    }

    // Surface the exec/tile-cache statistics as trace counters so
    // sweep tooling reads thread counts and hit rates straight from
    // the export (--threads is accepted for CLI uniformity; a
    // single-point evaluation itself runs serially).
    TileCacheStats tstats = tileCacheStats();
    session.counterSet("roofline/tile-cache-hits",
                       double(tstats.hits));
    session.counterSet("roofline/tile-cache-misses",
                       double(tstats.misses));
    session.counterSet("roofline/tile-cache-hit-rate",
                       tstats.hitRate());
    session.counterSet(
        "exec/threads",
        double(resolveThreads(
            static_cast<int>(args.getInt("threads", 0)))));

    // The trace is a decomposition of the model: span sums per
    // category (kernel-detail spans excluded) must reproduce the
    // aggregate report.
    double trace_total = 0.0;
    for (const auto &kv : session.categoryTotals())
        if (kv.first != "kernel")
            trace_total += kv.second;

    std::string out = args.get("out", "trace.json");
    {
        std::ofstream f(out);
        checkConfig(f.good(), "cannot write trace file " + out);
        f << chromeTraceJson(session).dump() << "\n";
    }
    std::cout << model.name << " on " << sys.device.name << ", "
              << what << " " << formatTime(model_total) << "\n\n"
              << summaryText(session) << "\n"
              << "trace span total " << trace_total
              << " s vs model total " << model_total << " s (delta "
              << trace_total - model_total << " s)\n"
              << "wrote " << out
              << " (open in https://ui.perfetto.dev or "
                 "chrome://tracing)\n";
    if (args.has("csv")) {
        std::string csv_path = args.get("csv", "kernels.csv");
        std::ofstream c(csv_path);
        checkConfig(c.good(), "cannot write csv file " + csv_path);
        c << kernelCsv(session);
        std::cout << "wrote " << csv_path << "\n";
    }
    return 0;
}

int
cmdKernels(const Args &args)
{
    std::string path = args.positionals().empty()
                           ? args.get("config", "")
                           : args.positionals().front();
    JsonValue cfg = JsonValue::object();
    if (!path.empty()) {
        std::ifstream in(path);
        checkConfig(in.good(), "cannot open config file " + path);
        std::stringstream ss;
        ss << in.rdbuf();
        cfg = JsonValue::parse(ss.str());
    }

    TransformerConfig model = resolveModel(args, cfg);
    System sys = resolveSystem(args, cfg);
    bool infer = (cfg.isObject() && cfg.has("inference")) ||
                 args.get("mode", "train") == "infer";

    plan::EvaluatedPlan ep;
    double model_total = 0.0;
    std::string what;
    if (infer) {
        InferenceOptions opts = resolveInferenceOptions(args, cfg);
        plan::InferenceRun run = plan::runInference(model, sys, opts);
        ep = std::move(run.plan);
        model_total = run.report.totalLatency;
        what = "inference latency";
    } else {
        ParallelConfig par = resolveParallel(args, cfg);
        if (!args.has("dp") &&
            !(cfg.isObject() && cfg.has("parallel"))) {
            long long rest =
                par.tensorParallel * par.pipelineParallel;
            if (sys.totalDevices() % rest == 0)
                par.dataParallel = sys.totalDevices() / rest;
        }
        long long batch = args.getInt("batch", 64);
        TrainingOptions opts = resolveTrainingOptions(args, cfg);
        plan::TrainingRun run =
            plan::runTraining(model, sys, par, batch, opts);
        ep = std::move(run.plan);
        model_total = run.report.timePerBatch;
        what = "training time per batch";
    }

    // --out redirects whichever representation was selected; the
    // human-readable table defaults to stdout.
    std::ostream *os = &std::cout;
    std::ofstream file;
    if (args.has("out")) {
        std::string out = args.get("out", "kernels.json");
        file.open(out);
        checkConfig(file.good(), "cannot write output file " + out);
        os = &file;
    }

    if (args.has("json")) {
        *os << plan::planJson(ep).dump(2) << "\n";
        return 0;
    }
    if (args.has("csv")) {
        *os << plan::planCsv(ep);
        return 0;
    }

    Table table({"lane", "name", "category", "kind", "count",
                 "total", "detail"});
    double total = 0.0;
    for (const plan::StepSummary &r : plan::summarizePlan(ep)) {
        table.beginRow()
            .cell(r.lane)
            .cell(r.name)
            .cell(r.category)
            .cell(r.kind)
            .cell(r.count)
            .cell(formatTime(r.total))
            .cell(r.detail);
        table.endRow();
        total += r.total;
    }
    *os << model.name << " on " << sys.device.name << ", " << what
        << " " << formatTime(model_total) << "\n\n";
    table.print(*os);
    *os << "\n" << table.rowCount() << " plan steps, span total "
        << formatTime(total) << "\n";
    return 0;
}

DramTech
resolveDramTech(const std::string &name)
{
    if (name == "gddr6")
        return dram::gddr6();
    if (name == "hbm2")
        return dram::hbm2();
    if (name == "hbm2e")
        return dram::hbm2e();
    if (name == "hbm3-26")
        return dram::hbm3_26();
    if (name == "hbm3")
        return dram::hbm3();
    if (name == "hbm3e")
        return dram::hbm3e();
    if (name == "hbm4")
        return dram::hbm4();
    if (name == "hbmx")
        return dram::hbmx();
    throw ConfigError("unknown --dram value: " + name);
}

/** DSE problem resolved from flags, shared by `dse` and `record`. */
struct DseSetup
{
    TechConfig tech;
    DeviceObjective objective;
    std::string label;
    DseOptions dopts;
    /** Canonical description of the objective, for RunRecords. */
    JsonValue objectiveConfig;
};

DseSetup
resolveDseSetup(const Args &args)
{
    DseSetup s;
    s.tech.node = logicNode(args.get("node", "N5"));
    s.tech.dram = resolveDramTech(args.get("dram", "hbm3"));
    s.tech.areaBudget = args.getNumber("area", s.tech.areaBudget);
    s.tech.powerBudget = args.getNumber("power", s.tech.powerBudget);

    const int gpus = static_cast<int>(args.getInt("gpus-per-node", 8));
    std::string mode = args.get("mode", "train");
    TransformerConfig model = config::modelPreset(args.get(
        "model", mode == "infer" ? "llama2-13b" : "gpt-7b"));
    s.objectiveConfig = JsonValue::object();
    s.objectiveConfig.set("mode", JsonValue::string(mode));
    s.objectiveConfig.set("model", JsonValue::string(model.name));
    s.objectiveConfig.set("gpusPerNode",
                          JsonValue::number(double(gpus)));
    if (mode == "infer") {
        InferenceOptions opts;
        opts.tensorParallel = args.getInt("tp", 1);
        opts.batch = args.getInt("batch", 1);
        opts.promptLength = args.getInt("prompt", 200);
        opts.generateLength = args.getInt("generate", 200);
        s.objective = [=](const Device &dev) {
            System sys = makeSystem(dev, gpus, 1, presets::nvlink4(),
                                    nettech::gdrX8());
            return evaluateInference(model, sys, opts).totalLatency;
        };
        s.label = model.name + " inference latency";
        s.objectiveConfig.set("inference", config::toJson(opts));
    } else if (mode == "train") {
        const int nodes = static_cast<int>(args.getInt("nodes", 16));
        ParallelConfig par;
        par.tensorParallel = args.getInt("tp", 4);
        par.pipelineParallel = args.getInt("pp", 4);
        long long rest = par.tensorParallel * par.pipelineParallel;
        par.dataParallel =
            args.getInt("dp", static_cast<long long>(gpus) * nodes /
                                  rest);
        par.sequenceParallel = par.tensorParallel > 1;
        long long batch = args.getInt("batch", 512);
        TrainingOptions topts;
        topts.recompute = Recompute::Selective;
        topts.seqLength = args.getInt("seq", 2048);
        s.objective = [=](const Device &dev) {
            System sys = makeSystem(dev, gpus, nodes,
                                    presets::nvlink4(),
                                    nettech::gdrX8());
            return evaluateTraining(model, sys, par, batch, topts)
                .timePerBatch;
        };
        s.label = model.name + " training time per batch";
        s.objectiveConfig.set("nodes",
                              JsonValue::number(double(nodes)));
        s.objectiveConfig.set("parallel", config::toJson(par));
        s.objectiveConfig.set("batch",
                              JsonValue::number(double(batch)));
        s.objectiveConfig.set("training", config::toJson(topts));
    } else {
        throw ConfigError("unknown --mode value: " + mode);
    }

    s.dopts.gridSteps =
        static_cast<int>(args.getInt("grid", s.dopts.gridSteps));
    s.dopts.refineRounds =
        static_cast<int>(args.getInt("rounds", s.dopts.refineRounds));
    s.dopts.threads = static_cast<int>(args.getInt("threads", 0));
    return s;
}

int
cmdDse(const Args &args)
{
    DseSetup setup = resolveDseSetup(args);
    TechConfig &tech = setup.tech;
    DeviceObjective &objective = setup.objective;
    std::string &label = setup.label;
    DseOptions &dopts = setup.dopts;

    TraceSession session;
    dopts.trace = &session;
    const bool verbose = args.has("verbose");
    if (verbose)
        dopts.onRound = [](const DseRound &r) {
            std::cout << (r.round < 0
                              ? std::string("grid")
                              : "round " + std::to_string(r.round))
                      << ": best " << formatTime(r.bestObjective)
                      << " after " << r.evaluations
                      << " evaluations (step " << r.step << ")\n";
        };

    DseResult r = optimizeAllocation(tech, objective, dopts);
    if (verbose)
        std::cout << "\n";
    const Device &d = r.device;
    std::cout << "DSE at " << tech.node.name << " + "
              << tech.dram.name << " (" << tech.areaBudget
              << " mm^2, " << tech.powerBudget
              << " W), objective: " << label << "\n\n"
              << "  compute area fraction : "
              << r.allocation.computeAreaFraction << "\n"
              << "  compute power fraction: "
              << r.allocation.computePowerFraction << "\n"
              << "  fp16 matrix throughput: "
              << formatFlops(d.matrixFlops(Precision::FP16)) << "\n"
              << "  L2 capacity           : "
              << formatBytes(d.level("L2").capacity) << "\n"
              << "  objective             : " << formatTime(r.objective)
              << "\n"
              << "  evaluations           : " << r.evaluations
              << " (" << session.counter("dse/pruned")
              << " pruned by lint)\n";
    if (verbose) {
        std::cout << "\n";
        counterSummaryTable(session).print(std::cout);
    }
    return 0;
}

int
cmdRecord(const Args &args)
{
    std::string path = args.positionals().empty()
                           ? args.get("config", "")
                           : args.positionals().front();
    JsonValue cfg = JsonValue::object();
    if (!path.empty()) {
        std::ifstream in(path);
        checkConfig(in.good(), "cannot open config file " + path);
        std::stringstream ss;
        ss << in.rdbuf();
        cfg = JsonValue::parse(ss.str());
    }

    std::string mode = args.get(
        "mode", (cfg.isObject() && cfg.has("inference")) ? "infer"
                                                         : "train");
    report::RunRecord rec;
    if (mode == "infer") {
        TransformerConfig model = resolveModel(args, cfg);
        System sys = resolveSystem(args, cfg);
        InferenceOptions opts = resolveInferenceOptions(args, cfg);
        rec = report::recordInference(
            model, sys, opts,
            args.get("label", model.name + " inference"));
    } else if (mode == "train") {
        TransformerConfig model = resolveModel(args, cfg);
        System sys = resolveSystem(args, cfg);
        ParallelConfig par = resolveParallel(args, cfg);
        if (!args.has("dp") &&
            !(cfg.isObject() && cfg.has("parallel"))) {
            long long rest =
                par.tensorParallel * par.pipelineParallel;
            if (sys.totalDevices() % rest == 0)
                par.dataParallel = sys.totalDevices() / rest;
        }
        long long batch = args.getInt("batch", 64);
        TrainingOptions opts = resolveTrainingOptions(args, cfg);
        rec = report::recordTraining(
            model, sys, par, batch, opts,
            args.get("label", model.name + " training"));
    } else if (mode == "plan") {
        TransformerConfig model = resolveModel(args, cfg);
        System sys = resolveSystem(args, cfg);
        long long batch = args.getInt("batch", 64);
        TrainingPlannerOptions opts;
        opts.seqLength = args.getInt("seq", 2048);
        opts.precision =
            parsePrecision(args.get("precision", "fp16"));
        opts.keep = static_cast<size_t>(args.getInt("top", 8));
        opts.threads = static_cast<int>(args.getInt("threads", 0));
        rec = report::recordPlanner(
            model, sys, batch, opts,
            args.get("label", model.name + " planner"));
    } else if (mode == "dse") {
        DseSetup setup = resolveDseSetup(args);
        rec = report::recordDse(setup.tech, setup.objective,
                                setup.dopts, setup.objectiveConfig,
                                args.get("label", setup.label));
    } else {
        throw ConfigError("unknown --mode value: " + mode);
    }

    std::string out = args.get("out", "run.json");
    report::writeRunRecord(out, rec);
    std::cout << report::versionLine() << "\n"
              << rec.kind << " run '" << rec.label
              << "', config fingerprint " << rec.fingerprint << "\n"
              << rec.metrics.size() << " metrics, "
              << rec.kernels.size() << " kernel aggregates, "
              << rec.counters.size() << " counters ("
              << rec.wallSeconds * 1e3 << " ms wall)\n"
              << "wrote " << out << "\n";
    return 0;
}

int
cmdDiff(const Args &args)
{
    checkConfig(args.positionals().size() == 2,
                "diff needs two run files: optimus_cli diff <a.json> "
                "<b.json> [--check] [--tol-pct N] [--json]");
    report::RunRecord a =
        report::loadRunRecord(args.positionals()[0]);
    report::RunRecord b =
        report::loadRunRecord(args.positionals()[1]);

    report::DiffOptions dopts;
    dopts.tolPct = args.getNumber("tol-pct", dopts.tolPct);
    report::RunDiff diff = report::diffRuns(a, b, dopts);

    if (args.has("json"))
        std::cout << report::toJson(diff).dump(2) << "\n";
    else
        std::cout << report::diffText(diff, a, b, dopts);

    return args.has("check") ? report::checkExitCode(diff) : 0;
}

int
cmdVersion()
{
    std::cout << report::versionLine() << "\n";
    return 0;
}

int
cmdPresets()
{
    std::cout << "Device presets:\n";
    for (const std::string &name : config::devicePresetNames())
        std::cout << "  " << name << "\n";
    std::cout << "System presets (use with --nodes N):\n";
    for (const std::string &name : config::systemPresetNames())
        std::cout << "  " << name << "\n";
    std::cout << "Model presets:\n";
    for (const std::string &name : config::modelPresetNames())
        std::cout << "  " << name << "\n";
    return 0;
}

int
usage()
{
    std::cout <<
        "usage: optimus_cli <command> [flags]\n"
        "\n"
        "commands:\n"
        "  train    --model M --system S --nodes N --batch B --dp D\n"
        "           --tp T --pp P [--sp] [--recompute none|selective|"
        "full]\n"
        "           [--seq L] [--precision fp16|fp8|fp4] [--zero 0-3]\n"
        "           [--flash-attention] [--microbatch m] "
        "[--interleave v]\n"
        "  infer    --model M --system S [--tp T] [--batch B]\n"
        "           [--prompt P] [--generate G] [--flash-attention]\n"
        "  serve    --model M --system S [--tp T] [--prompt P]\n"
        "           [--generate G] [--max-batch N]\n"
        "  plan     --model M --system S --nodes N --batch B "
        "[--top K]\n"
        "           [--threads N]\n"
        "  sensitivity --model M --system S [--mode train|infer]\n"
        "              [--threads N]\n"
        "              bottleneck attribution per hardware resource\n"
        "  memory   --model M --dp D --tp T --pp P [--sp] "
        "[--batch B]\n"
        "  lint     <config.json> [--batch B] - static-check a config\n"
        "           without evaluating it (exit 1 on errors)\n"
        "  trace    <config.json> [--out trace.json] [--csv FILE]\n"
        "           [--threads N]\n"
        "           record a Perfetto-loadable timeline of the "
        "modeled run\n"
        "  kernels  <config.json> [--json|--csv] [--out FILE]\n"
        "           dump the lowered kernel plan (one row per plan\n"
        "           step: identity, repeat count, time, bound/scope)\n"
        "  dse      [--mode train|infer] [--node N3|N5] [--dram D]\n"
        "           [--area MM2] [--power W] [--verbose] "
        "[--threads N]\n"
        "           optimize the compute/memory area+power split\n"
        "  record   <config.json> [--mode train|infer|plan|dse]\n"
        "           [--out run.json] [--label NAME]\n"
        "           write a schema-versioned RunRecord ledger entry\n"
        "  diff     <a.json> <b.json> [--check] [--tol-pct N] "
        "[--json]\n"
        "           compare two RunRecords; --check exits 1 on drift\n"
        "           beyond tolerance (default 0.5%)\n"
        "  version  print tool version, RunRecord schema, git SHA\n"
        "  presets  list built-in presets\n"
        "\n"
        "common flags: --config FILE (JSON), --json (JSON output),\n"
        "  --threads N (sweep worker threads; 0 = OPTIMUS_THREADS\n"
        "  env, default 1; results are identical at any count)\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Args args = Flags::parse(argc, argv);
        if (args.command() == "train")
            return cmdTrain(args);
        if (args.command() == "infer")
            return cmdInfer(args);
        if (args.command() == "serve")
            return cmdServe(args);
        if (args.command() == "plan")
            return cmdPlan(args);
        if (args.command() == "sensitivity")
            return cmdSensitivity(args);
        if (args.command() == "memory")
            return cmdMemory(args);
        if (args.command() == "lint")
            return cmdLint(args);
        if (args.command() == "trace")
            return cmdTrace(args);
        if (args.command() == "kernels")
            return cmdKernels(args);
        if (args.command() == "dse")
            return cmdDse(args);
        if (args.command() == "record")
            return cmdRecord(args);
        if (args.command() == "diff")
            return cmdDiff(args);
        if (args.command() == "version" || args.has("version"))
            return cmdVersion();
        if (args.command() == "presets")
            return cmdPresets();
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
